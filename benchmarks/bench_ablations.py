"""Ablations for the implementation's design choices.

1. **Observational dedup in exploration** — `explore` merges traces by
   snapshot; the ablation explores raw traces breadth-first to the
   same coverage depth.  Expected: dedup turns exponential trace
   growth into the (much smaller) state count.
2. **U-equation trace normalization** — building long churn workloads
   with and without normalization.  Measured result (recorded in
   EXPERIMENTS-adjacent honesty): normalization *loses* on this
   workload (~5x), because memoized query evaluation already makes
   deep idempotent traces cheap while normalization walks the trace
   on every apply.  Its value is semantic (canonical state terms),
   not throughput.
3. **Memoization** is ablated in ``bench_rewriting.py``.
"""

import pytest

from repro.algebraic.algebra import TraceAlgebra
from repro.algebraic.equations import ConditionalEquation
from repro.algebraic.spec import AlgebraicSpec
from repro.applications.courses import (
    courses_algebraic,
    courses_equations,
    courses_signature,
)
from repro.logic.sorts import STATE
from repro.logic.terms import Var


def _spec_with_idempotence() -> AlgebraicSpec:
    """The registrar plus offer-idempotence as an U-equation."""
    signature = courses_signature()
    course = signature.logic.sort("course")
    c = Var("c", course)
    u = Var("U", STATE)
    offer = lambda ct, st_: signature.apply_update("offer", ct, st_)
    idempotence = ConditionalEquation(
        offer(c, offer(c, u)), offer(c, u), None, "u-idem"
    )
    return AlgebraicSpec(
        signature,
        tuple(courses_equations(signature)) + (idempotence,),
    )


def bench_explore_with_dedup(benchmark):
    """Snapshot-deduplicated exploration (the shipped design)."""
    algebra = TraceAlgebra(courses_algebraic())
    graph = benchmark(algebra.explore)
    assert len(graph) == 25


@pytest.mark.parametrize("depth", [2, 3])
def bench_explore_raw_traces(benchmark, depth):
    """Ablation: visit raw traces to a fixed depth (17 and 273 and
    4369 trace nodes at depths 1/2/3 vs 25 states total)."""
    algebra = TraceAlgebra(courses_algebraic())

    def run():
        return sum(
            1
            for trace in algebra.traces(depth)
            for _ in [algebra.snapshot(trace)]
        )

    count = benchmark(run)
    assert count == sum(16 ** d for d in range(depth + 1))


@pytest.mark.parametrize(
    "normalize", [True, False], ids=["normalized", "raw"]
)
def bench_u_equation_normalization(benchmark, normalize):
    """A churn workload (repeated re-offers) queried at the end; the
    idempotence U-equation keeps normalized traces short."""
    spec = _spec_with_idempotence()

    def run():
        algebra = TraceAlgebra(spec, normalize=normalize)
        trace = algebra.initial_trace()
        for _ in range(40):
            trace = algebra.apply("offer", "c1", trace=trace)
        return algebra.query("offered", "c1", trace=trace)

    assert benchmark(run) is True

"""E12 — dynamic logic (the Section 5.3 extension): obligation
generation, single-formula model checking, and the full syntactic
refinement check, compared against its semantic counterpart.

Expected shape: the syntactic check does the same state-times-instance
work as the semantic one plus formula interpretation overhead, so it
lands within a small constant factor of check_refinement.
"""

import pytest

from repro.applications.courses import (
    courses_algebraic,
    courses_schema_source,
)
from repro.dynamic.obligations import (
    check_obligations,
    obligations_for_spec,
)
from repro.dynamic.semantics import satisfies_dynamic
from repro.refinement.second_third import (
    InducedStructure,
    RepresentationMap,
    check_refinement,
)
from repro.rpr.parser import parse_schema


@pytest.fixture(scope="module")
def setting():
    spec = courses_algebraic()
    schema = parse_schema(courses_schema_source())
    rep_map = RepresentationMap.homonym(spec.signature, schema)
    return spec, schema, rep_map


def bench_obligation_generation(benchmark, setting):
    spec, schema, rep_map = setting
    pairs = benchmark(obligations_for_spec, spec, rep_map)
    assert len(pairs) == 16


def bench_single_obligation_model_check(benchmark, setting):
    """One quantified dynamic formula at one state."""
    spec, schema, rep_map = setting
    induced = InducedStructure(spec.signature, schema, rep_map)
    state = induced.reachable_states()[-1]
    pairs = obligations_for_spec(spec, rep_map)
    _, obligation = next(p for p in pairs if p[0].label == "eq6a")
    result = benchmark(
        satisfies_dynamic, obligation, state, schema, induced.domains
    )
    assert result


def bench_syntactic_refinement_check(benchmark, setting):
    """All 16 obligations over all 25 reachable states."""
    spec, schema, rep_map = setting
    report = benchmark(check_obligations, spec, schema, rep_map)
    assert report.ok


def bench_semantic_refinement_baseline(benchmark, setting):
    """Comparator: the semantic equation check of Section 5.4."""
    spec, schema, rep_map = setting
    report = benchmark(check_refinement, spec, schema, rep_map)
    assert report.ok

"""E15 — incremental verification: cold vs warm pipeline runs.

The pipeline's content-addressed :class:`ResultCache` promises that
re-verifying an unchanged design replays stored results instead of
re-running the bounded sweeps.  Three benchmarks quantify that
promise on the courses registrar:

* ``bench_pipeline_cold_verify`` — the full check graph, no cache:
  every sweep runs.
* ``bench_pipeline_warm_verify`` — the full graph against a
  populated cache: every node replays, the state graph is never
  rebuilt.
* ``bench_pipeline_warm_single_check`` — the ``--only second-third``
  subgraph against the same cache: the incremental unit of work a
  developer pays after an edit that invalidated one check.

``benchmarks/check_pipeline_regression.py`` gates the warm
single-check re-verify at >= 5x faster than the cold full verify.
Both sides run in the same session on the same machine, so the gate
is machine-independent.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.cli import APPLICATIONS
from repro.pipeline.cache import ResultCache

_POPULATED: Path | None = None


def _populated_cache_dir() -> Path:
    """A cache directory with one complete courses run stored."""
    global _POPULATED
    if _POPULATED is None:
        _POPULATED = Path(tempfile.mkdtemp(prefix="repro-bench-cache-"))
        cache = ResultCache(_POPULATED)
        APPLICATIONS["courses"]().verify(cache=cache)
        assert cache.stores > 0
    return _POPULATED


def bench_pipeline_cold_verify(benchmark):
    """Full verify with no cache: every check executes."""

    def cold():
        return APPLICATIONS["courses"]().verify()

    report = benchmark(cold)
    assert report.ok


def bench_pipeline_warm_verify(benchmark):
    """Full verify against a populated cache: every node replays."""
    root = _populated_cache_dir()

    def warm():
        return APPLICATIONS["courses"]().verify(
            cache=ResultCache(root)
        )

    report = benchmark(warm)
    assert report.ok


def bench_pipeline_warm_single_check(benchmark):
    """One-check re-verify (the post-edit increment) against the
    populated cache."""
    root = _populated_cache_dir()

    def warm_single():
        return APPLICATIONS["courses"]().verify_pipeline(
            cache=ResultCache(root), only=["second-third"]
        )

    result = benchmark(warm_single)
    assert result.ok
    assert result.execution("second-third").status == "hit"

"""E16 — proof-coverage overhead and report-render cost.

Coverage recording follows the tracer's one-branch discipline: with
``COV_STATE`` disabled every instrumentation point is one attribute
load and branch, and that case is already covered by the 5% gate of
:mod:`benchmarks.bench_obs` (the flags share the discipline, not the
switch).  What this module measures is coverage *ON* — the opt-in
cost of recording dispatch cells and fired-equation sets on the
rewrite hot path.  ``benchmarks/check_obs_overhead.py --coverage-run``
gates the pair ``bench_snapshot_cov_off`` / ``bench_snapshot_cov_on``
at 1.15 (<= 15% within-run overhead).

The render benchmarks quantify the cold path: assembling the coverage
document over a full courses run and emitting the byte-stable JSON
and the self-contained HTML report.
"""

from repro.algebraic.algebra import TraceAlgebra
from repro.algebraic.rewriting import RewriteEngine
from repro.applications.courses import courses_algebraic
from repro.logic.terms import App
from repro.obs.coverage import (
    CoverageRecorder,
    activate_coverage,
    coverage_document,
    coverage_json,
    disable_coverage,
    state_graph_census,
)
from repro.obs.report_html import coverage_html


def _snapshot_setup():
    """The courses spec, a 30-update churn trace, and the observation
    terms of a full snapshot (mirrors ``bench_obs._snapshot_setup``
    so the cov-off numbers are comparable across the two modules)."""
    spec = courses_algebraic()
    algebra = TraceAlgebra(spec)
    steps = [
        ("offer", "c1"),
        ("enroll", "s1", "c1"),
        ("offer", "c2"),
        ("transfer", "s1", "c1", "c2"),
        ("cancel", "c1"),
        ("enroll", "s2", "c2"),
        ("offer", "c1"),
    ]
    trace = algebra.initial_trace()
    for index in range(30):
        name, *params = steps[index % len(steps)]
        trace = algebra.apply(name, *params, trace=trace)
    signature = spec.signature
    terms = []
    for name, params in algebra.observations:
        symbol = signature.query(name)
        args = [
            signature.value(sort, value)
            for sort, value in zip(symbol.arg_sorts[:-1], params)
        ]
        terms.append(App(symbol, (*args, trace)))
    return spec, terms


def bench_snapshot_cov_off(benchmark):
    """Baseline: the full snapshot workload, coverage disabled."""
    spec, terms = _snapshot_setup()
    disable_coverage()

    def run():
        engine = RewriteEngine(spec)
        return [engine.evaluate(term) for term in terms]

    benchmark(run)


def bench_snapshot_cov_on(benchmark):
    """The identical workload with coverage ON and a fresh recorder
    per call — the gated <= 15% comparison against cov_off."""
    spec, terms = _snapshot_setup()

    def run():
        with activate_coverage():
            engine = RewriteEngine(spec)
            return [engine.evaluate(term) for term in terms]

    try:
        benchmark(run)
    finally:
        disable_coverage()


def bench_explore_cov_on(benchmark):
    """Full state-space exploration with coverage ON (informational:
    exploration records nothing per state, only the final census)."""
    spec = courses_algebraic()

    def run():
        with activate_coverage() as recorder:
            graph = TraceAlgebra(spec).explore()
            recorder.record_explore(state_graph_census(graph))
            return graph

    try:
        benchmark(run)
    finally:
        disable_coverage()


def _recorded_run():
    """A merged recorder over a full courses pipeline run (the input
    of the render benchmarks)."""
    from repro.cli import APPLICATIONS

    framework = APPLICATIONS["courses"]()
    recorder = CoverageRecorder()
    with activate_coverage(recorder):
        framework.verify_pipeline()
    return framework.algebraic, recorder


def bench_document_assemble(benchmark):
    """Assembling the coverage document from a merged recorder."""
    spec, recorder = _recorded_run()
    benchmark(
        coverage_document, recorder, spec, application="courses"
    )


def bench_document_json(benchmark):
    """Byte-stable JSON emission of one coverage document."""
    spec, recorder = _recorded_run()
    document = coverage_document(recorder, spec, application="courses")
    benchmark(coverage_json, document)


def bench_document_html(benchmark):
    """Self-contained HTML rendering of one coverage document."""
    spec, recorder = _recorded_run()
    document = coverage_document(recorder, spec, application="courses")
    benchmark(coverage_html, document)

"""E17 — serving runtime: update admission and query throughput.

Each benchmark drives a batch of requests through a live
:class:`~repro.runtime.service.SpecRuntime` and records the batch
size in ``extra_info``, so throughput (requests per second) can be
recovered from the pytest-benchmark JSON as ``batch / mean``.  The
acceptance floor — at least 100k guarded updates/s on the bank — is
enforced by ``check_runtime_regression.py`` over the in-memory
``bench_bank_guarded_updates`` emission.

The re-reduction benchmark at the bottom is the ablation baseline:
the same workload answered by full trace re-reduction instead of the
incremental store (three orders of magnitude slower; this is the gap
the runtime exists to close).
"""

from __future__ import annotations

import pytest

from repro.algebraic.algebra import TraceAlgebra
from repro.runtime.apps import build_app
from repro.runtime.service import SpecRuntime

#: Updates per measured batch (deposit/withdraw pairs stay admissible
#: forever, so every request in the batch exercises the full path).
BATCH = 2000


@pytest.fixture(scope="module")
def bank_app():
    return build_app("bank")


def _bank_runtime(bank_app, **kwargs):
    runtime = SpecRuntime(
        bank_app.framework, bank_app.descriptions, **kwargs
    )
    runtime.execute("open_account", ("a1",))
    return runtime


def bench_bank_guarded_updates(benchmark, bank_app):
    """The gated number: in-memory admission with all guards on."""
    runtime = _bank_runtime(bank_app)

    def run():
        execute = runtime.execute
        for _ in range(BATCH // 2):
            execute("deposit", ("a1",))
            execute("withdraw", ("a1",))

    benchmark(run)
    benchmark.extra_info["batch"] = BATCH
    benchmark.extra_info["kind"] = "updates"


def bench_bank_journaled_updates(benchmark, bank_app, tmp_path):
    """Admission plus the write-ahead journal (group commit, no
    fsync — CI disks make synchronous fsync numbers meaningless)."""
    runtime = _bank_runtime(
        bank_app, data_dir=str(tmp_path), fsync=False
    )

    def run():
        execute = runtime.execute
        for _ in range(BATCH // 2):
            execute("deposit", ("a1",))
            execute("withdraw", ("a1",))

    benchmark(run)
    runtime.close()
    benchmark.extra_info["batch"] = BATCH
    benchmark.extra_info["kind"] = "updates"


def bench_bank_rejected_updates(benchmark, bank_app):
    """Precondition-rejection throughput (the cheap refusal path)."""
    runtime = _bank_runtime(bank_app)  # a2 stays closed

    def run():
        execute = runtime.execute
        for _ in range(BATCH):
            execute("deposit", ("a2",))

    benchmark(run)
    benchmark.extra_info["batch"] = BATCH
    benchmark.extra_info["kind"] = "updates"


def bench_bank_queries(benchmark, bank_app):
    """Point-query throughput against the materialized cells."""
    runtime = _bank_runtime(bank_app)

    def run():
        query = runtime.query
        for _ in range(BATCH):
            query("balance", ("a1",))

    benchmark(run)
    benchmark.extra_info["batch"] = BATCH
    benchmark.extra_info["kind"] = "queries"


def bench_bank_trace_re_reduction(benchmark, bank_app):
    """Ablation baseline: the same deposit/withdraw workload answered
    by growing a trace and re-reducing it (no incremental store)."""
    steps = 50  # quadratic: keep the batch small

    def run():
        algebra = TraceAlgebra(bank_app.framework.algebraic)
        trace = algebra.apply(
            "open_account", "a1", trace=algebra.initial_trace()
        )
        for index in range(steps):
            name = "deposit" if index % 2 == 0 else "withdraw"
            trace = algebra.apply(name, "a1", trace=trace)
            algebra.snapshot(trace)

    benchmark(run)
    benchmark.extra_info["batch"] = steps
    benchmark.extra_info["kind"] = "updates"

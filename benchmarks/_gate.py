"""Shared machinery for the ``check_*_regression.py`` benchmark gates.

Every gate script does the same four things: load a pytest-benchmark
JSON emission (or an already-reduced committed baseline), optionally
rewrite that baseline, compare run means against baseline means with
a headroom factor, and apply an absolute throughput floor to one
named benchmark.  This module holds those pieces once; the scripts
keep only their defaults (baseline path, floor benchmark, units) and
any gate that is genuinely theirs (the kernel's within-run
exploration speedup, the pipeline's cold/warm ratio).

Schemas understood:

* pytest-benchmark documents — ``{"benchmarks": [{"name", "stats":
  {"mean"}, "extra_info": {"batch"}}, ...]}``;
* reduced mean baselines — ``{"means": {name: seconds}}``;
* reduced record baselines — ``{"records": {name: {"mean",
  "batch"}}}``.

Exit-code convention (shared by every gate): 0 ok, 1 gate failure,
2 unusable input.  :func:`fail_input` implements the exit-2 path.
"""

from __future__ import annotations

import json
import sys


def fail_input(message: str) -> None:
    """Exit 2 (unusable input) with ``message`` on stderr."""
    print(message, file=sys.stderr)
    sys.exit(2)


def _load_payload(path: str, role: str, regenerate_hint: str | None) -> dict:
    """Parse ``path`` as a JSON object, exiting 2 with a readable
    message (plus the gate's regenerate recipe for a missing
    baseline) on anything unusable."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        if role == "baseline" and regenerate_hint:
            fail_input(
                f"error: baseline file not found: {path}\n"
                f"{regenerate_hint}"
            )
        fail_input(f"error: {role} file not found: {path}")
    except json.JSONDecodeError as exc:
        fail_input(f"error: {role} file {path} is not valid JSON: {exc}")
    if not isinstance(payload, dict):
        fail_input(f"error: {role} file {path} is not a JSON object")
    return payload


def load_means(
    path: str, role: str, regenerate_hint: str | None = None
) -> dict[str, float]:
    """Load ``name -> mean seconds`` from a pytest-benchmark document
    or a reduced ``means`` baseline."""
    payload = _load_payload(path, role, regenerate_hint)
    if "benchmarks" in payload:
        try:
            return {
                bench["name"]: float(bench["stats"]["mean"])
                for bench in payload["benchmarks"]
            }
        except (TypeError, KeyError) as exc:
            fail_input(
                f"error: {role} file {path} is not pytest-benchmark "
                f"JSON (missing {exc} under 'benchmarks')"
            )
    if "means" in payload and isinstance(payload["means"], dict):
        try:
            return {
                name: float(mean)
                for name, mean in payload["means"].items()
            }
        except (TypeError, ValueError):
            fail_input(
                f"error: {role} file {path} has non-numeric entries "
                "under 'means'"
            )
    fail_input(
        f"error: {role} file {path} has a stale or unknown schema "
        "(expected a pytest-benchmark document with 'benchmarks' or "
        "a reduced baseline with 'means')."
        + (f"\n{regenerate_hint}" if regenerate_hint else "")
    )


def load_records(
    path: str, role: str, regenerate_hint: str | None = None
) -> dict[str, dict]:
    """Load ``name -> {"mean", "batch"}`` from a pytest-benchmark
    document or a reduced ``records`` baseline."""
    payload = _load_payload(path, role, regenerate_hint)
    if "benchmarks" in payload:
        try:
            return {
                bench["name"]: {
                    "mean": float(bench["stats"]["mean"]),
                    "batch": bench.get("extra_info", {}).get("batch"),
                }
                for bench in payload["benchmarks"]
            }
        except (TypeError, KeyError) as exc:
            fail_input(
                f"error: {role} file {path} is not pytest-benchmark "
                f"JSON (missing {exc} under 'benchmarks')"
            )
    if "records" in payload and isinstance(payload["records"], dict):
        try:
            return {
                name: {
                    "mean": float(record["mean"]),
                    "batch": record.get("batch"),
                }
                for name, record in payload["records"].items()
            }
        except (TypeError, KeyError, ValueError):
            fail_input(
                f"error: {role} file {path} has malformed entries "
                "under 'records'"
            )
    fail_input(
        f"error: {role} file {path} has a stale or unknown schema "
        "(expected a pytest-benchmark document with 'benchmarks' or "
        "a reduced baseline with 'records')."
        + (f"\n{regenerate_hint}" if regenerate_hint else "")
    )


def throughput(record: dict) -> float | None:
    """``batch / mean`` in operations per second, when the record
    carries a batch size."""
    batch = record.get("batch")
    if not batch or not record["mean"]:
        return None
    return batch / record["mean"]


def write_baseline(path: str, note: str, key: str, entries: dict) -> None:
    """Write a reduced baseline file: ``{"note": ..., key: entries}``
    with sorted keys and a trailing newline (stable diffs)."""
    payload = {"note": note, key: dict(sorted(entries.items()))}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def _format_mean(mean: float, unit: str) -> str:
    if unit == "us":
        return f"{mean * 1e6:.1f}us"
    return f"{mean * 1e3:.2f}ms"


def check_floor(
    run_records: dict[str, dict],
    benchmark: str,
    min_throughput: float,
    rate_noun: str,
    floor_decimals: int = 0,
) -> list[str]:
    """Apply the absolute throughput floor to one benchmark.  Prints
    the verdict line; returns the (possibly empty) failure list."""
    record = run_records.get(benchmark)
    if record is None:
        return [f"{benchmark} missing from the run"]
    rate = throughput(record)
    if rate is None:
        return [f"{benchmark} carries no batch extra_info"]
    verdict = "FAIL" if rate < min_throughput else "ok"
    floor_text = f"{min_throughput / 1000:.{floor_decimals}f}k"
    print(
        f"  [{verdict:>4}] {benchmark}: "
        f"{rate / 1000:.1f}k {rate_noun} "
        f"(floor {floor_text})"
    )
    if rate < min_throughput:
        return [
            f"{benchmark}: {rate:.0f} {rate_noun} below the "
            f"{min_throughput:.0f} floor"
        ]
    return []


def compare_to_baseline(
    run: dict,
    baseline: dict,
    factor: float,
    unit: str = "us",
    show_rate: bool = False,
) -> list[tuple[str, float]]:
    """Compare run means against baseline means benchmark by
    benchmark, printing one verdict line each (plus ``[new]`` /
    ``[gone]`` notes for one-sided names, which never fail the gate).

    Entries may be bare mean floats or ``{"mean", "batch"}`` records;
    with ``show_rate`` each line also carries the record's
    throughput.  Returns ``(name, ratio)`` for every benchmark whose
    mean exceeded ``factor`` times its baseline.
    """

    def mean_of(entry) -> float:
        return entry["mean"] if isinstance(entry, dict) else entry

    failures: list[tuple[str, float]] = []
    for name in sorted(run):
        mean = mean_of(run[name])
        base_entry = baseline.get(name)
        if base_entry is None:
            print(
                f"  [new]  {name}: {_format_mean(mean, unit)} "
                "(no baseline)"
            )
            continue
        base = mean_of(base_entry)
        ratio = mean / base if base else float("inf")
        verdict = "FAIL" if ratio > factor else "ok"
        rate = ""
        if show_rate and isinstance(run[name], dict):
            ops = throughput(run[name])
            if ops is not None:
                rate = f", {ops / 1000:.1f}k/s"
        print(
            f"  [{verdict:>4}] {name}: {_format_mean(mean, unit)} "
            f"vs baseline {_format_mean(base, unit)} "
            f"({ratio:.2f}x{rate})"
        )
        if ratio > factor:
            failures.append((name, ratio))
    for name in sorted(set(baseline) - set(run)):
        print(f"  [gone] {name}: in baseline but not in this run")
    return failures

"""E10 — the 2nd->3rd refinement check (Section 5.4): A2-equation
validity in the induced structure N(U), scaled over carriers, plus the
direct cross-level agreement check.

Expected shape: equation checking costs |reachable DB states| x
|equation instances|; the dominant factor is the per-instance RPR
procedure run, so cost tracks the state count (25 at 2x2, 123 at 2x3
for the registrar).
"""

import pytest

from repro.algebraic.algebra import TraceAlgebra
from repro.applications.courses import (
    courses_algebraic,
    courses_schema_source,
    default_courses,
    default_students,
)
from repro.refinement.second_third import (
    InducedStructure,
    RepresentationMap,
    check_agreement,
    check_refinement,
)
from repro.rpr.parser import parse_schema


@pytest.fixture(scope="module")
def schema():
    return parse_schema(courses_schema_source())


@pytest.mark.parametrize("students,cs", [(2, 2), (2, 3)])
def bench_equation_validity_in_n(benchmark, schema, students, cs):
    spec = courses_algebraic(
        default_students(students), default_courses(cs)
    )
    result = benchmark(check_refinement, spec, schema)
    assert result.ok


@pytest.mark.parametrize("depth", [1, 2])
def bench_agreement_vs_depth(benchmark, schema, depth):
    """Trace-enumeration variant: every observation compared at both
    levels on every trace up to the depth."""
    algebra = TraceAlgebra(courses_algebraic())
    result = benchmark(check_agreement, algebra, schema, None, depth)
    assert result.ok


def bench_reachable_db_states(benchmark, schema):
    """BFS over database states through the procedures (the N-side
    state construction)."""
    spec = courses_algebraic()
    induced = InducedStructure(
        spec.signature,
        schema,
        RepresentationMap.homonym(spec.signature, schema),
    )
    states = benchmark(induced.reachable_states)
    assert len(states) == 25


def bench_trace_realization(benchmark, schema):
    """Realizing one 8-update trace as a database state (memoized per
    InducedStructure, so a fresh instance is built per round)."""
    spec = courses_algebraic()
    algebra = TraceAlgebra(spec)
    trace = algebra.initial_trace()
    for step in [
        ("offer", "c1"),
        ("enroll", "s1", "c1"),
        ("offer", "c2"),
        ("transfer", "s1", "c1", "c2"),
        ("cancel", "c1"),
        ("enroll", "s2", "c2"),
        ("offer", "c1"),
        ("enroll", "s2", "c1"),
    ]:
        trace = algebra.apply(step[0], *step[1:], trace=trace)

    def run():
        induced = InducedStructure(
            spec.signature,
            schema,
            RepresentationMap.homonym(spec.signature, schema),
        )
        return induced.state_of_trace(trace)

    state = benchmark(run)
    assert state.relation("TAKES") == {("s1", "c2"), ("s2", "c2"),
                                       ("s2", "c1")}

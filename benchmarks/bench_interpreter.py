"""E9 — the RPR denotational semantics in execution: per-operation
cost of the paper's procedures, relational-assignment cost, and the
iteration (star) fixpoint.

Expected shape: insert/delete are linear in relation size; a general
relational assignment is linear in the domain product of its tuple
variables times formula cost; star costs |reached states| x body.
"""

import pytest

from repro.applications.bank import bank_schema_source
from repro.applications.courses import courses_schema_source
from repro.logic import formulas as fm
from repro.logic.signature import PredicateSymbol
from repro.logic.sorts import Sort
from repro.logic.terms import Var
from repro.rpr.ast import Insert, RelationDecl, Schema, Star, Union
from repro.rpr.ast import ProcDecl, ValueLiteral
from repro.rpr.interpreter import Database
from repro.rpr.parser import parse_schema
from repro.rpr.semantics import initial_state, run


def _registrar(students=4, cs=4):
    schema = parse_schema(courses_schema_source())
    domains = {
        "Students": [f"s{i}" for i in range(1, students + 1)],
        "Courses": [f"c{i}" for i in range(1, cs + 1)],
    }
    db = Database(schema, domains)
    db.call("initiate")
    return db


def bench_update_throughput_registrar(benchmark):
    """A fixed 14-operation registrar workload."""

    def workload():
        db = _registrar()
        db.call("offer", "c1")
        db.call("offer", "c2")
        db.call("offer", "c3")
        for student in ("s1", "s2", "s3", "s4"):
            db.call("enroll", student, "c1")
        for student in ("s1", "s2"):
            db.call("transfer", student, "c1", "c2")
        db.call("cancel", "c3")
        db.call("enroll", "s3", "c2")
        db.call("cancel", "c1")
        db.call("offer", "c4")
        return db

    db = benchmark(workload)
    assert db.holds_fact("OFFERED", "c4")


@pytest.mark.parametrize("domain", [4, 8, 16])
def bench_quantified_guard_vs_domain(benchmark, domain):
    """cancel's guard quantifies over Students: cost grows with the
    carrier."""
    db = _registrar(students=domain, cs=2)
    db.call("offer", "c1")
    benchmark(db.possible_states, "cancel", "c1")


@pytest.mark.parametrize("money", [4, 8, 16])
def bench_relational_assignment_vs_domain(benchmark, money):
    """The bank's deposit rebuilds BALANCE with a quantified
    relational term over Accounts x Money."""
    values = [f"m{i}" for i in range(money)]
    schema = parse_schema(bank_schema_source(levels=money))
    db = Database(schema, {"Accounts": ["a1", "a2"], "Money": values})
    db.call("initiate")
    db.call("open_account", "a1")
    benchmark(db.possible_states, "deposit", "a1")


@pytest.mark.parametrize("domain", [2, 3])
def bench_star_fixpoint(benchmark, domain):
    """(insert R(t1) u ... u insert R(tn))*: the fixpoint reaches all
    2^n subsets."""
    things = Sort("Things")
    values = [f"t{i}" for i in range(1, domain + 2)]
    schema = Schema(
        (RelationDecl("R", (things,)),),
        (),
    )
    body = Insert("R", (ValueLiteral(values[0], things),))
    for value in values[1:]:
        body = Union(body, Insert("R", (ValueLiteral(value, things),)))
    statement = Star(body)
    state = initial_state(schema)
    domains = {things: tuple(values)}
    result = benchmark(run, statement, state, schema, domains)
    assert len(result) == 2 ** len(values)

"""E13 — term kernel: hash-consing, precomputed hashes, substitution
fast paths and compiled equation dispatch.

Expected shape: rebuilding an already-live term is a single intern
probe (independent of term size), hashing and equality are O(1)
instead of O(size), a substitution that binds nothing returns its
input without allocating, and warm-engine evaluation is dominated by
identity-keyed memo hits rather than recursive matching.
"""

import pytest

from repro.algebraic.algebra import TraceAlgebra
from repro.algebraic.rewriting import RewriteEngine
from repro.applications.courses import (
    courses_algebraic,
    default_courses,
    default_students,
)
from repro.logic.signature import FunctionSymbol
from repro.logic.sorts import STATE, Sort
from repro.logic.substitution import apply_to_term
from repro.logic.terms import App, Var, const

ITEM = Sort("bench_item")
ITEM_A = FunctionSymbol("bench_a", (), ITEM)
INITIATE = FunctionSymbol("bench_initiate", (), STATE)
PUSH = FunctionSymbol("bench_push", (ITEM, STATE), STATE)


def _chain(depth):
    trace = const(INITIATE)
    item = const(ITEM_A)
    for _ in range(depth):
        trace = App(PUSH, (item, trace))
    return trace


@pytest.mark.parametrize("depth", [10, 100])
def bench_intern_hit(benchmark, depth):
    """Rebuilding a live term: one table probe per node, no checks."""
    keep = _chain(depth)  # noqa: F841 — keeps the chain interned

    def run():
        return _chain(depth)

    assert benchmark(run) is keep


@pytest.mark.parametrize("depth", [10, 100])
def bench_hash_and_equality(benchmark, depth):
    """Hashing and comparing deep terms: precomputed hash + identity."""
    left = _chain(depth)
    right = _chain(depth)

    def run():
        return hash(left) == hash(right) and left == right

    assert benchmark(run)


@pytest.mark.parametrize("depth", [10, 100])
def bench_substitution_noop(benchmark, depth):
    """Applying a substitution that binds nothing in the term: the
    free-variable fast path returns the input itself."""
    trace = _chain(depth)
    mapping = {Var("bench_x", ITEM): const(ITEM_A)}

    def run():
        return apply_to_term(mapping, trace)

    assert benchmark(run) is trace


def bench_memoized_evaluation_warm(benchmark):
    """Re-evaluating every observation on a warm engine: pure memo
    hits on identity-keyed probes."""
    spec = courses_algebraic()
    algebra = TraceAlgebra(spec)
    trace = algebra.initial_trace()
    for name, *params in [
        ("offer", "c1"),
        ("enroll", "s1", "c1"),
        ("offer", "c2"),
        ("enroll", "s2", "c2"),
    ]:
        trace = algebra.apply(name, *params, trace=trace)
    signature = spec.signature
    terms = []
    for name, params in algebra.observations:
        symbol = signature.query(name)
        args = [
            signature.value(sort, value)
            for sort, value in zip(symbol.arg_sorts[:-1], params)
        ]
        terms.append(App(symbol, (*args, trace)))
    engine = algebra.engine
    for term in terms:
        engine.evaluate(term)

    def run():
        return [engine.evaluate(term) for term in terms]

    benchmark(run)


def bench_compiled_dispatch_cold_cache(benchmark):
    """Evaluating with the memo cleared every round but the compiled
    dispatch tables kept: isolates matcher + dispatch cost."""
    spec = courses_algebraic()
    algebra = TraceAlgebra(spec)
    trace = algebra.initial_trace()
    for name, *params in [
        ("offer", "c1"),
        ("enroll", "s1", "c1"),
        ("offer", "c2"),
        ("transfer", "s1", "c1", "c2"),
    ]:
        trace = algebra.apply(name, *params, trace=trace)
    signature = spec.signature
    terms = []
    for name, params in algebra.observations:
        symbol = signature.query(name)
        args = [
            signature.value(sort, value)
            for sort, value in zip(symbol.arg_sorts[:-1], params)
        ]
        terms.append(App(symbol, (*args, trace)))
    engine = RewriteEngine(spec)

    def run():
        engine.clear_cache()
        return [engine.evaluate(term) for term in terms]

    benchmark(run)


@pytest.mark.parametrize("mode", ["object", "arena"])
def bench_exploration_packed(benchmark, mode):
    """Full state-space exploration, object BFS vs the packed
    value-row explorer (same graph, byte-identical; the ratio is the
    arena's exploration speedup and is gated in CI by
    ``check_kernel_regression.py --explore-speedup``)."""
    spec = courses_algebraic(default_students(2), default_courses(3))
    algebra = TraceAlgebra(spec, packed=(mode == "arena"))
    algebra.explore()  # warm: compile dispatch tables / update plans

    graph = benchmark(algebra.explore)
    assert len(graph.states) == 125
    assert not graph.truncated


def bench_delta_reexploration(benchmark):
    """Re-exploring with the previous run's edge artifact: every
    transition replays from the values-keyed memo."""
    spec = courses_algebraic(default_students(2), default_courses(3))
    algebra = TraceAlgebra(spec)
    artifact = algebra.explore().artifact
    assert artifact is not None

    def run():
        return algebra.explore(edge_cache=artifact)

    graph = benchmark(run)
    assert graph.delta["reexplored_states"] == 0
    assert graph.delta["cached_transitions"] == len(graph.transitions)

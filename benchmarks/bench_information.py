"""E1/E2 — information level: static checking and modal model
checking, scaled over the number of states in the universe.

The paper gives no numbers (it is a methodology paper); these benches
document the cost of deciding its Section 3 semantics mechanically.
Expected shape: static checks are linear in carrier-product size;
modal checking of the transition constraint over a linear history is
quadratic in history length (each [] walks the future-of relation).
"""

import pytest

from repro.applications import courses
from repro.information.consistency import check_history, check_state
from repro.logic.structures import Structure
from repro.temporal.semantics import holds_at_every_state
from repro.temporal.kripke import linear_history


def _history(info, length):
    """A consistent, monotonically growing run of ``length`` distinct
    states: state i offers courses c1..ci and enrolls s_j in c_j for
    j < i (enrollment never shrinks, so the transition constraint
    holds)."""
    carriers = courses.courses_information_carriers(
        courses.default_students(length), courses.default_courses(length)
    )
    states = []
    for i in range(length):
        states.append(
            Structure(
                info.signature,
                carriers,
                relations={
                    "offered": {(f"c{k}",) for k in range(1, i + 1)},
                    "takes": {
                        (f"s{j}", f"c{j}") for j in range(1, i)
                    },
                },
            )
        )
    return states


@pytest.fixture(scope="module")
def info():
    return courses.courses_information()


@pytest.fixture(scope="module")
def carriers():
    return courses.courses_information_carriers()


@pytest.mark.parametrize("students,cs", [(2, 2), (4, 4), (8, 8)])
def bench_static_check_vs_domain(benchmark, info, students, cs):
    """E1: one static-constraint check; quantifier space grows as
    students x courses."""
    carriers = courses.courses_information_carriers(
        courses.default_students(students), courses.default_courses(cs)
    )
    state = Structure(
        info.signature,
        carriers,
        relations={
            "offered": {(c,) for c in courses.default_courses(cs)},
            "takes": {("s1", "c1")},
        },
    )
    result = benchmark(check_state, info, state)
    assert result.ok


@pytest.mark.parametrize("length", [4, 8, 16])
def bench_transition_constraint_over_history(benchmark, info, length):
    """E2: the modal transition constraint checked at every state of a
    linear history of the given length."""
    states = _history(info, length)
    universe = linear_history(states).reflexive_closure()
    axiom = info.transition_constraints[0]
    result = benchmark(holds_at_every_state, universe, axiom)
    assert result


@pytest.mark.parametrize("length", [4, 8, 16])
def bench_full_history_check(benchmark, info, length):
    """E1+E2 combined: the check_history entry point."""
    states = _history(info, length)
    result = benchmark(check_history, info, states)
    assert result.ok

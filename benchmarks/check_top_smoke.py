"""End-to-end smoke of live telemetry: ``repro top`` vs ``repro serve``.

Usage::

    python benchmarks/check_top_smoke.py

Spawns ``python -m repro serve bank`` as a real subprocess (serving
always enables telemetry), drives a small mixed workload through the
JSON-lines protocol (admitted updates, a precondition rejection,
queries), then runs ``python -m repro top HOST:PORT --once --json``
— the scripting form — and asserts the snapshot document reports the
load: non-zero admit/reject totals and 10s rates, p50/p99 latency
percentiles for the admission histograms, and the rejection-kind
counter.  Finally the same snapshot must render through the
Prometheus exporter.

Exit code 0 on success; 1 with a diagnostic on any failed
expectation.  Keeps to the stdlib so it runs anywhere the repo does.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.obs.export import prometheus_text  # noqa: E402
from repro.runtime.client import wait_until_ready  # noqa: E402


def fail(process: subprocess.Popen, message: str) -> int:
    print(f"top smoke FAILED: {message}", file=sys.stderr)
    process.kill()
    out, err = process.communicate(timeout=10)
    if err:
        print(f"server stderr:\n{err}", file=sys.stderr)
    if out:
        print(f"server stdout:\n{out}", file=sys.stderr)
    return 1


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "bank",
            "--allow-shutdown",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=str(REPO),
    )
    ready = process.stdout.readline().strip()
    print(f"server: {ready}")
    if " on " not in ready:
        return fail(process, f"unexpected ready line {ready!r}")
    host, _, port = ready.rpartition(" on ")[2].rpartition(":")
    client = wait_until_ready(host, int(port), timeout=30)

    # Drive load: three admits, one precondition rejection, queries.
    for account in ("a1", "a2"):
        reply = client.update("open_account", account)
        if not reply.get("accepted"):
            return fail(process, f"open_account refused: {reply}")
        if client.query("open", account).get("value") is not True:
            return fail(process, f"query after open: {account}")
    deposit = client.update("deposit", "a1")
    if not deposit.get("accepted"):
        return fail(process, f"deposit refused: {deposit}")
    # Re-opening an open account violates the precondition.
    rejected = client.update("open_account", "a1")
    if rejected.get("accepted") is not False:
        return fail(process, f"violating update admitted: {rejected}")

    top = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "top",
            f"{host}:{port}",
            "--once",
            "--json",
        ],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO),
        timeout=60,
    )
    if top.returncode != 0:
        return fail(
            process,
            f"repro top exit {top.returncode}: {top.stderr or top.stdout}",
        )
    snapshot = json.loads(top.stdout)

    try:
        counters = snapshot["counters"]
        accepted = counters["runtime.updates.accepted"]
        rejected_counter = counters["runtime.updates.rejected"]
        if accepted["total"] < 3:
            return fail(process, f"accepted total: {accepted}")
        if rejected_counter["total"] < 1:
            return fail(process, f"rejected total: {rejected_counter}")
        # The load was driven seconds ago: the 10s window sees it.
        if accepted["rate_10s"] <= 0 or rejected_counter["rate_10s"] <= 0:
            return fail(
                process,
                f"zero 10s rates under load: {accepted} "
                f"{rejected_counter}",
            )
        kinds = counters["runtime.rejected.precondition"]
        if kinds["total"] < 1:
            return fail(process, f"rejection-kind counter: {kinds}")
        admit = snapshot["histograms"]["runtime.update.open_account.admit"]
        if admit["count"] < 2:
            return fail(process, f"admit histogram count: {admit}")
        if not (0 < admit["p50_ms"] <= admit["p99_ms"]):
            return fail(process, f"admit percentiles: {admit}")
        reject = snapshot["histograms"][
            "runtime.update.open_account.reject"
        ]
        if reject["count"] < 1 or reject["p99_ms"] <= 0:
            return fail(process, f"reject histogram: {reject}")
        if snapshot["uptime_seconds"] < 0:
            return fail(process, f"uptime: {snapshot['uptime_seconds']}")
    except KeyError as missing:
        return fail(process, f"snapshot key missing: {missing}")

    exposition = prometheus_text(snapshot)
    if "repro_runtime_updates_accepted_total" not in exposition:
        return fail(process, "Prometheus exposition lacks counters")
    if 'le="+Inf"' not in exposition:
        return fail(process, "Prometheus exposition lacks histograms")

    bye = client.shutdown()
    if not bye.get("bye"):
        return fail(process, f"shutdown refused: {bye}")
    client.close()
    code = process.wait(timeout=30)
    if code != 0:
        return fail(process, f"server exit code {code}")
    print(
        "top smoke OK: "
        f"accepted={accepted['total']} rejected={rejected_counter['total']}, "
        f"open_account p50={admit['p50_ms']}ms p99={admit['p99_ms']}ms, "
        "Prometheus exposition rendered"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Guard the term-kernel benchmarks against performance regressions.

Usage::

    python benchmarks/check_kernel_regression.py BENCH_kernel.json \
        [--baseline benchmarks/kernel_baseline.json] [--factor 2.0] \
        [--explore-speedup 10.0]

Compares a pytest-benchmark JSON emission against the committed
baseline and exits non-zero if any benchmark's mean is more than
``factor`` times its baseline mean.  The factor leaves headroom for
machine-speed differences between the baseline host and CI runners;
what it catches is the kernel losing an asymptotic property (interning
degrading to construction, memo probes degrading to deep hashing),
which shows up as far more than 2x.

``--explore-speedup`` additionally gates the packed explorer's win
*within the run itself*: the object-mode exploration mean must be at
least ``FACTOR`` times the arena-mode mean.  Because both sides are
measured on the same host in the same session, the ratio is immune to
machine-speed differences and can be gated tightly.

Benchmarks present in only one of the two files are reported but do
not fail the check, so adding a benchmark does not require
regenerating the baseline in the same commit.

Exit codes: 0 ok, 1 regression, 2 unusable input (missing or
stale-schema baseline/run file).

Regenerate the baseline (after an intentional perf change) with::

    PYTHONPATH=src python -m pytest benchmarks/bench_terms.py \
        benchmarks/bench_rewriting.py -q --benchmark-json=run.json
    python benchmarks/check_kernel_regression.py run.json --write-baseline
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from _gate import (
    compare_to_baseline,
    fail_input,
    load_means,
    write_baseline,
)

DEFAULT_BASELINE = Path(__file__).parent / "kernel_baseline.json"

REGENERATE_HINT = (
    "Regenerate it with:\n"
    "  PYTHONPATH=src python -m pytest benchmarks/bench_terms.py"
    " benchmarks/bench_rewriting.py -q --benchmark-json=run.json\n"
    "  python benchmarks/check_kernel_regression.py run.json"
    " --write-baseline"
)

EXPLORE_OBJECT = "bench_exploration_packed[object]"
EXPLORE_ARENA = "bench_exploration_packed[arena]"


def _check_explore_speedup(
    run_means: dict[str, float], factor: float
) -> bool:
    """Within-run gate: object-mode exploration must be at least
    ``factor`` times slower than arena mode.  Returns True on pass."""
    missing = [
        name
        for name in (EXPLORE_OBJECT, EXPLORE_ARENA)
        if name not in run_means
    ]
    if missing:
        fail_input(
            "error: --explore-speedup needs both exploration benchmarks "
            f"in the run file; missing: {', '.join(missing)}\n"
            "Run benchmarks/bench_terms.py (both modes are collected "
            "by the one parametrized benchmark)."
        )
    obj, arena = run_means[EXPLORE_OBJECT], run_means[EXPLORE_ARENA]
    ratio = obj / arena if arena else float("inf")
    verdict = "ok" if ratio >= factor else "FAIL"
    print(
        f"  [{verdict:>4}] exploration speedup: object "
        f"{obj * 1e3:.2f}ms / arena {arena * 1e3:.2f}ms = {ratio:.1f}x "
        f"(required >= {factor:g}x)"
    )
    if ratio < factor:
        print(
            f"packed exploration speedup {ratio:.1f}x is below the "
            f"required {factor:g}x",
            file=sys.stderr,
        )
        return False
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("run", help="pytest-benchmark JSON of the run")
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help="baseline file (default: benchmarks/kernel_baseline.json)",
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="fail when run mean > factor * baseline mean (default 2.0)",
    )
    parser.add_argument(
        "--explore-speedup",
        type=float,
        default=None,
        metavar="FACTOR",
        help=(
            "fail unless object-mode exploration is at least FACTOR "
            "times slower than arena mode within this run"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the run's means to the baseline file and exit",
    )
    args = parser.parse_args(argv)

    run_means = load_means(args.run, "run")
    if not run_means:
        print("no benchmarks in the run file", file=sys.stderr)
        return 2

    if args.write_baseline:
        write_baseline(
            args.baseline,
            note=(
                "mean seconds per kernel benchmark; regenerate with "
                "check_kernel_regression.py --write-baseline"
            ),
            key="means",
            entries={
                name: round(mean, 9)
                for name, mean in run_means.items()
            },
        )
        print(f"wrote {len(run_means)} baseline means to {args.baseline}")
        return 0

    base_means = load_means(args.baseline, "baseline", REGENERATE_HINT)

    failures = compare_to_baseline(
        run_means, base_means, args.factor, unit="us"
    )

    speedup_ok = True
    if args.explore_speedup is not None:
        speedup_ok = _check_explore_speedup(
            run_means, args.explore_speedup
        )

    if failures:
        print(
            f"{len(failures)} benchmark(s) regressed beyond "
            f"{args.factor}x:",
            file=sys.stderr,
        )
        for name, ratio in failures:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
        return 1
    if not speedup_ok:
        return 1
    print(f"all {len(run_means)} benchmarks within {args.factor}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())

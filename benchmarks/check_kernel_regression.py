"""Guard the term-kernel benchmarks against performance regressions.

Usage::

    python benchmarks/check_kernel_regression.py BENCH_kernel.json \
        [--baseline benchmarks/kernel_baseline.json] [--factor 2.0]

Compares a pytest-benchmark JSON emission against the committed
baseline and exits non-zero if any benchmark's mean is more than
``factor`` times its baseline mean.  The factor leaves headroom for
machine-speed differences between the baseline host and CI runners;
what it catches is the kernel losing an asymptotic property (interning
degrading to construction, memo probes degrading to deep hashing),
which shows up as far more than 2x.

Benchmarks present in only one of the two files are reported but do
not fail the check, so adding a benchmark does not require
regenerating the baseline in the same commit.

Regenerate the baseline (after an intentional perf change) with::

    PYTHONPATH=src python -m pytest benchmarks/bench_terms.py \
        benchmarks/bench_rewriting.py -q --benchmark-json=run.json
    python benchmarks/check_kernel_regression.py run.json --write-baseline
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent / "kernel_baseline.json"


def _means(payload: dict) -> dict[str, float]:
    """Map benchmark name -> mean seconds from a pytest-benchmark
    JSON document (or from an already-reduced baseline file)."""
    if "benchmarks" in payload:
        return {
            bench["name"]: bench["stats"]["mean"]
            for bench in payload["benchmarks"]
        }
    return {name: float(mean) for name, mean in payload["means"].items()}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("run", help="pytest-benchmark JSON of the run")
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help="baseline file (default: benchmarks/kernel_baseline.json)",
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="fail when run mean > factor * baseline mean (default 2.0)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the run's means to the baseline file and exit",
    )
    args = parser.parse_args(argv)

    with open(args.run, encoding="utf-8") as handle:
        run_means = _means(json.load(handle))
    if not run_means:
        print("no benchmarks in the run file", file=sys.stderr)
        return 2

    if args.write_baseline:
        payload = {
            "note": (
                "mean seconds per kernel benchmark; regenerate with "
                "check_kernel_regression.py --write-baseline"
            ),
            "means": {
                name: round(mean, 9)
                for name, mean in sorted(run_means.items())
            },
        }
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {len(run_means)} baseline means to {args.baseline}")
        return 0

    with open(args.baseline, encoding="utf-8") as handle:
        base_means = _means(json.load(handle))

    failures = []
    for name in sorted(run_means):
        mean = run_means[name]
        base = base_means.get(name)
        if base is None:
            print(f"  [new]  {name}: {mean * 1e6:.1f}us (no baseline)")
            continue
        ratio = mean / base if base else float("inf")
        verdict = "FAIL" if ratio > args.factor else "ok"
        print(
            f"  [{verdict:>4}] {name}: {mean * 1e6:.1f}us "
            f"vs baseline {base * 1e6:.1f}us ({ratio:.2f}x)"
        )
        if ratio > args.factor:
            failures.append((name, ratio))
    for name in sorted(set(base_means) - set(run_means)):
        print(f"  [gone] {name}: in baseline but not in this run")

    if failures:
        print(
            f"{len(failures)} benchmark(s) regressed beyond "
            f"{args.factor}x:",
            file=sys.stderr,
        )
        for name, ratio in failures:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
        return 1
    print(f"all {len(run_means)} benchmarks within {args.factor}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""E14 — observability overhead: spans off, spans on, and export cost.

The tracer's contract is that *disabled* instrumentation is free: every
hot-path call is one ``OBS_STATE.enabled`` load and branch, and
:func:`repro.obs.tracer.span` returns a shared no-op handle.  The
benchmark pair ``bench_snapshot_plain`` / ``bench_snapshot_noop_spans``
runs the same snapshot workload with and without a layer of disabled
span/count calls; ``benchmarks/check_obs_overhead.py`` gates their
ratio at 1.05 (<= 5% overhead).  The ``traced`` variants quantify the
cost of tracing *on* (informational, not gated — enabling tracing is
an explicit opt-in).

Expected shape: plain ~= noop_spans (the gate); traced costs a few
percent more (span allocation per coarse unit); Chrome export is
linear in span count and far from any hot path.
"""

from repro.algebraic.algebra import TraceAlgebra
from repro.algebraic.rewriting import RewriteEngine
from repro.applications.courses import courses_algebraic
from repro.logic.terms import App
from repro.obs.export import to_chrome_json
from repro.obs.tracer import Tracer, activate, count, disable, span


def _snapshot_setup():
    """The courses spec, a 30-update churn trace, and the observation
    terms of a full snapshot (evaluated on a fresh engine per round,
    so every round does the full rewrite work)."""
    spec = courses_algebraic()
    algebra = TraceAlgebra(spec)
    steps = [
        ("offer", "c1"),
        ("enroll", "s1", "c1"),
        ("offer", "c2"),
        ("transfer", "s1", "c1", "c2"),
        ("cancel", "c1"),
        ("enroll", "s2", "c2"),
        ("offer", "c1"),
    ]
    trace = algebra.initial_trace()
    for index in range(30):
        name, *params = steps[index % len(steps)]
        trace = algebra.apply(name, *params, trace=trace)
    signature = spec.signature
    terms = []
    for name, params in algebra.observations:
        symbol = signature.query(name)
        args = [
            signature.value(sort, value)
            for sort, value in zip(symbol.arg_sorts[:-1], params)
        ]
        terms.append(App(symbol, (*args, trace)))
    return spec, terms


def bench_snapshot_plain(benchmark):
    """Baseline: the full snapshot workload, tracing disabled."""
    spec, terms = _snapshot_setup()
    disable()

    def run():
        engine = RewriteEngine(spec)
        return [engine.evaluate(term) for term in terms]

    benchmark(run)


def bench_snapshot_noop_spans(benchmark):
    """The identical workload under the layer of *disabled* span and
    counter calls the engine instrumentation adds per coarse unit —
    the gated <= 5% comparison against plain."""
    spec, terms = _snapshot_setup()
    disable()

    def run():
        with span("bench.snapshot", length=30):
            engine = RewriteEngine(spec)
            values = []
            for term in terms:
                count("bench.observations")
                values.append(engine.evaluate(term))
            return values

    benchmark(run)


def bench_snapshot_traced(benchmark):
    """The workload with tracing ON and a fresh tracer per call
    (informational: the opt-in cost of recording)."""
    spec, terms = _snapshot_setup()

    def run():
        with activate():
            with span("bench.snapshot", length=30):
                engine = RewriteEngine(spec)
                values = []
                for term in terms:
                    count("bench.observations")
                    values.append(engine.evaluate(term))
                return values

    try:
        benchmark(run)
    finally:
        disable()


def bench_explore_off(benchmark):
    """Full state-space exploration, tracing disabled."""
    spec = courses_algebraic()
    disable()
    benchmark(lambda: TraceAlgebra(spec).explore())


def bench_explore_traced(benchmark):
    """Full exploration with tracing ON (spans per BFS level plus the
    per-evaluate counters)."""
    spec = courses_algebraic()

    def run():
        with activate():
            return TraceAlgebra(spec).explore()

    try:
        benchmark(run)
    finally:
        disable()


def bench_export_chrome(benchmark):
    """Chrome-JSON export of a 1000-span tree (cold-path cost)."""
    tracer = Tracer()
    with tracer.span("root"):
        for outer in range(100):
            with tracer.span("check", index=outer):
                for _ in range(9):
                    with tracer.span("unit") as unit:
                        unit.count("items", 3)
    benchmark(to_chrome_json, tracer)

"""E14 — observability overhead: spans off, spans on, and export cost.

The tracer's contract is that *disabled* instrumentation is free: every
hot-path call is one ``OBS_STATE.enabled`` load and branch, and
:func:`repro.obs.tracer.span` returns a shared no-op handle.  The
benchmark pair ``bench_snapshot_plain`` / ``bench_snapshot_noop_spans``
runs the same snapshot workload with and without a layer of disabled
span/count calls; ``benchmarks/check_obs_overhead.py`` gates their
ratio at 1.05 (<= 5% overhead).  The ``traced`` variants quantify the
cost of tracing *on* (informational, not gated — enabling tracing is
an explicit opt-in).

Expected shape: plain ~= noop_spans (the gate); traced costs a few
percent more (span allocation per coarse unit); Chrome export is
linear in span count and far from any hot path.

The serving pair ``bench_serving_tel_off`` / ``bench_serving_tel_on``
gates the *enabled* live-telemetry cost of the runtime serving stack
(``repro serve`` always turns telemetry on): the same mixed
update/query/reject workload through ``RuntimeServer.handle_request``
— JSON decode/encode included — must stay within 5% with telemetry
recording.
"""

from repro.algebraic.algebra import TraceAlgebra
from repro.algebraic.rewriting import RewriteEngine
from repro.applications.courses import courses_algebraic
from repro.logic.terms import App
from repro.obs.export import to_chrome_json
from repro.obs.tracer import Tracer, activate, count, disable, span


def _snapshot_setup():
    """The courses spec, a 30-update churn trace, and the observation
    terms of a full snapshot (evaluated on a fresh engine per round,
    so every round does the full rewrite work)."""
    spec = courses_algebraic()
    algebra = TraceAlgebra(spec)
    steps = [
        ("offer", "c1"),
        ("enroll", "s1", "c1"),
        ("offer", "c2"),
        ("transfer", "s1", "c1", "c2"),
        ("cancel", "c1"),
        ("enroll", "s2", "c2"),
        ("offer", "c1"),
    ]
    trace = algebra.initial_trace()
    for index in range(30):
        name, *params = steps[index % len(steps)]
        trace = algebra.apply(name, *params, trace=trace)
    signature = spec.signature
    terms = []
    for name, params in algebra.observations:
        symbol = signature.query(name)
        args = [
            signature.value(sort, value)
            for sort, value in zip(symbol.arg_sorts[:-1], params)
        ]
        terms.append(App(symbol, (*args, trace)))
    return spec, terms


def bench_snapshot_plain(benchmark):
    """Baseline: the full snapshot workload, tracing disabled."""
    spec, terms = _snapshot_setup()
    disable()

    def run():
        engine = RewriteEngine(spec)
        return [engine.evaluate(term) for term in terms]

    benchmark(run)


def bench_snapshot_noop_spans(benchmark):
    """The identical workload under the layer of *disabled* span and
    counter calls the engine instrumentation adds per coarse unit —
    the gated <= 5% comparison against plain."""
    spec, terms = _snapshot_setup()
    disable()

    def run():
        with span("bench.snapshot", length=30):
            engine = RewriteEngine(spec)
            values = []
            for term in terms:
                count("bench.observations")
                values.append(engine.evaluate(term))
            return values

    benchmark(run)


def bench_snapshot_traced(benchmark):
    """The workload with tracing ON and a fresh tracer per call
    (informational: the opt-in cost of recording)."""
    spec, terms = _snapshot_setup()

    def run():
        with activate():
            with span("bench.snapshot", length=30):
                engine = RewriteEngine(spec)
                values = []
                for term in terms:
                    count("bench.observations")
                    values.append(engine.evaluate(term))
                return values

    try:
        benchmark(run)
    finally:
        disable()


def bench_explore_off(benchmark):
    """Full state-space exploration, tracing disabled."""
    spec = courses_algebraic()
    disable()
    benchmark(lambda: TraceAlgebra(spec).explore())


def bench_explore_traced(benchmark):
    """Full exploration with tracing ON (spans per BFS level plus the
    per-evaluate counters)."""
    spec = courses_algebraic()

    def run():
        with activate():
            return TraceAlgebra(spec).explore()

    try:
        benchmark(run)
    finally:
        disable()


def bench_export_chrome(benchmark):
    """Chrome-JSON export of a 1000-span tree (cold-path cost)."""
    tracer = Tracer()
    with tracer.span("root"):
        for outer in range(100):
            with tracer.span("check", index=outer):
                for _ in range(9):
                    with tracer.span("unit") as unit:
                        unit.count("items", 3)
    benchmark(to_chrome_json, tracer)


def _serving_setup():
    """A journaled bank runtime behind a :class:`RuntimeServer` and a
    round-stable mixed workload, pre-encoded as JSON lines.

    Each round opens, queries, and closes a fresh-per-index account
    (the open/close toggle returns the state to its starting shape,
    so every benchmark round does identical work) and drives one
    precondition rejection.  ``json.loads``/``json.dumps`` stay in
    the measured loop — the asyncio layer does its encoding outside
    ``handle_request``, so the round mirrors a full request cycle.
    """
    import json
    import tempfile

    from repro.runtime.apps import build_app
    from repro.runtime.server import RuntimeServer
    from repro.runtime.service import SpecRuntime

    app = build_app("bank")
    tmp = tempfile.TemporaryDirectory(prefix="bench-serving-")
    runtime = SpecRuntime(
        app.framework,
        app.descriptions,
        data_dir=tmp.name,
        fsync=False,
    )
    server = RuntimeServer(runtime)
    requests = []
    for index in range(8):
        account = f"b{index}"
        requests.append(
            {
                "op": "update",
                "update": "open_account",
                "params": [account],
            }
        )
        requests.append(
            {"op": "query", "query": "open", "params": [account]}
        )
        requests.append(
            {
                "op": "update",
                "update": "close_account",
                "params": [account],
            }
        )
        requests.append(
            {"op": "update", "update": "deposit", "params": ["zz"]}
        )
    encoded = [json.dumps(request) for request in requests]
    return server, encoded, tmp


def _serve_round(server, encoded):
    import json

    for line in encoded:
        response, _ = server.handle_request(json.loads(line))
        json.dumps(response)


def bench_serving_tel_off(benchmark):
    """Baseline: the serving workload with telemetry disabled (each
    instrumentation point costs one ``TEL_STATE.enabled`` branch)."""
    from repro.obs.telemetry import disable_telemetry

    server, encoded, tmp = _serving_setup()
    disable_telemetry()
    try:
        benchmark(_serve_round, server, encoded)
    finally:
        tmp.cleanup()


def bench_serving_tel_on(benchmark):
    """The identical workload with telemetry ON — the pair gated at
    <= 5% by ``check_obs_overhead.py`` (``repro serve`` always
    enables telemetry, so its *enabled* cost is the contract)."""
    from repro.obs.telemetry import activate_telemetry

    server, encoded, tmp = _serving_setup()
    try:
        with activate_telemetry():
            benchmark(_serve_round, server, encoded)
    finally:
        tmp.cleanup()

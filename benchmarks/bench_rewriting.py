"""E3 — functions level: query evaluation by conditional rewriting,
scaled over trace length, with the memoization ablation.

Expected shape: evaluation cost is linear in trace length; memoization
turns repeated observation of a growing trace from quadratic into
amortized linear (the ablation pair makes the gap visible).
"""

import pytest

from repro.algebraic.algebra import TraceAlgebra
from repro.algebraic.rewriting import RewriteEngine
from repro.applications.courses import courses_algebraic


def _long_trace(algebra, length):
    """offer/enroll/transfer churn of the given length."""
    steps = [
        ("offer", "c1"),
        ("enroll", "s1", "c1"),
        ("offer", "c2"),
        ("transfer", "s1", "c1", "c2"),
        ("cancel", "c1"),
        ("enroll", "s2", "c2"),
        ("transfer", "s1", "c2", "c1"),  # blocked (c1 not offered)
        ("offer", "c1"),
    ]
    trace = algebra.initial_trace()
    for index in range(length):
        name, *params = steps[index % len(steps)]
        trace = algebra.apply(name, *params, trace=trace)
    return trace


@pytest.mark.parametrize("length", [10, 50, 100])
def bench_single_query_vs_trace_length(benchmark, length):
    """One offered() evaluation on a fresh engine: linear in length."""
    spec = courses_algebraic()
    algebra = TraceAlgebra(spec)
    trace = _long_trace(algebra, length)

    def run():
        engine = RewriteEngine(spec)
        term = spec.signature.apply_query(
            "offered",
            spec.signature.value(spec.signature.logic.sort("course"), "c1"),
            trace,
        )
        return engine.evaluate(term)

    benchmark(run)


@pytest.mark.parametrize("memoize", [True, False], ids=["memo", "nomemo"])
def bench_snapshot_memoization_ablation(benchmark, memoize):
    """All six observations on a 30-update trace, with and without the
    term cache (the DESIGN.md ablation for the memoization choice)."""
    spec = courses_algebraic()
    algebra = TraceAlgebra(spec)
    trace = _long_trace(algebra, 30)
    observations = algebra.observations

    def run():
        engine = RewriteEngine(spec, memoize=memoize)
        signature = spec.signature
        values = []
        for name, params in observations:
            symbol = signature.query(name)
            args = [
                signature.value(sort, value)
                for sort, value in zip(symbol.arg_sorts[:-1], params)
            ]
            from repro.logic.terms import App

            values.append(engine.evaluate(App(symbol, (*args, trace))))
        return values

    benchmark(run)


@pytest.mark.parametrize("domain", [2, 3, 4])
def bench_snapshot_vs_domain(benchmark, domain):
    """Full snapshot cost as the parameter domains grow (observation
    count grows as d + d^2)."""
    from repro.applications.courses import (
        default_courses,
        default_students,
    )

    spec = courses_algebraic(
        default_students(domain), default_courses(domain)
    )
    algebra = TraceAlgebra(spec)
    trace = _long_trace(algebra, 20)
    benchmark(algebra.snapshot, trace)

"""Gate the warm-cache speedup of the verification pipeline.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/bench_pipeline.py -q \
        --benchmark-json=BENCH_pipeline.json
    python benchmarks/check_pipeline_regression.py BENCH_pipeline.json \
        [--factor 5.0]

Reads a pytest-benchmark JSON emission of ``bench_pipeline.py`` and
fails (exit 1) when the warm single-check re-verify is not at least
``factor`` times faster than the cold full verify.  Cold and warm run
in the same session on the same machine, so the ratio — unlike an
absolute wall-time baseline — is machine-independent: if replaying
nine stored results ever costs a fifth of re-running every bounded
sweep, the cache has regressed into decoration.

The full warm verify ratio is reported for context but not gated
(it replays every node and is dominated by the same fixed costs).
"""

from __future__ import annotations

import argparse
import sys

from _gate import load_means

#: The gated pair: (cold baseline, warm variant).
GATED_PAIR = (
    "bench_pipeline_cold_verify",
    "bench_pipeline_warm_single_check",
)

#: Informational pair, reported but never gated.
REPORTED_PAIR = (
    "bench_pipeline_cold_verify",
    "bench_pipeline_warm_verify",
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "run", help="pytest-benchmark JSON of bench_pipeline"
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=5.0,
        help=(
            "fail when cold mean < factor * warm single-check mean "
            "(default 5.0 = the incremental re-verify contract)"
        ),
    )
    args = parser.parse_args(argv)

    means = load_means(args.run, "run")

    cold_name, warm_name = GATED_PAIR
    try:
        cold, warm = means[cold_name], means[warm_name]
    except KeyError as missing:
        print(
            f"benchmark {missing} missing from the run",
            file=sys.stderr,
        )
        return 2

    speedup = cold / warm
    verdict = "OK" if speedup >= args.factor else "FAIL"
    print(
        f"[{verdict}] warm single-check re-verify: {cold_name} "
        f"{cold * 1e3:.1f}ms vs {warm_name} {warm * 1e3:.1f}ms "
        f"-> x{speedup:.1f} speedup (gate >= x{args.factor})"
    )

    base_name, full_name = REPORTED_PAIR
    if base_name in means and full_name in means:
        full = means[full_name]
        print(
            f"[info] full warm verify: {full * 1e3:.1f}ms "
            f"-> x{means[base_name] / full:.1f} speedup (not gated)"
        )

    return 0 if speedup >= args.factor else 1


if __name__ == "__main__":
    sys.exit(main())

"""End-to-end smoke of ``repro serve``: the CI serve lane.

Usage::

    PYTHONPATH=src python benchmarks/check_serve_smoke.py [application]

Spawns ``python -m repro serve`` as a real subprocess, waits for the
ready line, then drives the JSON-lines protocol over TCP:

* ping, query, admissible update (accepted, state visible),
* an update violating its precondition (must be *rejected* with a
  witness, and must not advance the sequence number),
* stats consistency, and
* a clean protocol-level shutdown (exit code 0).

Exit code 0 on success; 1 with a diagnostic on any failed
expectation.  Keeps to the stdlib so it runs anywhere the repo does.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.runtime.client import wait_until_ready  # noqa: E402


def fail(process: subprocess.Popen, message: str) -> int:
    print(f"serve smoke FAILED: {message}", file=sys.stderr)
    process.kill()
    out, err = process.communicate(timeout=10)
    if err:
        print(f"server stderr:\n{err}", file=sys.stderr)
    if out:
        print(f"server stdout:\n{out}", file=sys.stderr)
    return 1


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    application = args[0] if args else "bank"
    if application != "bank":
        # The driven workload (open_account/deposit and the a2
        # precondition probe) is the bank's; serving other
        # applications is covered by tests/runtime/test_differential.
        print(
            f"serve smoke drives the bank workload, not {application!r}",
            file=sys.stderr,
        )
        return 2
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            application,
            "--allow-shutdown",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=str(REPO),
    )
    ready = process.stdout.readline().strip()
    print(f"server: {ready}")
    if " on " not in ready:
        return fail(process, f"unexpected ready line {ready!r}")
    host, _, port = ready.rpartition(" on ")[2].rpartition(":")
    client = wait_until_ready(host, int(port), timeout=30)

    if not client.ping().get("pong"):
        return fail(process, "ping did not pong")

    accepted = client.update("open_account", "a1")
    if not (accepted.get("ok") and accepted.get("accepted")):
        return fail(process, f"open_account refused: {accepted}")
    if accepted.get("seq") != 1:
        return fail(process, f"seq after first update: {accepted}")

    value = client.query("open", "a1")
    if value.get("value") is not True:
        return fail(process, f"query after update: {value}")

    # a2 is closed: depositing violates the precondition and must be
    # rejected with a witness, without advancing the sequence number.
    rejected = client.update("deposit", "a2")
    if not rejected.get("ok"):
        return fail(process, f"rejection not served: {rejected}")
    if rejected.get("accepted") is not False:
        return fail(process, f"violating update admitted: {rejected}")
    violation = rejected.get("violation") or {}
    if violation.get("kind") != "precondition":
        return fail(process, f"missing witness: {rejected}")
    if rejected.get("seq") != 1:
        return fail(process, f"rejection advanced seq: {rejected}")
    print(
        "guard rejection witnessed: "
        f"{violation['kind']} / {violation['constraint']}"
    )

    stats = client.stats().get("stats", {})
    if stats.get("accepted") != 1 or stats.get("rejected") != 1:
        return fail(process, f"stats inconsistent: {stats}")

    bye = client.shutdown()
    if not bye.get("bye"):
        return fail(process, f"shutdown refused: {bye}")
    client.close()

    code = process.wait(timeout=30)
    if code != 0:
        return fail(process, f"server exit code {code}")
    print(f"serve smoke OK ({application}): accepted=1 rejected=1, "
          "clean shutdown")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Gate the disabled-tracing overhead at <= 5%.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/bench_obs.py -q \
        --benchmark-json=BENCH_obs.json
    python benchmarks/check_obs_overhead.py BENCH_obs.json [--factor 1.05]

Reads a pytest-benchmark JSON emission of ``bench_obs.py`` and fails
(exit 1) when the no-op-span variant of the snapshot workload is more
than ``factor`` times the plain variant.  Both variants run on the
same machine in the same session, so the comparison is
machine-independent — unlike the absolute kernel baseline, no
cross-host headroom is needed and the factor is the contract itself:
disabled instrumentation costs <= 5%.

The tracing-ON ratios (``bench_snapshot_traced``,
``bench_explore_traced``) are reported for context but never gated —
recording is an explicit opt-in.

The same emission also carries the serving-telemetry pair:
``bench_serving_tel_on`` must stay within ``--telemetry-factor``
(default 1.05) of ``bench_serving_tel_off`` — ``repro serve`` always
enables live telemetry, so its *enabled* overhead is part of the
contract.

With ``--coverage-run BENCH_coverage.json`` the same gate logic also
checks the coverage-enabled pair of :mod:`benchmarks.bench_coverage`:
``bench_snapshot_cov_on`` must stay within ``--coverage-factor``
(default 1.15, the <= 15% enabled-recording contract) of
``bench_snapshot_cov_off``.
"""

from __future__ import annotations

import argparse
import json
import sys

#: The gated pair: (baseline benchmark, instrumented benchmark).
GATED_PAIR = ("bench_snapshot_plain", "bench_snapshot_noop_spans")

#: The telemetry-enabled serving pair (gated in the same run).
TELEMETRY_PAIR = ("bench_serving_tel_off", "bench_serving_tel_on")

#: The coverage-enabled gated pair of ``bench_coverage.py``.
COVERAGE_PAIR = ("bench_snapshot_cov_off", "bench_snapshot_cov_on")

#: Informational pairs: (baseline, variant, description).
REPORTED_PAIRS = (
    ("bench_snapshot_plain", "bench_snapshot_traced", "tracing on"),
    ("bench_explore_off", "bench_explore_traced", "tracing on"),
)


def _means(payload: dict) -> dict[str, float]:
    """Map benchmark name -> mean seconds."""
    return {
        bench["name"]: bench["stats"]["mean"]
        for bench in payload["benchmarks"]
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("run", help="pytest-benchmark JSON of bench_obs")
    parser.add_argument(
        "--factor",
        type=float,
        default=1.05,
        help=(
            "fail when noop-span mean > factor * plain mean "
            "(default 1.05 = the 5%% disabled-overhead contract)"
        ),
    )
    parser.add_argument(
        "--telemetry-factor",
        type=float,
        default=1.05,
        help=(
            "fail when tel_on mean > factor * tel_off mean "
            "(default 1.05 = the 5%% telemetry-enabled serving "
            "contract)"
        ),
    )
    parser.add_argument(
        "--coverage-run",
        default=None,
        help=(
            "pytest-benchmark JSON of bench_coverage; when given, "
            "additionally gate the coverage-enabled pair"
        ),
    )
    parser.add_argument(
        "--coverage-factor",
        type=float,
        default=1.15,
        help=(
            "fail when cov_on mean > factor * cov_off mean "
            "(default 1.15 = the 15%% enabled-recording contract)"
        ),
    )
    args = parser.parse_args(argv)

    with open(args.run, encoding="utf-8") as handle:
        means = _means(json.load(handle))

    base_name, noop_name = GATED_PAIR
    try:
        base, noop = means[base_name], means[noop_name]
    except KeyError as missing:
        print(f"benchmark {missing} missing from the run",
              file=sys.stderr)
        return 2

    ratio = noop / base
    verdict = "OK" if ratio <= args.factor else "FAIL"
    print(
        f"[{verdict}] disabled-span overhead: {base_name} "
        f"{base * 1e3:.3f}ms vs {noop_name} {noop * 1e3:.3f}ms "
        f"-> x{ratio:.4f} (gate x{args.factor})"
    )

    for base_name, variant, label in REPORTED_PAIRS:
        if base_name in means and variant in means:
            print(
                f"[info] {label}: {variant} is "
                f"x{means[variant] / means[base_name]:.4f} of {base_name}"
            )

    failed = ratio > args.factor

    tel_off_name, tel_on_name = TELEMETRY_PAIR
    try:
        tel_off, tel_on = means[tel_off_name], means[tel_on_name]
    except KeyError as missing:
        print(f"benchmark {missing} missing from the run",
              file=sys.stderr)
        return 2
    tel_ratio = tel_on / tel_off
    tel_verdict = "OK" if tel_ratio <= args.telemetry_factor else "FAIL"
    print(
        f"[{tel_verdict}] telemetry-on serving overhead: "
        f"{tel_off_name} {tel_off * 1e3:.3f}ms vs {tel_on_name} "
        f"{tel_on * 1e3:.3f}ms -> x{tel_ratio:.4f} "
        f"(gate x{args.telemetry_factor})"
    )
    failed = failed or tel_ratio > args.telemetry_factor

    if args.coverage_run is not None:
        with open(args.coverage_run, encoding="utf-8") as handle:
            cov_means = _means(json.load(handle))
        off_name, on_name = COVERAGE_PAIR
        try:
            off, on = cov_means[off_name], cov_means[on_name]
        except KeyError as missing:
            print(
                f"benchmark {missing} missing from the coverage run",
                file=sys.stderr,
            )
            return 2
        cov_ratio = on / off
        cov_verdict = "OK" if cov_ratio <= args.coverage_factor else "FAIL"
        print(
            f"[{cov_verdict}] coverage-on overhead: {off_name} "
            f"{off * 1e3:.3f}ms vs {on_name} {on * 1e3:.3f}ms "
            f"-> x{cov_ratio:.4f} (gate x{args.coverage_factor})"
        )
        failed = failed or cov_ratio > args.coverage_factor

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

"""E4 — sufficient completeness (Section 4.4a): termination analysis
and exhaustive coverage, scaled over domain size and equation count.

Expected shape: termination analysis is linear in the number of
equations (one dependency-graph pass); coverage is dominated by the
trace x observation product and grows with the update-instance
branching factor.
"""

import pytest

from repro.algebraic.completeness import (
    check_coverage,
    check_sufficient_completeness,
    check_termination,
)
from repro.applications.courses import (
    courses_algebraic,
    courses_synthesized,
    default_courses,
    default_students,
)


@pytest.mark.parametrize(
    "spec_factory",
    [courses_algebraic, courses_synthesized],
    ids=["paper-16-eqs", "synthesized-19-eqs"],
)
def bench_termination_analysis(benchmark, spec_factory):
    """Structural-decrease analysis over the equation set."""
    spec = spec_factory()
    result = benchmark(check_termination, spec)
    assert result.ok


@pytest.mark.parametrize("domain", [2, 3])
def bench_coverage_vs_domain(benchmark, domain):
    """Exhaustive evaluation of all observations on all depth-2
    traces; the trace count is (update instances)^2."""
    spec = courses_algebraic(
        default_students(domain), default_courses(domain)
    )
    result = benchmark(check_coverage, spec, 2, 5_000)
    assert result.ok


def bench_full_sufficient_completeness(benchmark):
    """The combined Section 4.4a check on the paper's example."""
    spec = courses_algebraic()
    result = benchmark(check_sufficient_completeness, spec, 2)
    assert result.ok


@pytest.mark.parametrize("workers", [1, 2, 4])
def bench_parallel_coverage_domain3(benchmark, workers):
    """Coverage at the largest domain point (3 students, 3 courses),
    scaled over worker count; per-run ``VerificationStats`` land in
    ``extra_info`` (machine-readable via ``--benchmark-json``)."""
    from repro.parallel import StatsSink

    spec = courses_algebraic(default_students(3), default_courses(3))
    collected = {}

    def run():
        sink = StatsSink()
        report = check_coverage(
            spec, 2, 5_000, workers=workers, stats=sink
        )
        collected["stats"] = sink.combined("coverage")
        return report

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.ok
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["verification_stats"] = (
        collected["stats"].to_dict()
    )

"""E19 — the relational backend: SQL transactions and the oracle.

Each benchmark drives the SQLite realization produced by
:mod:`repro.relational` and records its batch size in ``extra_info``
so throughput is recoverable as ``batch / mean`` from the
pytest-benchmark JSON.  The acceptance floor — at least 2k guarded
SQL transactions/s on the bank — is enforced by
``check_relational_regression.py``; the point is not to race the
in-memory closure runtime (three orders of magnitude faster) but to
pin the lowering's constant factors so a quadratic slip in program
shape or staging shows up immediately.
"""

from __future__ import annotations

import pytest

from repro.relational import build_database
from repro.relational.oracle import DifferentialOracle

#: Transactions per measured batch (deposit/withdraw pairs stay
#: admissible forever, like the runtime benchmarks).
BATCH = 400


@pytest.fixture(scope="module")
def bank_db():
    """A warmed bank realization (programs compiled, account open)."""
    db = build_database("bank", with_guard=False)
    db.apply("open_account", "a1")
    db.apply("deposit", "a1")
    db.apply("withdraw", "a1")
    yield db
    db.close()


def bench_bank_sql_transactions(benchmark, bank_db):
    """The gated number: guarded two-phase transactions on SQLite."""

    def run():
        apply = bank_db.apply
        for _ in range(BATCH // 2):
            apply("deposit", "a1")
            apply("withdraw", "a1")

    benchmark(run)
    benchmark.extra_info["batch"] = BATCH
    benchmark.extra_info["kind"] = "transactions"


def bench_bank_sql_noops(benchmark, bank_db):
    """Precondition-false updates: one guard query, no transaction."""

    def run():
        apply = bank_db.apply
        for _ in range(BATCH):
            apply("open_account", "a1")  # already open: no-op

    benchmark(run)
    benchmark.extra_info["batch"] = BATCH
    benchmark.extra_info["kind"] = "noops"


def bench_courses_sql_snapshot(benchmark):
    """Full-state observation: every query table back into one
    interned Snapshot (the oracle's per-step cost)."""
    db = build_database("courses", with_guard=False)
    try:
        benchmark(db.snapshot)
        benchmark.extra_info["kind"] = "snapshot"
    finally:
        db.close()


def bench_courses_program_lowering(benchmark):
    """Cold lowering: ground + compile every update instance of the
    courses application to its SQL transaction program."""
    from repro.algebraic.algebra import TraceAlgebra
    from repro.relational.lowering import TransactionLowerer
    from repro.runtime.apps import build_app

    app = build_app("courses")
    spec = app.framework.algebraic
    instances = list(TraceAlgebra(spec).update_instances())

    def run():
        lowerer = TransactionLowerer(spec, app.descriptions)
        for update, params in instances:
            lowerer.lower(update, params)

    benchmark(run)
    benchmark.extra_info["batch"] = len(instances)
    benchmark.extra_info["kind"] = "lowering"


def bench_courses_oracle_replay(benchmark):
    """One full differential run (both semantics, snapshot compare
    at every step) over a fresh database per round."""
    steps = 30

    def run():
        db = build_database("courses", with_guard=False)
        try:
            report = DifferentialOracle(db).run(
                steps=steps, seed=1
            )
            assert report.passed
        finally:
            db.close()

    benchmark(run)
    benchmark.extra_info["batch"] = steps
    benchmark.extra_info["kind"] = "oracle"

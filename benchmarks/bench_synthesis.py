"""E11 — equation synthesis from structured descriptions (Section
4.2's construction) and the equivalence of the synthesized system with
the paper's hand-written one.

Expected shape: synthesis itself is trivial (linear in #queries x
#updates); the equivalence check costs one snapshot per trace per
system and dominates.
"""

import itertools

import pytest

from repro.algebraic.algebra import TraceAlgebra
from repro.algebraic.description import (
    initial_equations,
    synthesize_equations,
)
from repro.applications.courses import (
    courses_algebraic,
    courses_descriptions,
    courses_signature,
    courses_synthesized,
)


def bench_synthesis(benchmark):
    """Synthesizing the registrar's equations from its four
    structured descriptions."""

    def run():
        signature = courses_signature()
        return initial_equations(signature) + synthesize_equations(
            signature, courses_descriptions(signature)
        )

    # 2 initial + offer:3 + cancel:4 + enroll:4 + transfer:6.
    equations = benchmark(run)
    assert len(equations) == 19


@pytest.mark.parametrize("depth", [1, 2])
def bench_equivalence_paper_vs_synthesized(benchmark, depth):
    """Observational agreement of the two equation systems on every
    trace up to the depth (the E11 verification)."""
    paper = TraceAlgebra(courses_algebraic())
    synthesized = TraceAlgebra(courses_synthesized())
    traces = list(itertools.islice(paper.traces(depth), 400))

    def run():
        mismatches = 0
        for trace in traces:
            if paper.snapshot(trace) != synthesized.snapshot(trace):
                mismatches += 1
        return mismatches

    assert benchmark(run) == 0

"""E8 — W-grammar recognition (Section 5.4 syntactic correctness),
scaled over schema size and declaration-list length.

Expected shape: roughly linear in token count for fixed declaration
count; the declared-before-use predicate adds a factor proportional to
the declaration-list length (each `where NAME in DECLS` scans the
list), so cost grows mildly superlinearly with #relations.
"""

import pytest

from repro.applications.courses import courses_schema_source
from repro.rpr.parser import parse_schema
from repro.wgrammar.rpr_grammar import (
    check_schema_source,
    rpr_wgrammar,
    schema_marks,
)


def _schema_with(procs: int, relations: int) -> str:
    decls = "\n".join(
        f"  R{i}(Things);" for i in range(relations)
    )
    bodies = "\n".join(
        f"  proc p{i}(x) = if R0(x) then insert R{i % relations}(x)"
        for i in range(procs)
    )
    return f"schema\n{decls}\n{bodies}\nend-schema"


def bench_grammar_construction(benchmark):
    """Building the 60+-hyperrule grammar object."""
    grammar = benchmark(rpr_wgrammar)
    assert grammar.start == ("program",)


def bench_recognize_paper_schema(benchmark):
    """The Section 5.2 schema (135 tokens)."""
    source = courses_schema_source()
    result = benchmark(check_schema_source, source)
    assert result


@pytest.mark.parametrize("procs", [2, 6, 12])
def bench_recognition_vs_proc_count(benchmark, procs):
    source = _schema_with(procs, relations=2)
    result = benchmark(check_schema_source, source)
    assert result


@pytest.mark.parametrize("relations", [2, 6, 12])
def bench_recognition_vs_declaration_count(benchmark, relations):
    """The declared-before-use predicate scans DECLS per use."""
    source = _schema_with(procs=4, relations=relations)
    result = benchmark(check_schema_source, source)
    assert result


def bench_recursive_descent_parser_baseline(benchmark):
    """Baseline comparator: the hand-written parser on the same
    input — how much the grammatical formalism costs over ad hoc
    parsing."""
    source = courses_schema_source()
    schema = benchmark(parse_schema, source)
    assert len(schema.procs) == 5


def bench_tokenization(benchmark):
    source = courses_schema_source()
    marks = benchmark(schema_marks, source)
    assert len(marks) == 135

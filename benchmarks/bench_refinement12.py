"""E5/E6/E7 — the 1st->2nd refinement checks (Sections 4.4b-d),
scaled over carrier sizes.

Expected shape: dominated by |V| (exponential in carrier product: the
all-structures enumeration) and |G| x update instances for the
transition check — the practical reason bounded-domain verification
uses small carriers.
"""

import pytest

from repro.algebraic.algebra import TraceAlgebra
from repro.applications.courses import (
    courses_algebraic,
    courses_information,
    courses_information_carriers,
    default_courses,
    default_students,
)
from repro.parallel import StatsSink
from repro.refinement.first_second import (
    check_refinement,
    check_static_consistency,
    check_transition_consistency,
)
from repro.refinement.interpretation import Interpretation
from repro.refinement.reachability import compare_valid_reachable


def _setting(students, cs):
    info = courses_information()
    carriers = courses_information_carriers(
        default_students(students), default_courses(cs)
    )
    algebra = TraceAlgebra(
        courses_algebraic(default_students(students), default_courses(cs))
    )
    interpretation = Interpretation.homonym(info, algebra.signature)
    return info, carriers, algebra, interpretation


@pytest.mark.parametrize("students,cs", [(2, 2), (2, 3)])
def bench_state_space_exploration(benchmark, students, cs):
    """BFS over the observational state space (the G construction)."""
    _, _, algebra, _ = _setting(students, cs)
    graph = benchmark(algebra.explore)
    assert not graph.truncated


@pytest.mark.parametrize("students,cs", [(2, 2), (2, 3)])
def bench_e5_reachable_subset_valid(benchmark, students, cs):
    info, carriers, algebra, interpretation = _setting(students, cs)
    graph = algebra.explore()
    result = benchmark(
        check_static_consistency,
        info,
        carriers,
        algebra,
        interpretation,
        graph,
    )
    assert result.ok


@pytest.mark.parametrize("students,cs", [(2, 2), (2, 3)])
def bench_e6_valid_vs_reachable(benchmark, students, cs):
    """Includes the exponential all-structures enumeration of V."""
    info, carriers, algebra, interpretation = _setting(students, cs)
    graph = algebra.explore()
    result = benchmark(
        compare_valid_reachable,
        info,
        carriers,
        algebra,
        interpretation,
        graph,
    )
    assert result.ok


@pytest.mark.parametrize("students,cs", [(2, 2), (2, 3)])
def bench_e7_transition_consistency(benchmark, students, cs):
    info, carriers, algebra, interpretation = _setting(students, cs)
    graph = algebra.explore()
    result = benchmark(
        check_transition_consistency,
        info,
        carriers,
        algebra,
        interpretation,
        graph,
    )
    assert result.ok


def bench_full_section_44_bundle(benchmark):
    """The whole (a)-(d) plan on the paper's 2x2 example."""
    info, carriers, algebra, _ = _setting(2, 2)
    result = benchmark(check_refinement, info, carriers, algebra)
    assert result.ok


# ---------------------------------------------------------------------
# parallel scaling: the tentpole measurement
# ---------------------------------------------------------------------
@pytest.mark.parametrize("workers", [1, 2, 4])
def bench_parallel_exploration_2x3(benchmark, workers):
    """State-space exploration at the largest parameter point (2, 3),
    scaled over worker count.

    Each round starts from a fresh algebra (cold rewrite cache) so the
    worker counts compare like for like; the aggregated
    ``VerificationStats`` of the last round land in the benchmark's
    ``extra_info`` (machine-readable via ``--benchmark-json``).
    """
    students, cs = 2, 3
    collected = {}

    def setup():
        _, _, algebra, _ = _setting(students, cs)
        return (algebra,), {}

    def run(algebra):
        sink = StatsSink()
        graph = algebra.explore(workers=workers, stats=sink)
        collected["stats"] = sink.combined("explore")
        return graph

    graph = benchmark.pedantic(run, setup=setup, rounds=2, iterations=1)
    assert not graph.truncated
    assert len(graph.states) == 125
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["verification_stats"] = (
        collected["stats"].to_dict()
    )


@pytest.mark.parametrize("workers", [1, 4])
def bench_parallel_section_44_bundle(benchmark, workers):
    """The whole (a)-(d) plan on the 2x2 example, serial vs 4 workers;
    the reports are asserted identical to the serial path."""
    collected = {}

    def setup():
        info, carriers, algebra, _ = _setting(2, 2)
        return (info, carriers, algebra), {}

    def run(info, carriers, algebra):
        sink = StatsSink()
        report = check_refinement(
            info, carriers, algebra, workers=workers, stats=sink
        )
        collected["stats"] = sink.combined("first-second")
        return report

    result = benchmark.pedantic(run, setup=setup, rounds=2, iterations=1)
    assert result.ok
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["verification_stats"] = (
        collected["stats"].to_dict()
    )

"""Coverage-completeness smoke: courses must reach 100% cell coverage.

Usage::

    PYTHONPATH=src python -m repro verify courses --quiet \
        --coverage coverage.json
    python benchmarks/check_coverage_smoke.py coverage.json

Reads a ``--coverage`` emission and fails (exit 1) unless every
application document in it reports 100% equation-dispatch-cell
coverage with no sufficient-completeness holes.  At the default
bounds the bundled designs exercise every ``(query, constructor)``
cell, so anything below 100% means either a regression in the
recorder's merging or a genuinely dead equation — both worth failing
CI over.
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "coverage", help="coverage.json written by verify --coverage"
    )
    args = parser.parse_args(argv)

    with open(args.coverage, encoding="utf-8") as handle:
        payload = json.load(handle)
    documents = payload if isinstance(payload, list) else [payload]

    failed = False
    for document in documents:
        application = document.get("application") or "<unnamed>"
        summary = document["rewrite"]["summary"]
        coverage = summary["coverage"]
        holes = summary["uncovered_cells"]
        verdict = "OK" if coverage == 1.0 and not holes else "FAIL"
        print(
            f"[{verdict}] {application}: {coverage * 100:.1f}% of "
            f"{summary['total_cells']} dispatch cells covered"
            + (f"; holes: {', '.join(holes)}" if holes else "")
        )
        failed = failed or verdict == "FAIL"
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

"""Gate the relational-backend benchmarks: absolute floor + regression.

Usage::

    python benchmarks/check_relational_regression.py BENCH_relational.json \
        [--baseline benchmarks/relational_baseline.json] [--factor 2.0] \
        [--min-throughput 2000]

Two checks over a pytest-benchmark JSON emission of
``bench_relational.py``:

1. **Absolute floor** — ``bench_bank_sql_transactions`` must sustain
   at least ``--min-throughput`` SQL transactions per second
   (throughput is ``extra_info.batch / mean``).  The repo-acceptance
   number is 2k guarded transactions/s on in-memory SQLite; CI
   passes a lower floor to leave headroom for slow shared runners.
2. **Relative regression** — every benchmark's mean must stay within
   ``--factor`` of the committed baseline.  What this catches is a
   quadratic slip in program shape (staging the whole table instead
   of the delta, re-lowering per apply, ...), which shows up as far
   more than 2x.

Benchmarks present in only one of the two files are reported but do
not fail, so adding a benchmark does not require regenerating the
baseline in the same commit.

Regenerate the baseline (after an intentional perf change) with::

    PYTHONPATH=src python -m pytest benchmarks/bench_relational.py \
        -q --benchmark-json=BENCH_relational.json
    python benchmarks/check_relational_regression.py \
        BENCH_relational.json --write-baseline
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent / "relational_baseline.json"

#: The benchmark the absolute throughput floor applies to.
FLOOR_BENCHMARK = "bench_bank_sql_transactions"


def _records(payload: dict) -> dict[str, dict]:
    """Map benchmark name -> {mean, batch} from a pytest-benchmark
    JSON document (or an already-reduced baseline file)."""
    if "benchmarks" in payload:
        return {
            bench["name"]: {
                "mean": bench["stats"]["mean"],
                "batch": bench.get("extra_info", {}).get("batch"),
            }
            for bench in payload["benchmarks"]
        }
    return {
        name: dict(record)
        for name, record in payload["records"].items()
    }


def _throughput(record: dict) -> float | None:
    batch = record.get("batch")
    if not batch or not record["mean"]:
        return None
    return batch / record["mean"]


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("run", help="pytest-benchmark JSON of the run")
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help=(
            "baseline file (default: "
            "benchmarks/relational_baseline.json)"
        ),
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="fail when run mean > factor * baseline mean (default 2.0)",
    )
    parser.add_argument(
        "--min-throughput",
        type=float,
        default=2_000.0,
        help=(
            f"absolute floor in transactions/s for {FLOOR_BENCHMARK} "
            "(default 2000)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the run's records to the baseline file and exit",
    )
    args = parser.parse_args(argv)

    with open(args.run, encoding="utf-8") as handle:
        run_records = _records(json.load(handle))
    if not run_records:
        print("no benchmarks in the run file", file=sys.stderr)
        return 2

    if args.write_baseline:
        payload = {
            "note": (
                "mean seconds and batch size per relational "
                "benchmark; regenerate with "
                "check_relational_regression.py --write-baseline"
            ),
            "records": {
                name: {
                    "mean": round(record["mean"], 9),
                    "batch": record["batch"],
                }
                for name, record in sorted(run_records.items())
            },
        }
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(
            f"wrote {len(run_records)} baseline records to "
            f"{args.baseline}"
        )
        return 0

    failures: list[str] = []

    floor_record = run_records.get(FLOOR_BENCHMARK)
    if floor_record is None:
        failures.append(f"{FLOOR_BENCHMARK} missing from the run")
    else:
        throughput = _throughput(floor_record)
        if throughput is None:
            failures.append(
                f"{FLOOR_BENCHMARK} carries no batch extra_info"
            )
        else:
            verdict = (
                "FAIL" if throughput < args.min_throughput else "ok"
            )
            print(
                f"  [{verdict:>4}] {FLOOR_BENCHMARK}: "
                f"{throughput / 1000:.1f}k transactions/s "
                f"(floor {args.min_throughput / 1000:.1f}k)"
            )
            if throughput < args.min_throughput:
                failures.append(
                    f"{FLOOR_BENCHMARK}: {throughput:.0f} "
                    f"transactions/s below the "
                    f"{args.min_throughput:.0f} floor"
                )

    with open(args.baseline, encoding="utf-8") as handle:
        base_records = _records(json.load(handle))

    for name in sorted(run_records):
        record = run_records[name]
        base = base_records.get(name)
        if base is None:
            print(
                f"  [new]  {name}: {record['mean'] * 1e3:.2f}ms "
                "(no baseline)"
            )
            continue
        ratio = (
            record["mean"] / base["mean"]
            if base["mean"]
            else float("inf")
        )
        verdict = "FAIL" if ratio > args.factor else "ok"
        throughput = _throughput(record)
        rate = (
            f", {throughput / 1000:.1f}k/s"
            if throughput is not None
            else ""
        )
        print(
            f"  [{verdict:>4}] {name}: {record['mean'] * 1e3:.2f}ms "
            f"vs baseline {base['mean'] * 1e3:.2f}ms "
            f"({ratio:.2f}x{rate})"
        )
        if ratio > args.factor:
            failures.append(f"{name}: {ratio:.2f}x the baseline mean")
    for name in sorted(set(base_records) - set(run_records)):
        print(f"  [gone] {name}: in baseline but not in this run")

    if failures:
        print(
            f"{len(failures)} relational gate failure(s):",
            file=sys.stderr,
        )
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("relational benchmarks within bounds")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Gate the relational-backend benchmarks: absolute floor + regression.

Usage::

    python benchmarks/check_relational_regression.py BENCH_relational.json \
        [--baseline benchmarks/relational_baseline.json] [--factor 2.0] \
        [--min-throughput 2000]

Two checks over a pytest-benchmark JSON emission of
``bench_relational.py``:

1. **Absolute floor** — ``bench_bank_sql_transactions`` must sustain
   at least ``--min-throughput`` SQL transactions per second
   (throughput is ``extra_info.batch / mean``).  The repo-acceptance
   number is 2k guarded transactions/s on in-memory SQLite; CI
   passes a lower floor to leave headroom for slow shared runners.
2. **Relative regression** — every benchmark's mean must stay within
   ``--factor`` of the committed baseline.  What this catches is a
   quadratic slip in program shape (staging the whole table instead
   of the delta, re-lowering per apply, ...), which shows up as far
   more than 2x.

Benchmarks present in only one of the two files are reported but do
not fail, so adding a benchmark does not require regenerating the
baseline in the same commit.

Exit codes: 0 ok, 1 gate failure, 2 unusable input.

Regenerate the baseline (after an intentional perf change) with::

    PYTHONPATH=src python -m pytest benchmarks/bench_relational.py \
        -q --benchmark-json=BENCH_relational.json
    python benchmarks/check_relational_regression.py \
        BENCH_relational.json --write-baseline
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from _gate import (
    check_floor,
    compare_to_baseline,
    load_records,
    write_baseline,
)

DEFAULT_BASELINE = Path(__file__).parent / "relational_baseline.json"

REGENERATE_HINT = (
    "Regenerate it with:\n"
    "  PYTHONPATH=src python -m pytest benchmarks/bench_relational.py"
    " -q --benchmark-json=BENCH_relational.json\n"
    "  python benchmarks/check_relational_regression.py"
    " BENCH_relational.json --write-baseline"
)

#: The benchmark the absolute throughput floor applies to.
FLOOR_BENCHMARK = "bench_bank_sql_transactions"


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("run", help="pytest-benchmark JSON of the run")
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help=(
            "baseline file (default: "
            "benchmarks/relational_baseline.json)"
        ),
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="fail when run mean > factor * baseline mean (default 2.0)",
    )
    parser.add_argument(
        "--min-throughput",
        type=float,
        default=2_000.0,
        help=(
            f"absolute floor in transactions/s for {FLOOR_BENCHMARK} "
            "(default 2000)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the run's records to the baseline file and exit",
    )
    args = parser.parse_args(argv)

    run_records = load_records(args.run, "run")
    if not run_records:
        print("no benchmarks in the run file", file=sys.stderr)
        return 2

    if args.write_baseline:
        write_baseline(
            args.baseline,
            note=(
                "mean seconds and batch size per relational "
                "benchmark; regenerate with "
                "check_relational_regression.py --write-baseline"
            ),
            key="records",
            entries={
                name: {
                    "mean": round(record["mean"], 9),
                    "batch": record["batch"],
                }
                for name, record in run_records.items()
            },
        )
        print(
            f"wrote {len(run_records)} baseline records to "
            f"{args.baseline}"
        )
        return 0

    failures: list[str] = []
    failures += check_floor(
        run_records,
        FLOOR_BENCHMARK,
        args.min_throughput,
        rate_noun="transactions/s",
        floor_decimals=1,
    )

    base_records = load_records(args.baseline, "baseline", REGENERATE_HINT)
    failures += [
        f"{name}: {ratio:.2f}x the baseline mean"
        for name, ratio in compare_to_baseline(
            run_records, base_records, args.factor,
            unit="ms", show_rate=True,
        )
    ]

    if failures:
        print(
            f"{len(failures)} relational gate failure(s):",
            file=sys.stderr,
        )
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("relational benchmarks within bounds")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

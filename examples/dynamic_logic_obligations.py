"""The Section 5.3 'future work', realized: syntactic refinement via
dynamic logic.

The paper stops short of extending the mapping K to whole formulas,
"because L3 is not powerful enough (...) we would need a full
programming logic, such as Dynamic Logic (a separate paper will
explore this possibility)".  This example runs that separate paper's
program: every conditional equation of the registrar's algebraic
specification is translated into a dynamic-logic sentence over the RPR
schema — with the procedure inside a [·] modality — and model-checked
over the reachable database states.

Run with:  python examples/dynamic_logic_obligations.py
"""

from repro.applications.courses import (
    courses_algebraic,
    courses_schema_source,
)
from repro.dynamic import check_obligations, obligations_for_spec
from repro.refinement.second_third import RepresentationMap
from repro.rpr.parser import parse_schema


def main() -> None:
    spec = courses_algebraic()
    schema = parse_schema(courses_schema_source())
    rep_map = RepresentationMap.homonym(spec.signature, schema)

    print("A2 equations as dynamic-logic sentences over T3:\n")
    for equation, obligation in obligations_for_spec(spec, rep_map):
        print(f"  {equation.label:5s} {obligation}")

    print("\nmodel checking over the reachable database states...")
    report = check_obligations(spec, schema, rep_map)
    print(report)

    print("\nand on a schema whose cancel forgot its guard:")
    broken = parse_schema(
        courses_schema_source().replace(
            "if ~exists s: Students. TAKES(s, c)\n"
            "    then delete OFFERED(c)",
            "delete OFFERED(c)",
        )
    )
    print(check_obligations(spec, broken, None))


if __name__ == "__main__":
    main()

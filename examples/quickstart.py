"""Quickstart: verify the paper's running example at all three levels.

Builds the courses/students registrar of Casanova, Veloso & Furtado
(PODS 1984) — information-level theory, algebraic specification, RPR
schema — and runs every check of the methodology:

  (a) sufficient completeness         (Section 4.4a)
  (b) every reachable state is valid  (Section 4.4b)
  (c) every valid state is reachable  (Section 4.4c)
  (d) transition consistency          (Section 4.4d)
  -   W-grammar syntactic correctness (Section 5.4)
  -   T3 refines T2                   (Section 5.4)

Run with:  python examples/quickstart.py
"""

from repro import DesignFramework
from repro.applications import courses


def main() -> None:
    framework = DesignFramework.from_sources(
        information=courses.courses_information(),
        algebraic=courses.courses_algebraic(),
        schema_source=courses.courses_schema_source(),
        carriers=courses.courses_information_carriers(),
        name="courses registrar",
    )

    print("=== The three levels ===\n")
    print(framework.information)
    print()
    print(framework.algebraic)
    print()
    print(framework.schema)

    print("\n=== Verification (the paper's Section 4.4 / 5.4 plan) ===\n")
    report = framework.verify()
    print(report)

    if not report.ok:
        raise SystemExit("verification failed")
    print("\nAll checks passed — the design is a correct refinement "
          "chain T1 -> T2 -> T3.")


if __name__ == "__main__":
    main()

"""What the framework catches: three classic specification faults.

The value of a formal methodology is in the errors it refuses to let
through.  This example injects three realistic faults into the paper's
registrar and shows each being caught by a different check:

1. a *missing precondition* at the functions level (cancel no longer
   checks for enrolled students) — caught by check (b): a reachable
   state violates the static constraint;
2. an *extra update* that silently un-enrolls a student — caught by
   check (d): a realized transition violates the transition
   constraint;
3. a *representation bug* (the procedure for cancel drops its guard)
   — caught by the 2nd->3rd refinement: an A2 equation fails in the
   induced structure N(U), with a concrete counterexample state.

Run with:  python examples/catching_design_errors.py
"""

from repro.algebraic.algebra import TraceAlgebra
from repro.algebraic.description import (
    Effect,
    StructuredDescription,
    initial_equations,
    synthesize_equations,
)
from repro.algebraic.spec import AlgebraicSpec
from repro.applications import courses
from repro.refinement.first_second import check_refinement as check_12
from repro.refinement.second_third import check_refinement as check_23
from repro.rpr.parser import parse_schema


def fault_1_missing_precondition():
    print("=" * 70)
    print("FAULT 1: cancel forgets to check for enrolled students")
    print("=" * 70)
    signature = courses.courses_signature()
    descriptions = []
    for description in courses.courses_descriptions(signature):
        if description.update == "cancel":
            description = StructuredDescription(
                update="cancel",
                params=description.params,
                precondition=None,  # <-- fault
                effects=description.effects,
                doc="cancel without any check",
            )
        descriptions.append(description)
    equations = initial_equations(signature) + synthesize_equations(
        signature, descriptions
    )
    spec = AlgebraicSpec(signature, tuple(equations), name="faulty")

    report = check_12(
        courses.courses_information(),
        courses.courses_information_carriers(),
        TraceAlgebra(spec),
    )
    print("check (b) every reachable state valid:", bool(report.static))
    trace, axiom = report.static.violations[0]
    print("  counterexample trace:", trace)
    print("  violated axiom:      ", axiom)
    assert not report.correct
    print()


def fault_2_unconstrained_drop():
    print("=" * 70)
    print("FAULT 2: an extra 'drop' update lets enrollment hit zero")
    print("=" * 70)
    from repro.logic.terms import Var

    signature = courses.courses_signature()
    student = signature.logic.sort("student")
    course = signature.logic.sort("course")
    signature.add_update("drop", [student, course])
    s, c = Var("s", student), Var("c", course)
    descriptions = courses.courses_descriptions(signature) + [
        StructuredDescription(
            update="drop",
            params=(s, c),
            effects=(Effect("takes", (s, c), False),),  # <-- fault
            doc="unconditional un-enrollment",
        )
    ]
    equations = initial_equations(signature) + synthesize_equations(
        signature, descriptions
    )
    spec = AlgebraicSpec(signature, tuple(equations), name="with drop")

    report = check_12(
        courses.courses_information(),
        courses.courses_information_carriers(),
        TraceAlgebra(spec),
    )
    print("check (b) static consistency still holds:", bool(report.static))
    print("check (d) transition consistency:", bool(report.transitions))
    transition, axiom = report.transitions.violations[0]
    print(
        f"  offending update: {transition.update}"
        f"({', '.join(transition.params)})"
    )
    assert not report.correct
    print()


def fault_3_representation_bug():
    print("=" * 70)
    print("FAULT 3: the RPR procedure for cancel drops its guard")
    print("=" * 70)
    broken_source = courses.courses_schema_source().replace(
        "if ~exists s: Students. TAKES(s, c)\n    then delete OFFERED(c)",
        "delete OFFERED(c)",  # <-- fault
    )
    report = check_23(
        courses.courses_algebraic(), parse_schema(broken_source)
    )
    print("2nd->3rd refinement:", bool(report))
    failure = report.failures[0]
    print("  first failing equation:", failure.equation.describe())
    print("  at state:", failure.state)
    print(
        "  lhs =", failure.lhs_value, "  rhs =", failure.rhs_value
    )
    assert not report.ok
    print()


def main() -> None:
    fault_1_missing_precondition()
    fault_2_unconstrained_drop()
    fault_3_representation_bug()
    print("all three faults were caught by the intended check.")


if __name__ == "__main__":
    main()

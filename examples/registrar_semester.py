"""A semester at the registrar: executing the representation level.

Drives the RPR schema of Section 5.2 through a realistic enrollment
workload (offers, enrollments, transfers, a failed cancellation, end
of term), while cross-checking after every operation that

* the database state stays consistent with the information-level
  static constraints,
* the full operation history obeys the transition constraints, and
* the state agrees with the algebraic level's answer computed by
  term rewriting on the trace (the essence of the 2nd->3rd
  refinement).

Run with:  python examples/registrar_semester.py
"""

from repro.algebraic.algebra import TraceAlgebra
from repro.applications import courses
from repro.information.consistency import check_history, check_state
from repro.logic.structures import Structure
from repro.refinement.interpretation import Interpretation
from repro.rpr.interpreter import Database
from repro.rpr.parser import parse_schema

STUDENTS = ["s1", "s2", "s3"]
COURSES = ["c1", "c2", "c3"]

WORKLOAD = [
    ("initiate",),
    ("offer", "c1"),
    ("offer", "c2"),
    ("enroll", "s1", "c1"),
    ("enroll", "s2", "c1"),
    ("enroll", "s3", "c2"),
    ("cancel", "c1"),              # blocked: students are enrolled
    ("transfer", "s1", "c1", "c2"),
    ("offer", "c3"),
    ("transfer", "s2", "c1", "c3"),
    ("cancel", "c1"),              # now succeeds
    ("enroll", "s1", "c3"),
]


def state_as_structure(info, carriers, db):
    """Read the database state back as an information-level structure."""
    return Structure(
        info.signature,
        carriers,
        relations={
            "offered": {row for row in db.rows("OFFERED")},
            "takes": {row for row in db.rows("TAKES")},
        },
    )


def main() -> None:
    info = courses.courses_information()
    carriers = courses.courses_information_carriers(STUDENTS, COURSES)
    schema = parse_schema(courses.courses_schema_source())
    db = Database(schema, {"Students": STUDENTS, "Courses": COURSES})

    algebra = TraceAlgebra(courses.courses_algebraic(STUDENTS, COURSES))
    trace = None
    history = []

    print("op".ljust(28), "OFFERED".ljust(18), "TAKES")
    for op, *args in WORKLOAD:
        db.call(op, *args)
        # Mirror the operation at the algebraic level.
        if op == "initiate":
            trace = algebra.initial_trace()
        else:
            trace = algebra.apply(op, *args, trace=trace)

        structure = state_as_structure(info, carriers, db)
        history.append(structure)
        static = check_state(info, structure)
        assert static.ok, f"static constraint violated after {op}"

        # Cross-level agreement: rewriting answers == database rows.
        assert algebra.snapshot(trace).relation("offered") == db.rows(
            "OFFERED"
        )
        assert algebra.snapshot(trace).relation("takes") == db.rows(
            "TAKES"
        )

        offered = ",".join(sorted(r[0] for r in db.rows("OFFERED")))
        takes = ",".join(
            f"{s}:{c}" for s, c in sorted(db.rows("TAKES"))
        )
        call = f"{op}({', '.join(args)})"
        print(call.ljust(28), ("{" + offered + "}").ljust(18),
              "{" + takes + "}")

    transition_report = check_history(info, history)
    print("\nwhole-semester history acceptable:", bool(transition_report))
    print("operations executed:", len(db.history))
    print("levels agreed on every intermediate state.")


if __name__ == "__main__":
    main()

"""Methodology walkthrough: specify a NEW application from scratch.

Follows the paper's recipe end to end for a small meeting-room booking
system that is not shipped with the library:

1. information level — sorts, db-predicates, one static and one
   transition constraint;
2. functions level — queries/updates, then *synthesized* equations
   from structured descriptions (Section 4.2's construction, which
   "obtains equations that are guaranteed, by construction, to be
   correct with respect to the description");
3. representation level — an RPR schema written by hand;
4. every refinement check, mechanically.

Run with:  python examples/build_your_own_spec.py
"""

from repro import DesignFramework
from repro.algebraic.description import (
    STATE_VAR,
    Effect,
    StructuredDescription,
    initial_equations,
    synthesize_equations,
)
from repro.algebraic.signature import AlgebraicSignature
from repro.algebraic.spec import AlgebraicSpec
from repro.information.spec import InformationSpec
from repro.logic import formulas as fm
from repro.logic.parser import parse_formula
from repro.logic.signature import Signature
from repro.logic.sorts import Sort
from repro.logic.terms import Var

TEAM = Sort("team")
ROOM = Sort("room")

TEAMS = ["t1", "t2"]
ROOMS = ["r1", "r2"]


def information_level() -> InformationSpec:
    """Rooms are bookable; a room holds at most one booking; a booked
    room cannot silently change hands."""
    signature = Signature(sorts=[TEAM, ROOM])
    signature.add_predicate("bookable", [ROOM], db=True)
    signature.add_predicate("booked", [TEAM, ROOM], db=True)
    booked_bookable = parse_formula(
        "forall t:team, r:room. booked(t, r) -> bookable(r)", signature
    )
    one_booking = parse_formula(
        "forall t:team, t2:team, r:room."
        " booked(t, r) & booked(t2, r) -> t = t2",
        signature,
    )
    no_silent_handover = parse_formula(
        "forall t:team, r:room."
        " [](booked(t, r) ->"
        " [](booked(t, r) | ~exists t2:team. booked(t2, r)))",
        signature,
        allow_modal=True,
    )
    return InformationSpec(
        signature,
        (booked_bookable, one_booking, no_silent_handover),
        name="room booking",
    )


def functions_level() -> AlgebraicSpec:
    """Queries/updates plus equations synthesized from descriptions."""
    signature = AlgebraicSignature("booking")
    team = signature.add_parameter_sort("team")
    room = signature.add_parameter_sort("room")
    signature.add_parameter_values(team, TEAMS)
    signature.add_parameter_values(room, ROOMS)
    signature.add_query("bookable", [room])
    signature.add_query("booked", [team, room])
    signature.add_initial()
    signature.add_update("commission", [room])
    signature.add_update("decommission", [room])
    signature.add_update("book", [team, room])
    signature.add_update("release", [team, room])

    t = Var("t", team)
    t2 = Var("t2", team)
    r = Var("r", room)
    u = STATE_VAR
    true = signature.true()
    bookable = lambda rr, uu: signature.apply_query("bookable", rr, uu)
    booked = lambda tt, rr, uu: signature.apply_query(
        "booked", tt, rr, uu
    )
    room_free = fm.Not(fm.Exists(t2, fm.Equals(booked(t2, r, u), true)))

    descriptions = [
        StructuredDescription(
            update="commission",
            params=(r,),
            effects=(Effect("bookable", (r,), True),),
            doc="room r becomes bookable",
        ),
        StructuredDescription(
            update="decommission",
            params=(r,),
            precondition=room_free,
            effects=(Effect("bookable", (r,), False),),
            doc="room r is withdrawn if nobody holds it",
        ),
        StructuredDescription(
            update="book",
            params=(t, r),
            precondition=fm.And(
                fm.Equals(bookable(r, u), true), room_free
            ),
            effects=(Effect("booked", (t, r), True),),
            doc="team t books free bookable room r",
        ),
        StructuredDescription(
            update="release",
            params=(t, r),
            precondition=fm.Equals(booked(t, r, u), true),
            effects=(Effect("booked", (t, r), False),),
            doc="team t releases room r",
        ),
    ]
    equations = initial_equations(signature) + synthesize_equations(
        signature, descriptions
    )
    print(f"synthesized {len(equations)} equations, e.g.:")
    for equation in equations[:4]:
        print("  ", equation)
    return AlgebraicSpec(signature, tuple(equations), name="room booking")


REPRESENTATION_LEVEL = """
schema
  BOOKABLE(Rooms);
  BOOKED(Teams, Rooms);

  proc initiate() = (BOOKABLE := {} ; BOOKED := {})

  proc commission(r) = insert BOOKABLE(r)

  proc decommission(r) =
    if ~exists t: Teams. BOOKED(t, r)
    then delete BOOKABLE(r)

  proc book(t, r) =
    if BOOKABLE(r) & ~exists t2: Teams. BOOKED(t2, r)
    then insert BOOKED(t, r)

  proc release(t, r) =
    if BOOKED(t, r)
    then delete BOOKED(t, r)
end-schema
"""


def main() -> None:
    framework = DesignFramework.from_sources(
        information=information_level(),
        algebraic=functions_level(),
        schema_source=REPRESENTATION_LEVEL,
        carriers={TEAM: TEAMS, ROOM: ROOMS},
        name="room booking",
    )
    print("\nverifying the complete design...\n")
    report = framework.verify()
    print(report)
    if not report.ok:
        raise SystemExit("verification failed")


if __name__ == "__main__":
    main()

"""A teller session on the bank application.

Shows the parts of the formalism beyond the paper's registrar: a
money-valued (non-Boolean) query, interpreted unit arithmetic at the
functions level, and arithmetic as a stored successor relation at the
representation level — then verifies the whole three-level design.

Run with:  python examples/bank_teller.py
"""

from repro.algebraic.algebra import TraceAlgebra
from repro.applications.bank import (
    bank_algebraic,
    bank_framework,
    bank_schema_source,
)
from repro.rpr.interpreter import Database
from repro.rpr.parser import parse_schema

WORKLOAD = [
    ("open_account", "a1"),
    ("deposit", "a1"),
    ("deposit", "a1"),
    ("open_account", "a2"),
    ("deposit", "a2"),
    ("withdraw", "a1"),
    ("close_account", "a2"),   # blocked: a2 still holds m1
    ("withdraw", "a2"),
    ("close_account", "a2"),   # succeeds
]


def main() -> None:
    schema = parse_schema(bank_schema_source())
    db = Database(
        schema,
        {"Accounts": ["a1", "a2"], "Money": ["m0", "m1", "m2", "m3"]},
    )
    db.call("initiate")

    algebra = TraceAlgebra(bank_algebraic())
    trace = algebra.initial_trace()

    print("op".ljust(22), "a1".ljust(10), "a2")
    for op, account in WORKLOAD:
        db.call(op, account)
        trace = algebra.apply(op, account, trace=trace)

        def fmt(acc):
            balance = algebra.query("balance", acc, trace=trace)
            open_ = algebra.query("open", acc, trace=trace)
            tag = "open" if open_ else "closed"
            # Cross-check with the representation level.
            assert db.holds_fact("BALANCE", acc, balance)
            assert db.holds_fact("OPEN", acc) == open_
            return f"{balance}/{tag}"

        print(f"{op}({account})".ljust(22), fmt("a1").ljust(10), fmt("a2"))

    print("\nledger relation:", sorted(db.rows("BALANCE")))
    print("successor table:", sorted(db.rows("NEXT")))

    print("\nverifying the full three-level bank design...")
    report = bank_framework().verify()
    print(report)
    if not report.ok:
        raise SystemExit("verification failed")


if __name__ == "__main__":
    main()

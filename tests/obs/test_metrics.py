"""Tests for the metrics registry and its stats/tracer bridges."""

import json

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.parallel.stats import VerificationStats


def _stats():
    explore = VerificationStats(
        label="explore",
        workers=2,
        states_checked=25,
        cache_hits=100,
        cache_misses=40,
        rewrite_steps=60,
        dispatch_hits=90,
        interned_terms=30,
        wall_time=0.5,
    )
    coverage = VerificationStats(
        label="coverage",
        workers=2,
        states_checked=273,
        cache_hits=10,
        wall_time=0.25,
    )
    return VerificationStats(
        label="verify",
        workers=2,
        states_checked=298,
        cache_hits=110,
        cache_misses=40,
        rewrite_steps=60,
        dispatch_hits=90,
        interned_terms=30,
        wall_time=0.75,
        parts=(explore, coverage),
    )


class TestRegistryBasics:
    def test_inc_and_gauge(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 4)
        registry.set_gauge("g", 1.5)
        assert registry.counters == {"a": 5}
        assert registry.gauges == {"g": 1.5}

    def test_merge_sums_counters_and_overwrites_gauges(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.inc("n", 2)
        left.set_gauge("g", 1.0)
        right.inc("n", 3)
        right.inc("m", 1)
        right.set_gauge("g", 9.0)
        left.merge(right)
        assert left.counters == {"n": 5, "m": 1}
        assert left.gauges == {"g": 9.0}

    def test_merge_counters_with_prefix(self):
        registry = MetricsRegistry()
        registry.merge_counters({"steps": 7}, prefix="wgrammar.")
        assert registry.counters == {"wgrammar.steps": 7}

    def test_to_dict_and_json_are_sorted(self):
        registry = MetricsRegistry()
        registry.inc("zeta")
        registry.inc("alpha")
        payload = json.loads(registry.to_json())
        assert list(payload["counters"]) == ["alpha", "zeta"]
        assert set(payload) == {"counters", "gauges"}

    def test_str_renders_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.inc("hits", 3)
        registry.set_gauge("wall", 0.5)
        text = str(registry)
        assert "hits = 3" in text
        assert "wall = 0.5 (gauge)" in text


class TestStatsBridge:
    def test_record_verification_maps_the_flat_names(self):
        registry = MetricsRegistry()
        registry.record_verification(_stats())
        assert registry.counters["verify.items"] == 298
        assert registry.counters["rewrite.cache.hits"] == 110
        assert registry.counters["rewrite.cache.misses"] == 40
        assert registry.counters["rewrite.steps"] == 60
        assert registry.counters["rewrite.dispatch.hits"] == 90
        assert registry.counters["kernel.interned_terms"] == 30
        assert registry.gauges["verify.wall_time"] == 0.75
        assert registry.gauges["verify.workers"] == 2

    def test_record_verification_keeps_per_check_parts(self):
        registry = MetricsRegistry()
        registry.record_verification(_stats())
        assert registry.counters["check.explore.items"] == 25
        assert registry.counters["check.explore.rewrite.cache.hits"] == 100
        assert registry.counters["check.coverage.items"] == 273
        assert registry.gauges["check.explore.wall_time"] == 0.5
        assert registry.gauges["check.coverage.wall_time"] == 0.25

    def test_record_kernel_gauges_the_intern_tables(self):
        from repro.logic.terms import intern_stats, intern_table_size

        registry = MetricsRegistry()
        registry.record_kernel()
        assert registry.gauges["kernel.intern_table.size"] == (
            intern_table_size()
        )
        detail = intern_stats()
        assert registry.gauges["kernel.intern_table.vars"] == (
            detail["vars"]
        )
        assert registry.gauges["kernel.intern_table.apps"] == (
            detail["apps"]
        )


class TestTracerBridge:
    def test_merge_tracer_folds_span_counter_totals(self):
        tracer = Tracer()
        tracer.count("loose", 1)
        with tracer.span("outer"):
            tracer.count("rewrite.evaluate.calls", 5)
            with tracer.span("inner"):
                tracer.count("rewrite.evaluate.calls", 2)
        registry = MetricsRegistry()
        registry.inc("rewrite.evaluate.calls", 1)
        registry.merge_tracer(tracer)
        assert registry.counters["rewrite.evaluate.calls"] == 8
        assert registry.counters["loose"] == 1

"""Observability test fixtures: never leak tracing state."""

import pytest

from repro.obs.tracer import OBS_STATE, disable


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Guarantee tracing is off before and after every obs test."""
    disable()
    yield
    disable()
    assert OBS_STATE.enabled is False

"""Observability test fixtures: never leak tracing state."""

import pytest

from repro.obs.coverage import COV_STATE, disable_coverage
from repro.obs.tracer import OBS_STATE, disable


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Guarantee tracing and coverage are off before and after every
    obs test."""
    disable()
    disable_coverage()
    yield
    disable()
    disable_coverage()
    assert OBS_STATE.enabled is False
    assert COV_STATE.enabled is False

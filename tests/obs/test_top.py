"""End-to-end tests for ``repro top``, the ``telemetry`` ops it
polls, and the ``--telemetry-json`` CLI flags."""

import json
import queue
import threading

import pytest

from repro.cli import main
from repro.errors import ServingError
from repro.obs.telemetry import activate_telemetry
from repro.obs.top import (
    fetch_worker_snapshot,
    parse_address,
    render_snapshot,
)
from repro.parallel.worker import WorkerServer
from repro.runtime.apps import build_app
from repro.runtime.client import wait_until_ready
from repro.runtime.server import serve
from repro.runtime.service import SpecRuntime


@pytest.fixture()
def live_server():
    """A bank runtime served on loopback with telemetry enabled and a
    little traffic already driven through (one admit, one reject)."""
    app = build_app("bank")
    runtime = SpecRuntime(app.framework, app.descriptions)
    ports: queue.Queue = queue.Queue()
    with activate_telemetry():
        thread = threading.Thread(
            target=serve,
            args=(runtime,),
            kwargs={
                "allow_shutdown": True,
                "ready": lambda server: ports.put(server.port),
                "install_signal_handlers": False,
            },
            daemon=True,
        )
        thread.start()
        port = ports.get(timeout=15)
        with wait_until_ready("127.0.0.1", port) as client:
            assert client.update("open_account", "a1")["accepted"]
            assert client.update("deposit", "a2")["accepted"] is False
            assert client.query("open", "a1")["value"] is True
            yield port
            client.shutdown()
        thread.join(timeout=10)


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("127.0.0.1:8080") == ("127.0.0.1", 8080)

    def test_missing_port_is_an_error(self):
        with pytest.raises(ServingError, match="HOST:PORT"):
            parse_address("localhost")

    def test_non_numeric_port_is_an_error(self):
        with pytest.raises(ServingError, match="non-numeric"):
            parse_address("localhost:http")


class TestRenderSnapshot:
    def test_empty_snapshot_still_renders_a_heading(self):
        text = render_snapshot({}, address="x:1")
        assert text.startswith("repro top — x:1")

    def test_sections_appear_when_populated(self):
        snapshot = {
            "application": "bank",
            "uptime_seconds": 12.5,
            "slow_ms": 100.0,
            "counters": {
                "runtime.updates.accepted": {
                    "total": 3, "rate_10s": 0.3, "rate_60s": 0.05,
                },
                "runtime.rejected.precondition": {
                    "total": 1, "rate_10s": 0.1, "rate_60s": 0.02,
                },
            },
            "histograms": {
                "runtime.update.deposit.admit": {
                    "count": 3, "p50_ms": 0.5, "p90_ms": 1.0,
                    "p99_ms": 2.0, "max_ms": 2.5,
                },
            },
            "events": [
                {
                    "level": "slow", "op": "journal.fsync",
                    "uptime": 11.0, "duration_ms": 150.0,
                    "fields": {"batch": 4},
                },
            ],
        }
        text = render_snapshot(snapshot, address="h:1")
        assert "(bank)" in text
        assert "runtime.updates.accepted" in text
        assert "runtime.update.deposit.admit" in text
        assert "guard rejections:" in text
        assert "precondition" in text
        assert "recent slow ops:" in text
        assert "journal.fsync" in text
        assert "batch=4" in text


class TestTopAgainstServe:
    def test_once_json_reports_load(self, live_server, capsys):
        code = main(
            ["top", f"127.0.0.1:{live_server}", "--once", "--json"]
        )
        assert code == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["application"] == "bank accounts"
        assert snapshot["uptime_seconds"] >= 0.0
        counters = snapshot["counters"]
        assert counters["runtime.updates.accepted"]["total"] >= 1
        assert counters["runtime.updates.rejected"]["total"] >= 1
        admit = snapshot["histograms"][
            "runtime.update.open_account.admit"
        ]
        assert admit["count"] >= 1
        assert admit["p50_ms"] > 0.0
        assert admit["p99_ms"] >= admit["p50_ms"]

    def test_once_renders_a_screen(self, live_server, capsys):
        code = main(["top", f"127.0.0.1:{live_server}", "--once"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro top — ")
        assert "runtime.updates.accepted" in out
        assert "guard rejections:" in out

    def test_unreachable_server_is_exit_2(self, capsys):
        code = main(["top", "127.0.0.1:1", "--once"])
        assert code == 2
        assert "cannot reach" in capsys.readouterr().out

    def test_bad_address_is_exit_2(self, capsys):
        code = main(["top", "nocolon", "--once"])
        assert code == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_telemetry_off_server_refuses(self, capsys):
        app = build_app("bank")
        runtime = SpecRuntime(app.framework, app.descriptions)
        ports: queue.Queue = queue.Queue()
        thread = threading.Thread(
            target=serve,
            args=(runtime,),
            kwargs={
                "allow_shutdown": True,
                "ready": lambda server: ports.put(server.port),
                "install_signal_handlers": False,
            },
            daemon=True,
        )
        thread.start()
        port = ports.get(timeout=15)
        try:
            code = main(["top", f"127.0.0.1:{port}", "--once"])
            assert code == 2
            assert "telemetry" in capsys.readouterr().out
        finally:
            with wait_until_ready("127.0.0.1", port) as client:
                client.shutdown()
            thread.join(timeout=10)


class TestTopAgainstWorker:
    def test_worker_mode_once_json(self, capsys):
        worker = WorkerServer(
            module_prefixes=("repro.", "tests."),
        )
        worker.serve_in_thread()
        try:
            code = main(
                [
                    "top",
                    f"{worker.host}:{worker.port}",
                    "--worker",
                    "--once",
                    "--json",
                ]
            )
        finally:
            worker.shutdown()
        assert code == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert "uptime_seconds" in snapshot
        # The top poll itself is instrumented by the worker.
        assert snapshot["histograms"]["worker.op.hello"]["count"] >= 1

    def test_fetch_worker_snapshot_unreachable(self):
        with pytest.raises(ServingError, match="cannot reach"):
            fetch_worker_snapshot("127.0.0.1", 1)


class TestTelemetryJsonFlag:
    def test_verify_writes_a_snapshot(self, tmp_path, capsys):
        target = tmp_path / "telemetry.json"
        code = main(
            ["verify", "courses", "--telemetry-json", str(target)]
        )
        assert code == 0
        snapshot = json.loads(target.read_text())
        assert set(snapshot) >= {
            "uptime_seconds", "histograms", "counters", "events",
        }

    def test_reports_are_byte_identical_across_backends(
        self, tmp_path, capsys
    ):
        """The acceptance bar: telemetry on, inline workers=1 versus
        fork workers=4 — the report (wall-clock timings scrubbed, the
        only legitimately varying part) and the coverage document
        match byte for byte."""
        import re

        def scrub(report):
            report = re.sub(r"\(\d+\.\ds\)", "(T)", report)
            # The artifact-path echo lines name per-backend files.
            return "\n".join(
                line
                for line in report.splitlines()
                if " written to " not in line
            )

        outputs = {}
        for name, extra in [
            ("inline", ["--workers", "1", "--backend", "inline"]),
            ("fork", ["--workers", "4", "--backend", "fork"]),
        ]:
            coverage = tmp_path / f"coverage-{name}.json"
            telemetry = tmp_path / f"telemetry-{name}.json"
            code = main(
                [
                    "verify",
                    "courses",
                    "--coverage",
                    str(coverage),
                    "--telemetry-json",
                    str(telemetry),
                    *extra,
                ]
            )
            assert code == 0
            outputs[name] = (
                scrub(capsys.readouterr().out),
                coverage.read_bytes(),
            )
        assert outputs["inline"][0] == outputs["fork"][0]
        assert outputs["inline"][1] == outputs["fork"][1]

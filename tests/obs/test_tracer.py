"""Tests for the span tracer core: nesting, ordering, counters,
activation scoping, and the disabled fast path."""

import time

import pytest

from repro.obs.tracer import (
    NOOP_SPAN,
    OBS_STATE,
    Span,
    Tracer,
    activate,
    capture,
    count,
    current_tracer,
    disable,
    enable,
    is_enabled,
    span,
)


class TestSpan:
    def test_duration_is_end_minus_start(self):
        recorded = Span("s", start=1.0)
        recorded.end = 3.5
        assert recorded.duration == pytest.approx(2.5)

    def test_open_span_has_zero_duration(self):
        assert Span("s").duration == 0.0

    def test_counters_accumulate(self):
        recorded = Span("s")
        recorded.count("hits")
        recorded.count("hits", 4)
        recorded.record({"hits": 5, "misses": 2})
        assert recorded.counters == {"hits": 10, "misses": 2}

    def test_roundtrip_through_dict(self):
        root = Span("root", {"app": "courses"})
        child = Span("child")
        child.count("items", 7)
        child.end = child.start + 0.25
        root.children.append(child)
        root.end = root.start + 1.0
        rebuilt = Span.from_dict(root.to_dict())
        assert rebuilt.name == "root"
        assert rebuilt.attrs == {"app": "courses"}
        assert rebuilt.start == root.start
        assert rebuilt.end == root.end
        assert [c.name for c in rebuilt.children] == ["child"]
        assert rebuilt.children[0].counters == {"items": 7}

    def test_walk_is_preorder(self):
        root = Span("a")
        b, c = Span("b"), Span("c")
        d = Span("d")
        b.children.append(d)
        root.children.extend([b, c])
        assert [s.name for s in root.walk()] == ["a", "b", "d", "c"]


class TestTracerNesting:
    def test_spans_nest_on_the_stack(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None
        assert [s.name for s in tracer.roots] == ["outer"]
        assert [s.name for s in outer.children] == ["inner"]

    def test_sibling_order_is_creation_order(self):
        tracer = Tracer()
        with tracer.span("root"):
            for name in ("a", "b", "c"):
                with tracer.span(name):
                    pass
        assert [s.name for s in tracer.roots[0].children] == ["a", "b", "c"]

    def test_child_interval_is_contained_in_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            time.sleep(0.001)
            with tracer.span("inner") as inner:
                time.sleep(0.001)
            time.sleep(0.001)
        assert outer.start <= inner.start
        assert inner.end <= outer.end
        assert outer.duration >= inner.duration

    def test_timestamps_are_monotonic_across_siblings(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("first") as first:
                pass
            with tracer.span("second") as second:
                pass
        assert first.end <= second.start

    def test_count_lands_on_active_span(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            tracer.count("steps", 3)
            with tracer.span("inner") as inner:
                tracer.count("steps", 2)
        assert outer.counters == {"steps": 3}
        assert inner.counters == {"steps": 2}

    def test_count_without_open_span_goes_to_tracer(self):
        tracer = Tracer()
        tracer.count("loose", 2)
        assert tracer.counters == {"loose": 2}

    def test_counter_totals_sum_the_whole_trace(self):
        tracer = Tracer()
        tracer.count("n", 1)
        with tracer.span("a"):
            tracer.count("n", 2)
            with tracer.span("b"):
                tracer.count("n", 4)
        assert tracer.counter_totals() == {"n": 7}

    def test_graft_attaches_under_active_span(self):
        tracer = Tracer()
        imported = Span("chunk")
        with tracer.span("parent") as parent:
            tracer.graft(imported)
        assert parent.children == [imported]
        tracer.graft(Span("orphan"))
        assert [s.name for s in tracer.roots] == ["parent", "orphan"]


class TestModuleSwitch:
    def test_disabled_span_is_the_shared_noop(self):
        assert span("anything", key=1) is NOOP_SPAN
        with span("anything") as handle:
            handle.count("ignored")
            handle.record({"ignored": 2})

    def test_disabled_count_is_a_noop(self):
        count("nothing", 5)
        assert current_tracer() is None

    def test_enable_routes_spans_to_the_tracer(self):
        tracer = enable()
        assert is_enabled()
        with span("visible", depth=2):
            count("ticks", 3)
        assert [s.name for s in tracer.roots] == ["visible"]
        assert tracer.roots[0].attrs == {"depth": 2}
        assert tracer.roots[0].counters == {"ticks": 3}

    def test_disable_returns_the_active_tracer(self):
        tracer = enable()
        assert disable() is tracer
        assert not is_enabled()

    def test_activate_restores_previous_state(self):
        outer = enable()
        with activate() as inner:
            assert inner is not outer
            assert current_tracer() is inner
        assert current_tracer() is outer

    def test_activate_restores_disabled_state(self):
        disable()
        with activate():
            assert is_enabled()
        assert not is_enabled()

    def test_activate_accepts_an_existing_tracer(self):
        mine = Tracer()
        with activate(mine):
            with span("recorded"):
                pass
        assert [s.name for s in mine.roots] == ["recorded"]

    def test_activate_reentered_with_distinct_tracers(self):
        outer, inner = Tracer(), Tracer()
        with activate(outer):
            with span("outer-span"):
                with activate(inner):
                    with span("inner-span"):
                        pass
                # Exiting the inner activation restores the outer
                # tracer with its span stack intact.
                assert current_tracer() is outer
                assert outer.current is not None
                assert outer.current.name == "outer-span"
        assert [s.name for s in outer.walk()] == ["outer-span"]
        assert [s.name for s in inner.walk()] == ["inner-span"]
        assert not is_enabled()

    def test_activate_reentered_with_the_same_tracer(self):
        mine = Tracer()
        with activate(mine):
            with span("first"):
                with activate(mine):
                    # Same tracer, same live stack: new spans keep
                    # nesting under the open one.
                    with span("second"):
                        pass
                assert current_tracer() is mine
        roots = [s.name for s in mine.roots]
        assert roots == ["first"]
        assert [s.name for s in mine.roots[0].children] == ["second"]
        # Every span closed despite the nested activation.
        for recorded in mine.walk():
            assert recorded.end is not None


class TestCapture:
    def test_capture_isolates_a_fresh_buffer(self):
        parent = enable()
        with parent.span("parent-open"):
            with capture("chunk", worker=3) as chunk_tracer:
                assert OBS_STATE.tracer is chunk_tracer
                with span("work"):
                    count("items", 9)
            assert OBS_STATE.tracer is parent
        assert [s.name for s in chunk_tracer.roots] == ["chunk"]
        root = chunk_tracer.roots[0]
        assert root.attrs == {"worker": 3}
        assert root.end is not None
        assert [s.name for s in root.children] == ["work"]
        assert root.children[0].counters == {"items": 9}
        # The parent's own tree never saw the captured spans.
        assert [s.name for s in parent.walk()] == ["parent-open"]

    def test_capture_closes_spans_left_open(self):
        enable()
        with capture("chunk") as chunk_tracer:
            handle = chunk_tracer.span("leaked")
            handle.__enter__()
        for recorded in chunk_tracer.walk():
            assert recorded.end is not None

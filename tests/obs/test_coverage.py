"""Proof-coverage recorder: recording, merging, documents."""

import json

from repro.algebraic.spec import AlgebraicSpec
from repro.cli import APPLICATIONS
from repro.obs.coverage import (
    COV_STATE,
    CoverageRecorder,
    activate_coverage,
    capture_coverage,
    coverage_digest,
    coverage_document,
    coverage_enabled,
    coverage_json,
    disable_coverage,
    enable_coverage,
    invariant_payload,
    payload_digest,
    state_graph_census,
)


def _sample_recorder() -> CoverageRecorder:
    recorder = CoverageRecorder()
    recorder.record_dispatch("offered", "offer")
    recorder.record_dispatch("offered", "offer")
    recorder.record_fire("offered", "offer", 0)
    recorder.record_fire("offered", "cancel", 2)
    recorder.record_u_fire("enroll", 5)
    recorder.record_hyperrule("schema")
    recorder.record_metanotion("IDENT")
    recorder.record_explore({"states": 3, "levels": []})
    return recorder


# ---------------------------------------------------------------------
# recorder mechanics
# ---------------------------------------------------------------------
class TestRecorder:
    def test_empty(self):
        recorder = CoverageRecorder()
        assert recorder.is_empty()
        recorder.record_dispatch("q", "c")
        assert not recorder.is_empty()

    def test_payload_roundtrip(self):
        recorder = _sample_recorder()
        payload = recorder.to_payload()
        rebuilt = CoverageRecorder.from_payload(payload)
        assert rebuilt.to_payload() == payload
        # Sets serialize as sorted lists, counts as ints.
        assert payload["dispatch"]["offered|offer"] == 2
        assert payload["fired"]["offered|offer"] == [0]

    def test_payload_is_json_portable(self):
        payload = _sample_recorder().to_payload()
        assert json.loads(json.dumps(payload)) == payload

    def test_merge_sums_counts_and_unions_sets(self):
        left = _sample_recorder()
        right = CoverageRecorder()
        right.record_dispatch("offered", "offer")
        right.record_fire("offered", "offer", 1)
        right.record_hyperrule("schema")
        left.merge(right)
        assert left.dispatch[("offered", "offer")] == 3
        assert left.fire_set("offered", "offer") == {0, 1}
        assert left.hyperrules["schema"] == 2

    def test_merge_is_commutative(self):
        a, b = _sample_recorder(), CoverageRecorder()
        b.record_dispatch("takes", "enroll")
        b.record_fire("offered", "offer", 7)
        ab, ba = CoverageRecorder(), CoverageRecorder()
        ab.merge(a)
        ab.merge(b)
        ba.merge(b)
        ba.merge(a)
        assert ab.to_payload() == ba.to_payload()

    def test_merge_payload_equals_merge(self):
        direct, via_payload = CoverageRecorder(), CoverageRecorder()
        sample = _sample_recorder()
        direct.merge(sample)
        via_payload.merge_payload(sample.to_payload())
        assert direct.to_payload() == via_payload.to_payload()

    def test_first_explore_census_wins(self):
        recorder = CoverageRecorder()
        recorder.record_explore({"states": 1})
        recorder.record_explore({"states": 99})
        assert recorder.explore == {"states": 1}


class TestFireSetAPI:
    def test_fire_sets_are_defensive_copies(self):
        recorder = _sample_recorder()
        fires = recorder.fire_set("offered", "offer")
        assert fires == frozenset({0})
        assert recorder.fire_sets()[("offered", "offer")] == fires
        assert recorder.u_fire_set("enroll") == frozenset({5})
        assert recorder.u_fire_sets()["enroll"] == frozenset({5})
        # Mutating a returned mapping never touches the recorder.
        recorder.fire_sets().clear()
        assert recorder.fire_set("offered", "offer") == frozenset({0})

    def test_unknown_pair_is_empty(self):
        recorder = _sample_recorder()
        assert recorder.fire_set("nope", "nothing") == frozenset()
        assert recorder.u_fire_set("nothing") == frozenset()

    def test_dict_access_is_deprecated(self):
        import warnings

        recorder = _sample_recorder()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            recorder.fired
            recorder.fired_u
        assert len(caught) == 2
        assert all(
            issubclass(w.category, DeprecationWarning) for w in caught
        )


# ---------------------------------------------------------------------
# the switch: enable/disable/activate/capture
# ---------------------------------------------------------------------
class TestSwitch:
    def test_enable_disable(self):
        assert not coverage_enabled()
        recorder = enable_coverage()
        assert coverage_enabled()
        assert COV_STATE.recorder is recorder
        assert disable_coverage() is recorder
        assert not coverage_enabled()
        assert COV_STATE.recorder is None

    def test_activate_restores_prior_state(self):
        with activate_coverage() as recorder:
            assert coverage_enabled()
            assert COV_STATE.recorder is recorder
        assert not coverage_enabled()
        assert COV_STATE.recorder is None

    def test_activate_is_reentrant(self):
        outer, inner = CoverageRecorder(), CoverageRecorder()
        with activate_coverage(outer):
            with activate_coverage(inner):
                COV_STATE.recorder.record_dispatch("q", "c")
            # The outer recorder is active again, untouched by the
            # inner scope.
            assert COV_STATE.recorder is outer
            assert outer.is_empty()
        assert inner.dispatch == {("q", "c"): 1}
        assert not coverage_enabled()

    def test_capture_merges_into_enclosing(self):
        run = CoverageRecorder()
        with activate_coverage(run):
            with capture_coverage() as check:
                COV_STATE.recorder.record_dispatch("q", "c")
            assert check.dispatch == {("q", "c"): 1}
        assert run.dispatch == {("q", "c"): 1}

    def test_capture_no_merge_keeps_facts_isolated(self):
        run = CoverageRecorder()
        with activate_coverage(run):
            with capture_coverage(merge=False) as chunk:
                COV_STATE.recorder.record_dispatch("q", "c")
            assert chunk.dispatch == {("q", "c"): 1}
        assert run.is_empty()


# ---------------------------------------------------------------------
# instrumentation points: engine, explorer, recognizer
# ---------------------------------------------------------------------
class TestInstrumentation:
    def test_engine_records_dispatch_and_fires(self):
        framework = APPLICATIONS["courses"]()
        recorder = CoverageRecorder()
        with activate_coverage(recorder):
            result = framework.verify_pipeline(only=["completeness"])
        assert result.ok
        assert recorder.dispatch
        assert recorder.fire_sets()
        # Fired indices name actual Q-equations of the spec.
        spec = framework.algebraic
        for indices in recorder.fire_sets().values():
            for index in indices:
                assert spec.equations[index].is_q_equation

    def test_disabled_records_nothing(self):
        framework = APPLICATIONS["courses"]()
        result = framework.verify_pipeline(only=["completeness"])
        assert result.ok
        assert not coverage_enabled()
        run = result.execution("completeness").run
        assert run.coverage is None

    def test_selection_scopes_coverage(self):
        framework = APPLICATIONS["courses"]()
        recorder = CoverageRecorder()
        with activate_coverage(recorder):
            framework.verify_pipeline(only=["grammar"])
        # Grammar-only runs touch the recognizer but never the
        # rewrite engine or the explorer.
        assert recorder.hyperrules
        assert recorder.metanotions
        assert not recorder.dispatch
        assert recorder.explore is None

    def test_recognizer_counts_ignore_memo_warmth(self):
        payloads = []
        for _ in range(2):
            framework = APPLICATIONS["courses"]()
            recorder = CoverageRecorder()
            with activate_coverage(recorder):
                framework.verify_pipeline(only=["grammar"])
            payloads.append(recorder.to_payload())
        assert payloads[0]["hyperrules"] == payloads[1]["hyperrules"]
        assert payloads[0]["metanotions"] == payloads[1]["metanotions"]

    def test_explore_census_recorded_once(self):
        framework = APPLICATIONS["courses"]()
        recorder = CoverageRecorder()
        with activate_coverage(recorder):
            result = framework.verify_pipeline()
        assert result.ok
        census = recorder.explore
        assert census is not None
        graph = result.result_of("explore")
        assert census["states"] == len(graph.states)
        assert census["transitions"] == len(graph.transitions)


# ---------------------------------------------------------------------
# the census
# ---------------------------------------------------------------------
class TestCensus:
    def test_census_shape(self):
        framework = APPLICATIONS["courses"]()
        result = framework.verify_pipeline(only=["explore"])
        graph = result.result_of("explore")
        census = state_graph_census(graph)
        assert census["states"] == len(graph.states)
        assert census["truncated"] is False
        levels = census["levels"]
        assert levels[0] == {
            "depth": 0,
            "frontier": 1,
            "transitions": levels[0]["transitions"],
            "cumulative_states": 1,
        }
        # Frontier sizes partition the state set.
        assert sum(level["frontier"] for level in levels) == len(
            graph.states
        )
        # Per-level transition counts partition the edge set.
        assert sum(level["transitions"] for level in levels) == len(
            graph.transitions
        )
        # The cumulative column is the running frontier sum.
        running = 0
        for level in levels:
            running += level["frontier"]
            assert level["cumulative_states"] == running

    def test_census_deterministic(self):
        censuses = []
        for _ in range(2):
            framework = APPLICATIONS["courses"]()
            result = framework.verify_pipeline(only=["explore"])
            censuses.append(
                state_graph_census(result.result_of("explore"))
            )
        assert censuses[0] == censuses[1]


# ---------------------------------------------------------------------
# the coverage document
# ---------------------------------------------------------------------
def _full_run(name="courses"):
    framework = APPLICATIONS[name]()
    recorder = CoverageRecorder()
    with activate_coverage(recorder):
        result = framework.verify_pipeline()
    return framework, recorder, result


class TestDocument:
    def test_courses_reaches_full_cell_coverage(self):
        framework, recorder, result = _full_run()
        assert result.ok
        document = coverage_document(
            recorder, framework.algebraic, application="courses"
        )
        summary = document["rewrite"]["summary"]
        assert summary["coverage"] == 1.0
        assert summary["uncovered"] == 0
        assert summary["missing"] == 0
        assert summary["uncovered_cells"] == []
        # The universe is queries x (updates + initials).
        signature = framework.algebraic.signature
        expected = len(signature.queries) * (
            len(signature.updates) + len(signature.initials)
        )
        assert summary["total_cells"] == expected

    def test_deleted_equation_surfaces_exact_cell(self):
        framework = APPLICATIONS["courses"]()
        full = framework.algebraic
        victim = next(
            equation
            for equation in full.equations
            if equation.is_q_equation
        )
        pruned = AlgebraicSpec(
            signature=full.signature,
            equations=tuple(
                equation
                for equation in full.equations
                if equation is not victim
            ),
        )
        from repro.applications import courses
        from repro.core.framework import DesignFramework

        broken = DesignFramework.from_sources(
            information=courses.courses_information(),
            algebraic=pruned,
            schema_source=courses.courses_schema_source(),
            carriers=courses.courses_information_carriers(),
            name="courses-pruned",
        )
        recorder = CoverageRecorder()
        with activate_coverage(recorder):
            result = broken.verify_pipeline(only=["completeness"])
        assert not result.ok
        document = coverage_document(
            recorder, pruned, application="courses-pruned"
        )
        summary = document["rewrite"]["summary"]
        assert summary["coverage"] < 1.0
        # The victim's own cell is reported as a sufficient-
        # completeness hole (no equation left covers it).
        holes = summary["uncovered_cells"]
        assert holes
        missing = [
            f"{cell['query']}({cell['constructor']})"
            for cell in document["rewrite"]["cells"]
            if cell["status"] == "missing"
        ]
        assert missing
        assert set(missing) <= set(holes)

    def test_document_digest_ignores_checks(self):
        framework, recorder, _ = _full_run()
        document = coverage_document(
            recorder, framework.algebraic, application="courses"
        )
        with_checks = coverage_document(
            recorder,
            framework.algebraic,
            application="courses",
            checks=[{"name": "explore"}],
        )
        assert document["digest"] == with_checks["digest"]
        assert document["digest"] == coverage_digest(document)

    def test_coverage_json_is_byte_stable(self):
        framework, recorder, _ = _full_run()
        document = coverage_document(
            recorder, framework.algebraic, application="courses"
        )
        text = coverage_json(document)
        assert text == coverage_json(json.loads(text))
        assert text.endswith("\n")


# ---------------------------------------------------------------------
# per-check payload digests
# ---------------------------------------------------------------------
class TestPayloadDigest:
    def test_invariant_projection_drops_fired_sets(self):
        payload = _sample_recorder().to_payload()
        projected = invariant_payload(payload)
        assert set(projected) == {
            "dispatch",
            "hyperrules",
            "metanotions",
            "explore",
        }

    def test_digest_ignores_memo_dependent_sections(self):
        recorder = _sample_recorder()
        baseline = payload_digest(recorder.to_payload())
        recorder.record_fire("offered", "offer", 99)
        recorder.record_u_fire("cancel", 3)
        assert payload_digest(recorder.to_payload()) == baseline
        recorder.record_dispatch("takes", "enroll")
        assert payload_digest(recorder.to_payload()) != baseline

"""Provenance records and minimal counterexample rendering."""

from repro.cli import APPLICATIONS
from repro.core.framework import DesignFramework
from repro.obs.coverage import CoverageRecorder, activate_coverage
from repro.obs.provenance import (
    counterexamples_of,
    minimal_witnesses,
    pipeline_provenance,
    render_counterexample,
    render_failures,
    trace_updates,
)
from repro.pipeline.nodes import build_framework_graph
from tests.refinement.test_first_second import broken_cancel_spec


def _broken_framework() -> DesignFramework:
    """Courses with the cancel equations dropping the axiom guard —
    every downstream consistency check fails with real witnesses."""
    from repro.applications import courses

    return DesignFramework.from_sources(
        information=courses.courses_information(),
        algebraic=broken_cancel_spec(),
        schema_source=courses.courses_schema_source(),
        carriers=courses.courses_information_carriers(),
        name="broken-cancel",
    )


def _deepest_witness(graph):
    """A longest witness trace of the explored graph."""
    return max(graph.states.values(), key=lambda t: len(trace_updates(t)))


# ---------------------------------------------------------------------
# trace peeling and rendering
# ---------------------------------------------------------------------
class TestTracePeeling:
    def test_trace_updates_peels_initial_first(self):
        framework = APPLICATIONS["courses"]()
        result = framework.verify_pipeline(only=["explore"])
        graph = result.result_of("explore")
        witness = _deepest_witness(graph)
        steps = trace_updates(witness)
        assert steps
        # The outermost application is the *last* update; peeling
        # reverses into application order.
        assert steps[-1][0] == witness.symbol.name
        for update, params in steps:
            assert isinstance(update, str)
            assert all(isinstance(p, str) for p in params)

    def test_render_counterexample_shows_state_sequence(self):
        framework = APPLICATIONS["courses"]()
        result = framework.verify_pipeline(only=["explore"])
        graph = result.result_of("explore")
        witness = _deepest_witness(graph)
        rendered = render_counterexample(witness, framework.algebra())
        lines = rendered.splitlines()
        assert lines[0].strip().startswith("initiate")
        assert all(line.strip().startswith("->") for line in lines[1:])
        # With an algebra every line carries a snapshot rendering.
        assert "{" in lines[-1]
        # Without one, only the update names appear.
        bare = render_counterexample(witness)
        assert "{" not in bare

    def test_minimal_witnesses_picks_shortest(self):
        rendered = ["a\nb\nc", "x", "m\nn"]
        picked, dropped = minimal_witnesses(rendered)
        assert picked == ["x"]
        assert dropped == 2
        picked3, dropped3 = minimal_witnesses(rendered, limit=3)
        assert picked3 == ["x", "m\nn", "a\nb\nc"]
        assert dropped3 == 0


# ---------------------------------------------------------------------
# counterexample extraction
# ---------------------------------------------------------------------
class TestCounterexamples:
    def test_passing_reports_have_no_witnesses(self):
        framework = APPLICATIONS["courses"]()
        result = framework.verify_pipeline()
        assert result.ok
        for name in result.selection:
            assert (
                counterexamples_of(name, result.result_of(name)) == []
            )

    def test_static_violations_render_as_traces(self):
        framework = _broken_framework()
        result = framework.verify_pipeline()
        assert not result.ok
        witnesses = counterexamples_of(
            "static",
            result.result_of("static"),
            algebra=framework.algebra(),
        )
        assert witnesses
        assert all("fails after the trace" in w for w in witnesses)
        assert all("initiate" in w for w in witnesses)

    def test_render_failures_one_minimal_block_per_check(self):
        framework = _broken_framework()
        result = framework.verify_pipeline()
        text = render_failures(
            {name: result.result_of(name) for name in result.selection},
            algebra=framework.algebra(),
            graph_provider=lambda: result.result_of("explore"),
        )
        assert text is not None
        assert "[static] minimal counterexample:" in text
        assert "[inclusion] minimal counterexample:" in text
        assert "more counterexample" in text
        # One witness per failing check: each block shows exactly one
        # trace (a single "initiate" line).
        for block in text.split("\n\n"):
            assert block.count("fails after the trace") <= 1

    def test_render_failures_none_when_green(self):
        framework = APPLICATIONS["courses"]()
        result = framework.verify_pipeline()
        assert (
            render_failures(
                {
                    name: result.result_of(name)
                    for name in result.selection
                }
            )
            is None
        )


# ---------------------------------------------------------------------
# provenance records
# ---------------------------------------------------------------------
def _provenance_of(framework, **kwargs):
    recorder = CoverageRecorder()
    with activate_coverage(recorder):
        result = framework.verify_pipeline(**kwargs)
    graph = build_framework_graph()
    return pipeline_provenance(
        framework, result, graph, algebra=framework.algebra()
    )


class TestPipelineProvenance:
    def test_records_cover_every_execution(self):
        framework = APPLICATIONS["courses"]()
        records = _provenance_of(framework)
        names = [record["name"] for record in records]
        assert "explore" in names
        assert "completeness" in names
        for record in records:
            assert record["ok"] is True
            assert record["aborted"] is False
            assert len(record["fingerprint"]) == 64
            assert record["coverage_digest"] is not None
            assert "witnesses" not in record

    def test_params_exclude_workers(self):
        framework = APPLICATIONS["courses"]()
        for record in _provenance_of(framework, workers=2):
            assert "workers" not in record["params"]

    def test_records_identical_across_worker_counts(self):
        serial = _provenance_of(APPLICATIONS["courses"]())
        forked = _provenance_of(APPLICATIONS["courses"](), workers=2)
        assert serial == forked

    def test_failure_records_carry_minimal_witnesses(self):
        framework = _broken_framework()
        records = _provenance_of(framework)
        static = next(r for r in records if r["name"] == "static")
        assert static["ok"] is False
        assert 1 <= len(static["witnesses"]) <= 3
        assert static["witnesses_dropped"] >= 0
        assert "fails after the trace" in static["witnesses"][0]

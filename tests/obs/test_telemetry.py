"""Tests for :mod:`repro.obs.telemetry`: deterministic histogram
buckets, submission-order merge identity across worker counts and
executor backends, rate windows, the event ring, the slow-op capture,
and the one-branch enable/disable switch."""

import pickle
import random

import pytest

from repro.obs.telemetry import (
    TEL_STATE,
    LatencyHistogram,
    Telemetry,
    activate_telemetry,
    bucket_index,
    bucket_upper_ns,
    current_telemetry,
    disable_telemetry,
    enable_telemetry,
    telemetry_enabled,
)
from repro.parallel import run_chunked
from repro.parallel.backends import make_backend
from repro.parallel.worker import WorkerServer

#: Fixed per-chunk duration sets (ns) with a wide dynamic range, so
#: bucket placement, percentiles, and merge order all get exercised.
_DURATION_CHUNKS = [
    [7, 130, 2_800, 61_000],
    [1, 2, 3, 999_999_999],
    [450_000, 450_001, 450_002],
    [88, 12_345_678, 3],
    [1_000_000, 2_000_000, 4_000_000, 8_000_000],
    [5, 5, 5, 5, 5],
]


def _histogram_chunk(context, durations):
    """Observe fixed durations; ship the histogram as a dict."""
    histogram = LatencyHistogram()
    for duration in durations:
        histogram.observe(duration)
    return histogram.to_dict(), {"items": len(durations)}


def _merged(results):
    """Merge per-chunk histogram dicts in submission order."""
    merged = LatencyHistogram()
    for payload in results:
        merged.merge(LatencyHistogram.from_dict(payload))
    return merged


class TestBucketScheme:
    def test_buckets_partition_values_from_4ns_up(self):
        # Above 4ns the sub-bucket arithmetic is exact: each value
        # falls strictly below its bucket's upper bound and at or
        # above the previous bucket's.
        random.seed(11)
        values = [random.randrange(4, 10**10) for _ in range(10_000)]
        values += [4, 5, 6, 7, 8, 1 << 40]
        for value in values:
            index = bucket_index(value)
            lower = bucket_upper_ns(index - 1) if index else 0
            assert lower <= value < bucket_upper_ns(index)

    def test_tiny_values_stay_within_their_bounds(self):
        # Below 4ns the shifts truncate, collapsing bound resolution;
        # the inclusive invariant still holds.
        for value in (1, 2, 3):
            assert value <= bucket_upper_ns(bucket_index(value))

    def test_bucket_bounds_are_non_decreasing(self):
        bounds = [bucket_upper_ns(i) for i in range(160)]
        assert bounds == sorted(bounds)

    def test_non_positive_durations_clamp_to_bucket_zero(self):
        assert bucket_index(0) == 0
        histogram = LatencyHistogram()
        histogram.observe(-5)
        assert histogram.max_ns == 0
        assert histogram.buckets == {0: 1}

    def test_indices_are_pure_functions_of_the_value(self):
        # Integer-only arithmetic: the same value always lands in the
        # same bucket — the property merge determinism rests on.
        for value in (1, 2, 1023, 1024, 1025, 10**9, (1 << 62) + 3):
            assert bucket_index(value) == bucket_index(value)


class TestHistogram:
    def test_percentiles_never_exceed_the_observed_max(self):
        histogram = LatencyHistogram()
        for value in (100, 200, 300_000):
            histogram.observe(value)
        assert histogram.percentile_ns(99) <= histogram.max_ns
        assert histogram.percentile_ns(100) == histogram.max_ns

    def test_percentile_of_uniform_data_is_within_one_bucket(self):
        histogram = LatencyHistogram()
        for value in range(1, 1001):
            histogram.observe(value * 1000)
        p50 = histogram.percentile_ns(50)
        # Bucket resolution is ~ +25%: the estimate must bracket the
        # true median from above within one bucket's width.
        assert 500_000 <= p50 <= 650_000

    def test_dict_roundtrip_and_pickle_survival(self):
        histogram = LatencyHistogram()
        for value in (5, 77, 3_000_000):
            histogram.observe(value)
        rebuilt = LatencyHistogram.from_dict(histogram.to_dict())
        assert rebuilt.to_dict() == histogram.to_dict()
        wired = pickle.loads(pickle.dumps(histogram.to_dict()))
        assert (
            LatencyHistogram.from_dict(wired).summary()
            == histogram.summary()
        )

    def test_empty_summary(self):
        assert LatencyHistogram().summary() == {"count": 0}
        assert LatencyHistogram().percentile_ns(99) == 0

    def test_merge_is_commutative(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        for value in (10, 20, 30):
            a.observe(value)
        for value in (15, 2_000_000):
            b.observe(value)
        ab, ba = LatencyHistogram(), LatencyHistogram()
        ab.merge(a), ab.merge(b)
        ba.merge(b), ba.merge(a)
        assert ab.to_dict() == ba.to_dict()

    def test_cumulative_buckets_end_at_the_count(self):
        histogram = LatencyHistogram()
        for value in (1, 10, 100, 1000):
            histogram.observe(value)
        series = list(histogram.cumulative_buckets())
        assert series[-1][1] == histogram.count
        counts = [count for _, count in series]
        assert counts == sorted(counts)


class TestMergeDeterminism:
    """ISSUE 10: merging per-worker histograms in submission order
    yields identical buckets/percentiles at workers 1/4 and across
    inline/fork/socket backends."""

    @pytest.fixture(scope="class")
    def worker_servers(self):
        servers = [
            WorkerServer(module_prefixes=("repro.", "tests."))
            for _ in range(2)
        ]
        for server in servers:
            server.serve_in_thread()
        yield servers
        for server in servers:
            server.shutdown()

    def _run(self, backend, workers):
        results, _stats = run_chunked(
            _histogram_chunk,
            {},
            _DURATION_CHUNKS,
            workers=workers,
            backend=backend,
        )
        return _merged(results)

    def test_workers_1_and_4_merge_identically_inline(self):
        one = self._run("inline", 1)
        four = self._run("inline", 4)
        assert one.to_dict() == four.to_dict()
        assert one.summary() == four.summary()

    def test_backends_merge_identically(self, worker_servers):
        addresses = [server.address for server in worker_servers]
        socket_backend = make_backend("socket", addresses=addresses)
        merged = {
            name: self._run(backend, workers).to_dict()
            for name, backend, workers in [
                ("inline-1", "inline", 1),
                ("inline-4", "inline", 4),
                ("fork-4", "fork", 4),
                ("socket-4", socket_backend, 4),
            ]
        }
        assert merged["inline-1"] == merged["inline-4"]
        assert merged["inline-1"] == merged["fork-4"]
        assert merged["inline-1"] == merged["socket-4"]


class TestRatesAndEvents:
    def _telemetry(self, slow_ms=100.0):
        clock = {"now": 1000.0}
        telemetry = Telemetry(
            slow_ms=slow_ms, clock=lambda: clock["now"]
        )
        return telemetry, clock

    def test_rate_windows_with_injected_clock(self):
        telemetry, clock = self._telemetry()
        for second in range(20):
            clock["now"] = 1000.0 + second
            telemetry.inc("ops")
        snapshot = telemetry.snapshot()
        counter = snapshot["counters"]["ops"]
        assert counter["total"] == 20
        assert counter["rate_10s"] == 1.0
        # Only 20 of the 60 trailing seconds saw events.
        assert counter["rate_60s"] == pytest.approx(20 / 60, abs=0.01)

    def test_old_rate_buckets_expire(self):
        telemetry, clock = self._telemetry()
        telemetry.inc("ops")
        clock["now"] = 1000.0 + 3600
        telemetry.inc("ops")
        counter = telemetry.snapshot()["counters"]["ops"]
        assert counter["total"] == 2  # totals are monotone
        assert counter["rate_10s"] == pytest.approx(0.1)

    def test_slow_op_auto_captures_an_event(self):
        telemetry, _ = self._telemetry(slow_ms=1.0)
        telemetry.observe("fast.op", 500_000)  # 0.5ms: below
        telemetry.observe("slow.op", 5_000_000, update="deposit")
        events = telemetry.snapshot()["events"]
        assert len(events) == 1
        (event,) = events
        assert event["level"] == "slow"
        assert event["op"] == "slow.op"
        assert event["duration_ms"] == 5.0
        assert event["fields"] == {"update": "deposit"}

    def test_event_ring_is_bounded_and_ordered(self):
        telemetry = Telemetry(event_capacity=4)
        for index in range(10):
            telemetry.event("info", f"op{index}")
        events = telemetry.snapshot()["events"]
        assert [event["op"] for event in events] == [
            "op6", "op7", "op8", "op9",
        ]
        assert [event["seq"] for event in events] == [7, 8, 9, 10]
        assert telemetry.snapshot(events=2)["events"][0]["op"] == "op8"

    def test_snapshot_schema_and_json_serializability(self):
        import json

        telemetry, _ = self._telemetry()
        telemetry.observe(
            "runtime.update.deposit.admit",
            2_000_000,
            counter="runtime.updates.accepted",
        )
        snapshot = telemetry.snapshot()
        assert set(snapshot) == {
            "uptime_seconds",
            "slow_ms",
            "histograms",
            "counters",
            "events",
        }
        histogram = snapshot["histograms"][
            "runtime.update.deposit.admit"
        ]
        for key in ("count", "p50_ms", "p90_ms", "p99_ms", "max_ms",
                    "buckets", "sum_ns"):
            assert key in histogram
        json.dumps(snapshot)  # wire-safe

    def test_combined_observe_is_one_histogram_one_counter(self):
        telemetry, _ = self._telemetry()
        telemetry.observe("op", 1000, counter="ops")
        telemetry.observe("op", 2000, counter="ops")
        snapshot = telemetry.snapshot()
        assert snapshot["histograms"]["op"]["count"] == 2
        assert snapshot["counters"]["ops"]["total"] == 2


class TestSwitch:
    def test_disabled_by_default(self):
        assert TEL_STATE.enabled is False
        assert telemetry_enabled() is False
        assert current_telemetry() is None

    def test_enable_disable_roundtrip(self):
        telemetry = enable_telemetry()
        try:
            assert telemetry_enabled() is True
            assert current_telemetry() is telemetry
        finally:
            assert disable_telemetry() is telemetry
        assert telemetry_enabled() is False

    def test_activation_scopes_and_restores(self):
        outer = enable_telemetry()
        try:
            with activate_telemetry() as inner:
                assert inner is not outer
                assert current_telemetry() is inner
            assert current_telemetry() is outer
        finally:
            disable_telemetry()

    def test_activation_accepts_a_prebuilt_registry(self):
        mine = Telemetry()
        with activate_telemetry(mine) as active:
            assert active is mine
            active.inc("x")
        assert telemetry_enabled() is False
        assert mine.snapshot()["counters"]["x"]["total"] == 1

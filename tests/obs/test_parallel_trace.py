"""Trace behaviour across the fork executor: buffers survive the
process boundary, merge deterministically, and cost nothing when off."""

import timeit

from repro.algebraic.algebra import TraceAlgebra
from repro.obs.tracer import OBS_STATE, activate, count, span
from repro.parallel.executor import run_chunked
from repro.parallel.partition import chunk_ranges


def _square_chunk(context, index_range):
    """Module-level chunk fn (workers receive it by reference)."""
    with span("square", n=len(index_range)):
        total = 0
        for index in index_range:
            total += context[index] ** 2
            count("squares")
    return total, {"items": len(index_range)}


def _run(workers, chunks=3, n=12):
    values = list(range(n))
    args = chunk_ranges(n, chunks)
    with activate() as tracer:
        results, stats = run_chunked(_square_chunk, values, args, workers)
    return tracer, results, stats


def _skeleton(tracer):
    """The trace without timings: (name, attrs, counters) preorder."""
    return [
        (recorded.name, tuple(sorted(recorded.attrs.items())),
         tuple(sorted(recorded.counters.items())))
        for recorded in tracer.walk()
    ]


class TestForkSurvival:
    def test_worker_buffers_come_back_across_fork(self):
        tracer, results, stats = _run(workers=3)
        assert results == [
            sum(i ** 2 for i in r) for r in chunk_ranges(12, 3)
        ]
        chunks = [s for s in tracer.walk() if s.name == "chunk"]
        assert [c.attrs["worker"] for c in chunks] == [0, 1, 2]
        for chunk in chunks:
            assert chunk.end is not None
            assert [child.name for child in chunk.children] == ["square"]
            assert chunk.children[0].counters["squares"] == 4
            # The chunk fn's counter dict is folded onto the chunk span.
            assert chunk.counters["items"] == 4

    def test_worker_stats_carry_serialized_spans(self):
        _, _, stats = _run(workers=2)
        for record in stats:
            assert record.spans, "chunk should ship its span buffer"
            assert record.spans[0]["name"] == "chunk"
            # spans are transport-only: not part of the JSON record
            assert "spans" not in record.to_dict()

    def test_no_spans_shipped_when_tracing_is_off(self):
        values = list(range(12))
        _, stats = run_chunked(
            _square_chunk, values, chunk_ranges(12, 3), 2
        )
        assert all(record.spans == () for record in stats)


class TestDeterministicMerge:
    def test_trace_skeleton_is_identical_for_any_worker_count(self):
        args = chunk_ranges(12, 3)
        skeletons = []
        for workers in (1, 2, 3):
            with activate() as tracer:
                run_chunked(
                    _square_chunk, list(range(12)), args, workers
                )
            skeletons.append(_skeleton(tracer))
        assert skeletons[0] == skeletons[1] == skeletons[2]

    def test_chunks_graft_under_the_parents_open_span(self):
        with activate() as tracer:
            with span("level", depth=1):
                run_chunked(
                    _square_chunk,
                    list(range(6)),
                    chunk_ranges(6, 2),
                    2,
                )
        (level,) = tracer.roots
        assert level.name == "level"
        assert [c.name for c in level.children] == ["chunk", "chunk"]
        assert [c.attrs["worker"] for c in level.children] == [0, 1]


class TestEngineIntegration:
    def test_parallel_explore_traces_levels_and_chunks(
        self, courses_algebra
    ):
        with activate() as tracer:
            graph = TraceAlgebra(courses_algebra.spec).explore(workers=2)
        assert len(graph.states) == 25
        names = [recorded.name for recorded in tracer.walk()]
        assert "explore" in names
        assert "explore.level" in names
        assert "chunk" in names
        (explore,) = tracer.roots
        totals = tracer.counter_totals()
        assert totals["explore.states"] == 25
        assert explore.name == "explore"

    def test_serial_and_parallel_explore_agree_on_counters(self):
        from repro.applications.courses import courses_algebraic

        spec = courses_algebraic()
        with activate() as serial_tracer:
            TraceAlgebra(spec).explore(workers=1)
        with activate() as parallel_tracer:
            TraceAlgebra(spec).explore(workers=2)
        serial = serial_tracer.counter_totals()
        parallel = parallel_tracer.counter_totals()
        assert serial["explore.states"] == parallel["explore.states"]
        assert (
            serial["explore.transitions"]
            == parallel["explore.transitions"]
        )


class TestDisabledOverheadSmoke:
    """Loose sanity bounds; the enforced <=5% gate lives in
    benchmarks/check_obs_overhead.py."""

    def test_disabled_span_call_is_cheap(self):
        assert not OBS_STATE.enabled
        per_call = min(
            timeit.repeat(
                "span('hot')",
                globals={"span": span},
                number=10_000,
                repeat=5,
            )
        ) / 10_000
        assert per_call < 5e-6  # five microseconds, very loose

    def test_disabled_guard_adds_little_to_a_tight_loop(self):
        state = OBS_STATE
        assert not state.enabled

        def plain(work=2_000):
            total = 0
            for index in range(work):
                total += index
            return total

        def guarded(work=2_000):
            total = 0
            for index in range(work):
                if state.enabled:
                    state.tracer.count("tick")
                total += index
            return total

        base = min(timeit.repeat(plain, number=50, repeat=5))
        with_guard = min(timeit.repeat(guarded, number=50, repeat=5))
        # The guard is one attribute load and branch per iteration of
        # a loop that does almost nothing else; on real workloads the
        # gate is 5%, here we only smoke-test the order of magnitude.
        assert with_guard < base * 3.0

"""Tests for the trace exporters: Chrome Trace Event schema validity,
the flat JSONL log, and the summary tree."""

import io
import json

import pytest

from repro.obs.export import (
    chrome_trace_events,
    format_tree,
    iter_flat_events,
    prometheus_text,
    to_chrome_json,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.telemetry import Telemetry
from repro.obs.tracer import Span, Tracer


@pytest.fixture()
def small_trace():
    """verify > (explore, chunk(worker=1)) with counters."""
    tracer = Tracer()
    with tracer.span("verify", application="courses") as verify:
        with tracer.span("explore", workers=2) as explore:
            explore.count("explore.states", 25)
        chunk = Span("chunk", {"worker": 1})
        chunk.count("items", 10)
        chunk.end = chunk.start + 0.002
        tracer.graft(chunk)
    return tracer, verify, explore, chunk


class TestChromeTrace:
    def test_events_follow_the_trace_event_schema(self, small_trace):
        tracer, *_ = small_trace
        events = chrome_trace_events(tracer)
        assert len(events) == 3
        for event in events:
            assert event["ph"] == "X"
            assert event["cat"] == "repro"
            assert isinstance(event["name"], str)
            assert isinstance(event["ts"], float)
            assert isinstance(event["dur"], float)
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert event["pid"] == 0
            assert isinstance(event["tid"], int)
            assert isinstance(event["args"], dict)

    def test_timestamps_are_normalized_microseconds(self, small_trace):
        tracer, verify, explore, _ = small_trace
        events = {e["name"]: e for e in chrome_trace_events(tracer)}
        assert events["verify"]["ts"] == 0.0
        expected = (explore.start - verify.start) * 1e6
        assert events["explore"]["ts"] == pytest.approx(
            expected, abs=0.01
        )

    def test_worker_spans_get_their_own_tid(self, small_trace):
        tracer, *_ = small_trace
        events = {e["name"]: e for e in chrome_trace_events(tracer)}
        assert events["verify"]["tid"] == 0
        assert events["explore"]["tid"] == 0
        assert events["chunk"]["tid"] == 2  # worker 1 -> tid 2

    def test_attrs_and_counters_land_in_args(self, small_trace):
        tracer, *_ = small_trace
        events = {e["name"]: e for e in chrome_trace_events(tracer)}
        assert events["verify"]["args"]["application"] == "courses"
        assert events["explore"]["args"]["counters"] == {
            "explore.states": 25
        }

    def test_child_event_is_inside_parent_interval(self, small_trace):
        tracer, *_ = small_trace
        events = {e["name"]: e for e in chrome_trace_events(tracer)}
        parent, child = events["verify"], events["explore"]
        assert parent["ts"] <= child["ts"]
        assert (
            child["ts"] + child["dur"]
            <= parent["ts"] + parent["dur"] + 0.01
        )

    def test_document_shape_and_file_roundtrip(
        self, small_trace, tmp_path
    ):
        tracer, *_ = small_trace
        document = to_chrome_json(tracer)
        assert set(document) == {
            "traceEvents", "displayTimeUnit", "otherData",
        }
        path = tmp_path / "trace.json"
        write_chrome_trace(tracer, str(path))
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(document))

    def test_write_accepts_a_stream(self, small_trace):
        tracer, *_ = small_trace
        buffer = io.StringIO()
        write_chrome_trace(tracer, buffer)
        assert json.loads(buffer.getvalue())["otherData"] == {
            "producer": "repro.obs"
        }

    def test_open_span_exports_zero_duration(self):
        tracer = Tracer()
        handle = tracer.span("open")
        handle.__enter__()
        (event,) = chrome_trace_events(tracer)
        assert event["dur"] == 0.0


class TestFlatLog:
    def test_events_are_preorder_with_paths(self, small_trace):
        tracer, *_ = small_trace
        events = list(iter_flat_events(tracer))
        assert [e["name"] for e in events] == [
            "verify", "explore", "chunk",
        ]
        assert [e["path"] for e in events] == [
            "verify", "verify/explore", "verify/chunk",
        ]
        assert [e["depth"] for e in events] == [0, 1, 1]

    def test_durations_are_relative_seconds(self, small_trace):
        tracer, verify, *_ = small_trace
        first = next(iter_flat_events(tracer))
        assert first["start"] == 0.0
        assert first["duration"] == pytest.approx(
            verify.duration, abs=1e-6
        )

    def test_jsonl_lines_parse_back(self, small_trace, tmp_path):
        tracer, *_ = small_trace
        path = tmp_path / "trace.jsonl"
        write_jsonl(tracer, str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        parsed = [json.loads(line) for line in lines]
        assert parsed[2]["counters"] == {"items": 10}


class TestSummaryTree:
    def test_tree_indents_and_shows_counters(self, small_trace):
        tracer, *_ = small_trace
        text = format_tree(tracer)
        lines = text.splitlines()
        assert lines[0].startswith("verify")
        assert "application=courses" in lines[0]
        assert lines[1].startswith("  explore")
        assert "[explore.states=25]" in lines[1]
        assert lines[2].startswith("  chunk")

    def test_counter_overflow_is_summarized(self):
        tracer = Tracer()
        with tracer.span("busy") as busy:
            for index in range(9):
                busy.count(f"c{index}")
        text = format_tree(tracer, max_counters=6)
        assert "+3 more" in text

    def test_exporters_accept_raw_span_lists(self, small_trace):
        tracer, *_ = small_trace
        assert format_tree(tracer.roots) == format_tree(tracer)
        assert list(iter_flat_events(tracer.roots)) == list(
            iter_flat_events(tracer)
        )


class TestWorkerTidPinning:
    """Socket-backend virtual workers: ``workers=W`` pins chunk tids
    to stable virtual-worker rows instead of unbounded chunk indices."""

    def _chunk_span(self, worker):
        chunk = Span("chunk", {"worker": worker})
        chunk.end = chunk.start + 0.001
        return chunk

    def test_workers_parameter_wraps_chunk_indices(self):
        spans = [self._chunk_span(index) for index in range(6)]
        events = chrome_trace_events(spans, workers=2)
        assert [event["tid"] for event in events] == [
            1, 2, 1, 2, 1, 2,
        ]

    def test_default_behavior_is_unchanged(self):
        spans = [self._chunk_span(index) for index in range(4)]
        events = chrome_trace_events(spans)
        assert [event["tid"] for event in events] == [1, 2, 3, 4]

    def test_to_chrome_json_threads_workers_through(self):
        spans = [self._chunk_span(5)]
        document = to_chrome_json(spans, workers=4)
        assert document["traceEvents"][0]["tid"] == 2  # 5 % 4 + 1


class TestPrometheusText:
    def _telemetry(self):
        telemetry = Telemetry(slow_ms=10_000.0)
        telemetry.observe(
            "runtime.update.deposit.admit",
            2_000_000,
            counter="runtime.updates.accepted",
        )
        telemetry.observe("runtime.update.deposit.admit", 4_000_000)
        return telemetry

    def test_histograms_counters_and_uptime_are_exposed(self):
        text = prometheus_text(self._telemetry())
        assert "repro_uptime_seconds " in text
        metric = "repro_runtime_update_deposit_admit_seconds"
        assert f"# TYPE {metric} histogram" in text
        assert f'{metric}_bucket{{le="+Inf"}} 2' in text
        assert f"{metric}_count 2" in text
        assert f"{metric}_sum 0.006000000" in text
        assert (
            "repro_runtime_updates_accepted_total 1" in text
        )

    def test_buckets_are_cumulative_and_sorted(self):
        text = prometheus_text(self._telemetry())
        bounds, counts = [], []
        for line in text.splitlines():
            if '_bucket{le="' in line and "+Inf" not in line:
                le, _, count = line.partition('"}')
                bounds.append(float(le.split('le="')[1]))
                counts.append(int(count))
        assert bounds == sorted(bounds)
        assert counts == sorted(counts)
        assert counts[-1] == 2

    def test_accepts_a_snapshot_dict(self):
        snapshot = self._telemetry().snapshot(events=0)
        text = prometheus_text(snapshot)
        # Rendering a dict is deterministic and matches the live form.
        assert text == prometheus_text(snapshot)
        assert "repro_runtime_update_deposit_admit_seconds" in text

    def test_every_line_is_well_formed(self):
        for line in prometheus_text(self._telemetry()).splitlines():
            assert line.startswith("#") or " " in line

"""Tests for the trace exporters: Chrome Trace Event schema validity,
the flat JSONL log, and the summary tree."""

import io
import json

import pytest

from repro.obs.export import (
    chrome_trace_events,
    format_tree,
    iter_flat_events,
    to_chrome_json,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.tracer import Span, Tracer


@pytest.fixture()
def small_trace():
    """verify > (explore, chunk(worker=1)) with counters."""
    tracer = Tracer()
    with tracer.span("verify", application="courses") as verify:
        with tracer.span("explore", workers=2) as explore:
            explore.count("explore.states", 25)
        chunk = Span("chunk", {"worker": 1})
        chunk.count("items", 10)
        chunk.end = chunk.start + 0.002
        tracer.graft(chunk)
    return tracer, verify, explore, chunk


class TestChromeTrace:
    def test_events_follow_the_trace_event_schema(self, small_trace):
        tracer, *_ = small_trace
        events = chrome_trace_events(tracer)
        assert len(events) == 3
        for event in events:
            assert event["ph"] == "X"
            assert event["cat"] == "repro"
            assert isinstance(event["name"], str)
            assert isinstance(event["ts"], float)
            assert isinstance(event["dur"], float)
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert event["pid"] == 0
            assert isinstance(event["tid"], int)
            assert isinstance(event["args"], dict)

    def test_timestamps_are_normalized_microseconds(self, small_trace):
        tracer, verify, explore, _ = small_trace
        events = {e["name"]: e for e in chrome_trace_events(tracer)}
        assert events["verify"]["ts"] == 0.0
        expected = (explore.start - verify.start) * 1e6
        assert events["explore"]["ts"] == pytest.approx(
            expected, abs=0.01
        )

    def test_worker_spans_get_their_own_tid(self, small_trace):
        tracer, *_ = small_trace
        events = {e["name"]: e for e in chrome_trace_events(tracer)}
        assert events["verify"]["tid"] == 0
        assert events["explore"]["tid"] == 0
        assert events["chunk"]["tid"] == 2  # worker 1 -> tid 2

    def test_attrs_and_counters_land_in_args(self, small_trace):
        tracer, *_ = small_trace
        events = {e["name"]: e for e in chrome_trace_events(tracer)}
        assert events["verify"]["args"]["application"] == "courses"
        assert events["explore"]["args"]["counters"] == {
            "explore.states": 25
        }

    def test_child_event_is_inside_parent_interval(self, small_trace):
        tracer, *_ = small_trace
        events = {e["name"]: e for e in chrome_trace_events(tracer)}
        parent, child = events["verify"], events["explore"]
        assert parent["ts"] <= child["ts"]
        assert (
            child["ts"] + child["dur"]
            <= parent["ts"] + parent["dur"] + 0.01
        )

    def test_document_shape_and_file_roundtrip(
        self, small_trace, tmp_path
    ):
        tracer, *_ = small_trace
        document = to_chrome_json(tracer)
        assert set(document) == {
            "traceEvents", "displayTimeUnit", "otherData",
        }
        path = tmp_path / "trace.json"
        write_chrome_trace(tracer, str(path))
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(document))

    def test_write_accepts_a_stream(self, small_trace):
        tracer, *_ = small_trace
        buffer = io.StringIO()
        write_chrome_trace(tracer, buffer)
        assert json.loads(buffer.getvalue())["otherData"] == {
            "producer": "repro.obs"
        }

    def test_open_span_exports_zero_duration(self):
        tracer = Tracer()
        handle = tracer.span("open")
        handle.__enter__()
        (event,) = chrome_trace_events(tracer)
        assert event["dur"] == 0.0


class TestFlatLog:
    def test_events_are_preorder_with_paths(self, small_trace):
        tracer, *_ = small_trace
        events = list(iter_flat_events(tracer))
        assert [e["name"] for e in events] == [
            "verify", "explore", "chunk",
        ]
        assert [e["path"] for e in events] == [
            "verify", "verify/explore", "verify/chunk",
        ]
        assert [e["depth"] for e in events] == [0, 1, 1]

    def test_durations_are_relative_seconds(self, small_trace):
        tracer, verify, *_ = small_trace
        first = next(iter_flat_events(tracer))
        assert first["start"] == 0.0
        assert first["duration"] == pytest.approx(
            verify.duration, abs=1e-6
        )

    def test_jsonl_lines_parse_back(self, small_trace, tmp_path):
        tracer, *_ = small_trace
        path = tmp_path / "trace.jsonl"
        write_jsonl(tracer, str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        parsed = [json.loads(line) for line in lines]
        assert parsed[2]["counters"] == {"items": 10}


class TestSummaryTree:
    def test_tree_indents_and_shows_counters(self, small_trace):
        tracer, *_ = small_trace
        text = format_tree(tracer)
        lines = text.splitlines()
        assert lines[0].startswith("verify")
        assert "application=courses" in lines[0]
        assert lines[1].startswith("  explore")
        assert "[explore.states=25]" in lines[1]
        assert lines[2].startswith("  chunk")

    def test_counter_overflow_is_summarized(self):
        tracer = Tracer()
        with tracer.span("busy") as busy:
            for index in range(9):
                busy.count(f"c{index}")
        text = format_tree(tracer, max_counters=6)
        assert "+3 more" in text

    def test_exporters_accept_raw_span_lists(self, small_trace):
        tracer, *_ = small_trace
        assert format_tree(tracer.roots) == format_tree(tracer)
        assert list(iter_flat_events(tracer.roots)) == list(
            iter_flat_events(tracer)
        )

"""Tests for the SQLite backend and the orchestrating database."""

from __future__ import annotations

import pytest

from repro.errors import IncompletenessError
from repro.algebraic.algebra import TraceAlgebra
from repro.algebraic.equations import ConditionalEquation
from repro.algebraic.signature import AlgebraicSignature
from repro.algebraic.spec import AlgebraicSpec
from repro.logic import formulas as fm
from repro.logic.sorts import STATE
from repro.logic.terms import Var
from repro.relational import (
    RelationalDatabase,
    SQLiteBackend,
    build_database,
)
from repro.runtime.apps import available_applications, build_app

APPLICATIONS = sorted(available_applications())


class TestApply:
    def test_initial_snapshot_matches_trace_algebra(self):
        for name in APPLICATIONS:
            db = build_database(name, with_guard=False)
            try:
                algebra = TraceAlgebra(db.spec)
                assert db.snapshot() == algebra.snapshot(
                    algebra.initial_trace()
                ), name
            finally:
                db.close()

    def test_admitted_update_commits_and_matches(self):
        db = build_database("courses", with_guard=False)
        try:
            algebra = TraceAlgebra(db.spec)
            trace = algebra.initial_trace()
            assert db.apply("offer", "c1") is True
            trace = algebra.apply("offer", "c1", trace=trace)
            assert db.snapshot() == algebra.snapshot(trace)
            assert db.query("offered", "c1") is True
            assert db.stats["transactions"] == 1
        finally:
            db.close()

    def test_precondition_false_is_a_noop(self):
        db = build_database("courses", with_guard=False)
        try:
            before = db.snapshot()
            # enroll requires the course to be offered; it is not.
            assert db.apply("enroll", "s1", "c1") is False
            assert db.snapshot() == before
            assert db.stats["noops_precondition"] == 1
            assert db.stats["transactions"] == 0
        finally:
            db.close()

    def test_programs_are_cached_per_instance(self):
        db = build_database("courses", with_guard=False)
        try:
            db.apply("offer", "c1")
            db.apply("offer", "c1")
            assert db.stats["programs_compiled"] == 1
            assert db.program("offer", ("c1",)) is db.program(
                "offer", ("c1",)
            )
        finally:
            db.close()

    def test_incompleteness_rolls_back(self):
        signature = AlgebraicSignature("partial")
        item = signature.add_parameter_sort("item")
        signature.add_parameter_values(item, ["i1"])
        signature.add_query("flag", [item])
        signature.add_initial()
        signature.add_update("poke", [item])
        c = Var("c", item)
        u = Var("U", STATE)
        poked = signature.apply_update("poke", c, u)
        spec = AlgebraicSpec(
            signature,
            (
                ConditionalEquation(
                    signature.apply_query(
                        "flag", c, signature.initial_term()
                    ),
                    signature.false(),
                ),
                ConditionalEquation(
                    signature.apply_query("flag", c, poked),
                    signature.true(),
                    condition=fm.Equals(
                        signature.apply_query("flag", c, u),
                        signature.false(),
                    ),
                ),
            ),
            name="partial",
        )
        db = RelationalDatabase(spec, SQLiteBackend())
        try:
            assert db.apply("poke", "i1") is True  # flips to True
            with pytest.raises(IncompletenessError):
                db.apply("poke", "i1")  # no equation fires now
            # The failed transaction rolled back: state unchanged,
            # staging space empty, and the database still works.
            assert db.query("flag", "i1") is True
            assert (
                db.backend.query_value(
                    'SELECT COUNT(*) FROM "_stage_flag"'
                )
                == 0
            )
        finally:
            db.close()


class TestConstraintAuditing:
    def test_clean_state_passes(self):
        db = build_database("courses")
        try:
            assert db.check_constraints() == []
            db.apply("offer", "c1")
            assert db.check_constraints() == []
        finally:
            db.close()

    def test_corrupted_row_is_reported(self):
        # Bypass the transaction programs and break the level-1
        # invariant directly: a student takes a course that is not
        # offered.  The stored decision tables must notice.
        db = build_database("courses")
        try:
            db.backend.execute(
                "UPDATE \"takes\" SET value = 1 "
                "WHERE student = 's1' AND course = 'c1'"
            )
            failures = db.check_constraints()
            assert failures
            assert any("static" in f for f in failures)
        finally:
            db.close()

    def test_guardless_database_audits_nothing(self):
        db = build_database("courses", with_guard=False)
        try:
            assert db.check_constraints() == []
        finally:
            db.close()


class TestEmission:
    def test_compile_sql_script_is_self_contained(self):
        # The emitted script must rebuild an equivalent database on
        # a bare SQLite connection.
        import sqlite3

        db = build_database("bank")
        try:
            script = db.compile_sql_script(include_programs=False)
        finally:
            db.close()
        connection = sqlite3.connect(":memory:")
        connection.executescript(script)
        count = connection.execute(
            'SELECT COUNT(*) FROM "balance"'
        ).fetchone()[0]
        assert count > 0
        connection.close()

    def test_script_includes_programs_by_default(self):
        db = build_database("courses", with_guard=False)
        try:
            script = db.compile_sql_script()
        finally:
            db.close()
        assert "-- transaction program: offer(c1)" in script
        assert "BEGIN;" in script and "COMMIT;" in script

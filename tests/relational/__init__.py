"""Tests for the spec→relational compiler and its backends."""

"""Tests for the schema mapping: tables, keys, totality, encoding."""

from __future__ import annotations

import sqlite3

import pytest

from repro.errors import RelationalError
from repro.relational.schema import RelationalSchema
from repro.relational.sqlite import SQLiteBackend
from repro.relational import build_database
from repro.runtime.apps import build_app


def _spec(name):
    return build_app(name).framework.algebraic


class TestTableMapping:
    def test_one_table_per_query_plus_stage(self):
        spec = _spec("courses")
        schema = RelationalSchema(spec)
        names = {t.name for t in schema.tables}
        for symbol in spec.signature.queries:
            assert symbol.name in names
            assert f"_stage_{symbol.name}" in names
        for sort in spec.signature.parameter_sorts:
            assert f"_dom_{sort.name}" in names

    def test_primary_key_is_the_parameter_tuple(self):
        schema = RelationalSchema(_spec("courses"))
        takes = schema.table_for_query("takes")
        assert takes.primary_key == ("student", "course")
        assert schema.key_columns("offered") == ("course",)

    def test_duplicate_sort_columns_are_renamed(self):
        # library's "waits" query takes two members: the second
        # column must not collide with the first.
        schema = RelationalSchema(_spec("library"))
        for symbol in schema.signature.queries:
            table = schema.table_for_query(symbol.name)
            names = [c.name for c in table.columns]
            assert len(names) == len(set(names)), names

    def test_unknown_query_raises(self):
        schema = RelationalSchema(_spec("courses"))
        with pytest.raises(RelationalError):
            schema.table_for_query("nope")

    def test_function_tables_for_interpreted_functions(self):
        spec = _spec("bank")
        schema = RelationalSchema(spec)
        names = {t.name for t in schema.tables}
        for fn in spec.signature.interpreted_functions:
            assert f"_fn_{fn}" in names
        assert spec.signature.interpreted_functions  # bank has inc/dec


class TestEncoding:
    def test_boolean_roundtrip(self):
        schema = RelationalSchema(_spec("courses"))
        assert schema.encode("offered", True) == 1
        assert schema.encode("offered", False) == 0
        assert schema.decode("offered", 1) is True
        assert schema.decode("offered", 0) is False

    def test_domain_valued_roundtrip(self):
        schema = RelationalSchema(_spec("bank"))
        assert schema.encode("balance", "m2") == "m2"
        assert schema.decode("balance", "m2") == "m2"

    def test_cell_subquery_pins_every_key(self):
        schema = RelationalSchema(_spec("courses"))
        sql = schema.cell_subquery(("takes", ("s1", "c2")))
        assert '"student" = \'s1\'' in sql
        assert '"course" = \'c2\'' in sql


class TestSeededState:
    def test_query_tables_are_total(self):
        # One row per ground cell: |table| = product of the domains.
        db = build_database("courses", with_guard=False)
        try:
            signature = db.schema.signature
            for symbol in signature.queries:
                expected = 1
                for sort in symbol.arg_sorts[:-1]:
                    expected *= len(signature.domain(sort))
                count = db.backend.query_value(
                    f'SELECT COUNT(*) FROM "{symbol.name}"'
                )
                assert count == expected, symbol.name
        finally:
            db.close()

    def test_function_table_stores_the_interpretation(self):
        db = build_database("bank", with_guard=False)
        try:
            inc = db.backend.query_value(
                "SELECT value FROM \"_fn_inc\" WHERE a0 = 'm0'"
            )
            assert inc == "m1"
        finally:
            db.close()

    def test_value_check_constraint_rejects_garbage(self):
        # The CHECK constraint is live, not documentation: writing a
        # value outside the result domain must fail.
        db = build_database("courses", with_guard=False)
        try:
            with pytest.raises(sqlite3.IntegrityError):
                db.backend.execute(
                    "UPDATE \"offered\" SET value = 7 "
                    "WHERE course = 'c1'"
                )
        finally:
            db.close()

    def test_foreign_keys_pin_parameters_to_domains(self):
        db = build_database("courses", with_guard=False)
        try:
            with pytest.raises(sqlite3.IntegrityError):
                db.backend.execute(
                    "INSERT INTO \"offered\" (course, value) "
                    "VALUES ('c999', 0)"
                )
        finally:
            db.close()

    def test_bad_path_raises_relational_error(self):
        with pytest.raises(RelationalError):
            SQLiteBackend("/nonexistent-dir/db.sqlite")

"""Tests for transaction-program and guard lowering."""

from __future__ import annotations

import pytest

from repro.errors import RelationalError
from repro.algebraic.equations import ConditionalEquation
from repro.algebraic.signature import AlgebraicSignature
from repro.algebraic.spec import AlgebraicSpec
from repro.logic.sorts import STATE
from repro.logic.terms import Var
from repro.relational.lowering import (
    GuardLowering,
    TransactionLowerer,
)
from repro.relational.schema import RelationalSchema
from repro.runtime.apps import build_app
from repro.runtime.guards import AdmissionGuard


def _app(name):
    return build_app(name)


class TestTransactionPrograms:
    def test_guard_query_present_iff_precondition(self):
        app = _app("courses")
        lowerer = TransactionLowerer(
            app.framework.algebraic, app.descriptions
        )
        program = lowerer.lower("enroll", ("s1", "c1"))
        assert program.precondition_sql is not None
        assert program.precondition_sql.startswith(
            "SELECT CASE WHEN"
        )
        # "offer" has no precondition; a description-free lowerer
        # never has one.
        assert lowerer.lower("offer", ("c1",)).precondition_sql is None
        bare = TransactionLowerer(app.framework.algebraic)
        assert (
            bare.lower("enroll", ("s1", "c1")).precondition_sql
            is None
        )

    def test_two_phase_shape(self):
        # Stage INSERTs come before the apply UPDATEs, and every
        # staged table is cleaned, so the program is re-runnable.
        app = _app("courses")
        lowerer = TransactionLowerer(
            app.framework.algebraic, app.descriptions
        )
        program = lowerer.lower("cancel", ("c1",))
        assert program.stages
        staged = {query for query, _ in program.stages}
        assert len(program.applies) == len(staged)
        assert len(program.cleanups) == len(staged)
        script = program.script()
        assert script.index("BEGIN;") < script.index("UPDATE")
        assert script.rstrip().endswith("COMMIT;")

    def test_stage_reads_only_live_tables(self):
        # Pre-state semantics: no stage statement may read another
        # staging table.
        app = _app("projects")
        lowerer = TransactionLowerer(
            app.framework.algebraic, app.descriptions
        )
        for update, params in [
            ("dissolve", ("p1",)),
            ("assign", ("e1", "p1")),
        ]:
            program = lowerer.lower(update, params)
            for _query, statement in program.stages:
                body = statement.split("VALUES", 1)[1]
                assert '"_stage_' not in body

    def test_sealed_dispatch_needs_no_completeness_check(self):
        # The shipped apps synthesize sealed dispatches (otherwise
        # branch), so no staged NULL is possible.
        app = _app("library")
        lowerer = TransactionLowerer(
            app.framework.algebraic, app.descriptions
        )
        program = lowerer.lower("acquire", ("b1",))
        assert program.checks == ()

    def test_unsealed_dispatch_emits_completeness_check(self):
        signature = AlgebraicSignature("partial")
        item = signature.add_parameter_sort("item")
        signature.add_parameter_values(item, ["i1"])
        signature.add_query("flag", [item])
        signature.add_initial()
        signature.add_update("poke", [item])
        c = Var("c", item)
        u = Var("U", STATE)
        poked = signature.apply_update("poke", c, u)
        # Only a conditional equation: when flag(i1) is already True
        # nothing fires — a sufficient-completeness hole.
        spec = AlgebraicSpec(
            signature,
            (
                ConditionalEquation(
                    signature.apply_query(
                        "flag", c, signature.initial_term()
                    ),
                    signature.false(),
                ),
                ConditionalEquation(
                    signature.apply_query("flag", c, poked),
                    signature.true(),
                    condition=fm_equals_false(signature, c, u),
                ),
            ),
            name="partial",
        )
        program = TransactionLowerer(spec).lower("poke", ("i1",))
        assert program.checks
        assert "ELSE NULL" in program.stages[0][1]

    def test_condition_hook_is_an_override_seam(self):
        app = _app("courses")

        class Negating(TransactionLowerer):
            def condition_sql(self, condition):
                return f"(NOT {super().condition_sql(condition)})"

        spec = app.framework.algebraic
        honest = TransactionLowerer(spec, app.descriptions)
        wrong = Negating(spec, app.descriptions)
        assert honest.lower("cancel", ("c1",)).stages != wrong.lower(
            "cancel", ("c1",)
        ).stages

    def test_unknown_update_is_a_serving_error(self):
        from repro.errors import ServingError

        app = _app("courses")
        lowerer = TransactionLowerer(
            app.framework.algebraic, app.descriptions
        )
        with pytest.raises(ServingError):
            lowerer.lower("nope", ())

    def test_outside_fragment_raises_relational_error(self):
        # A query with no equation over an update cannot be lowered.
        signature = AlgebraicSignature("holey")
        item = signature.add_parameter_sort("item")
        signature.add_parameter_values(item, ["i1"])
        signature.add_query("flag", [item])
        signature.add_initial()
        signature.add_update("poke", [item])
        c = Var("c", item)
        spec = AlgebraicSpec(
            signature,
            (
                ConditionalEquation(
                    signature.apply_query(
                        "flag", c, signature.initial_term()
                    ),
                    signature.false(),
                ),
            ),
            name="holey",
        )
        with pytest.raises(RelationalError):
            TransactionLowerer(spec).lower("poke", ("i1",))


def fm_equals_false(signature, c, u):
    from repro.logic import formulas as fm

    return fm.Equals(
        signature.apply_query("flag", c, u), signature.false()
    )


class TestGuardLowering:
    @pytest.fixture(scope="class")
    def lowered(self):
        app = _app("courses")
        framework = app.framework
        guard = AdmissionGuard(
            framework.information,
            framework.algebraic,
            framework.carriers,
            framework.interpretation,
        )
        schema = RelationalSchema(framework.algebraic)
        return guard, GuardLowering(guard, schema)

    def test_one_stored_table_per_tabulated_group(self, lowered):
        guard, lowering = lowered
        tabulated = [
            t for t in guard.static_tables if t.allowed is not None
        ] + [
            t
            for t in guard.transition_tables
            if t.allowed is not None
        ]
        assert len(lowering.ddl()) == len(tabulated)

    def test_seed_rows_match_allowed_valuations(self, lowered):
        guard, lowering = lowered
        inserts = lowering.seed_sql()
        expected = sum(
            len(t.allowed) for t in lowering.static_tables
        ) + sum(len(t.allowed) for t in lowering.transition_tables)
        assert len(inserts) == expected

    def test_audit_queries_cover_every_stored_table(self, lowered):
        _guard, lowering = lowered
        audits = lowering.audit_queries()
        assert len(audits) == len(lowering.static_tables) + len(
            lowering.transition_tables
        )
        for _kind, _index, sql in audits:
            assert sql.startswith("SELECT CASE WHEN EXISTS")

"""Differential-oracle tests: rewrite semantics vs the SQL backend.

The headline acceptance test: on all four shipped applications, a
replayed trace answers every observation identically on both sides;
and a deliberately mis-lowered program is *caught* — proving the
oracle detects real divergence rather than vacuously passing.
"""

from __future__ import annotations

import random

import pytest

from repro.relational import (
    DifferentialOracle,
    RelationalDatabase,
    SQLiteBackend,
    TransactionLowerer,
    run_oracle,
)
from repro.runtime.apps import available_applications, build_app

APPLICATIONS = sorted(available_applications())


@pytest.mark.parametrize("name", APPLICATIONS)
def test_oracle_passes_on_shipped_applications(name):
    report = run_oracle(name, steps=50, seed=11)
    assert report.passed, report.to_dict()
    assert report.steps == 50
    assert report.applied + report.noops == 50
    assert report.backend == "sqlite"


@pytest.mark.parametrize("name", APPLICATIONS)
def test_oracle_passes_with_guard_tables_installed(name):
    # Guard membership tables ride along in the same database; they
    # must not perturb the observation tables.
    from repro.relational import build_database

    db = build_database(name, with_guard=True)
    report = run_oracle(name, steps=30, seed=5, database=db)
    failures = db.check_constraints()
    db.close()
    assert report.passed, report.to_dict()
    assert failures == []


def test_replay_is_deterministic():
    left = run_oracle("courses", steps=25, seed=9).to_dict()
    right = run_oracle("courses", steps=25, seed=9).to_dict()
    assert left == right


def test_random_trace_is_seeded():
    from repro.relational import build_database

    db = build_database("courses", with_guard=False)
    try:
        oracle = DifferentialOracle(db)
        assert oracle.random_trace(10, 3) == oracle.random_trace(
            10, 3
        )
        assert oracle.random_trace(10, 3) != oracle.random_trace(
            10, 4
        )
    finally:
        db.close()


class _NegatedConditions(TransactionLowerer):
    """Deliberately wrong: every dispatch condition is negated."""

    def condition_sql(self, condition):
        return f"(NOT {super().condition_sql(condition)})"


class _CorruptedRhs(TransactionLowerer):
    """Deliberately wrong: Boolean right-hand sides are flipped."""

    def rhs_sql(self, rhs):
        return f"(NOT {super().rhs_sql(rhs)})"


@pytest.mark.parametrize(
    "wrong_lowerer", [_NegatedConditions, _CorruptedRhs]
)
def test_oracle_catches_a_wrong_lowering(wrong_lowerer):
    app = build_app("courses")
    framework = app.framework
    db = RelationalDatabase(
        framework.algebraic,
        SQLiteBackend(),
        lowerer=wrong_lowerer(
            framework.algebraic, app.descriptions
        ),
    )
    report = run_oracle("courses", steps=60, seed=3, database=db)
    db.close()
    assert not report.passed
    divergence = report.divergences[0]
    assert divergence.kind in ("snapshot", "admission")
    assert "divergence" in str(divergence)


def test_divergence_report_names_the_cells():
    app = build_app("courses")
    framework = app.framework
    db = RelationalDatabase(
        framework.algebraic,
        SQLiteBackend(),
        lowerer=_CorruptedRhs(framework.algebraic, app.descriptions),
    )
    report = run_oracle("courses", steps=60, seed=3, database=db)
    db.close()
    snapshot_divergences = [
        d for d in report.divergences if d.kind == "snapshot"
    ]
    if snapshot_divergences:  # conditions may diverge at admission
        assert snapshot_divergences[0].cells


@pytest.mark.slow
@pytest.mark.parametrize("name", APPLICATIONS)
def test_oracle_long_runs(name):
    for seed in range(3):
        report = run_oracle(name, steps=400, seed=seed)
        assert report.passed, report.to_dict()


class TestCli:
    def test_diff_oracle_all(self, capsys):
        from repro.cli import main

        assert main(["diff-oracle", "all", "--steps", "20"]) == 0
        out = capsys.readouterr().out
        for name in APPLICATIONS:
            assert f"{name}: PASS" in out

    def test_diff_oracle_json(self, capsys):
        import json

        from repro.cli import main

        assert (
            main(
                [
                    "diff-oracle",
                    "courses",
                    "--steps",
                    "10",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is True
        assert payload["steps"] == 10

    def test_diff_oracle_unknown_application(self, capsys):
        from repro.cli import main

        assert main(["diff-oracle", "nope"]) == 2

    def test_compile_sql_to_stdout(self, capsys):
        from repro.cli import main

        assert main(["compile-sql", "courses", "--schema-only"]) == 0
        out = capsys.readouterr().out
        assert "CREATE TABLE" in out
        assert "-- transaction program:" not in out

    def test_compile_sql_to_file(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "courses.sql"
        assert (
            main(
                ["compile-sql", "courses", "--output", str(target)]
            )
            == 0
        )
        capsys.readouterr()
        text = target.read_text()
        assert "transaction program" in text

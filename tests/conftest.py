"""Shared fixtures: the paper's running example at every level.

Session-scoped where construction is pure, so the many tests touching
the courses application don't rebuild it each time.
"""

from __future__ import annotations

import pytest

from repro.algebraic.algebra import TraceAlgebra
from repro.applications import courses
from repro.logic.signature import Signature
from repro.logic.sorts import Sort
from repro.rpr.parser import parse_schema


@pytest.fixture(scope="session")
def courses_info():
    """The information-level theory T1 of Section 3.2."""
    return courses.courses_information()


@pytest.fixture(scope="session")
def courses_carriers():
    """2-student / 2-course carriers."""
    return courses.courses_information_carriers()


@pytest.fixture(scope="session")
def courses_spec():
    """The algebraic specification T2 with the paper's equations."""
    return courses.courses_algebraic()


@pytest.fixture(scope="session")
def courses_algebra(courses_spec):
    """The trace algebra over T2."""
    return TraceAlgebra(courses_spec)


@pytest.fixture(scope="session")
def courses_schema():
    """The parsed RPR schema T3 of Section 5.2."""
    return parse_schema(courses.courses_schema_source())


@pytest.fixture()
def simple_signature():
    """A small first-order signature used by logic-level tests."""
    student = Sort("student")
    course = Sort("course")
    signature = Signature(sorts=[student, course])
    signature.add_predicate("offered", [course], db=True)
    signature.add_predicate("takes", [student, course], db=True)
    return signature

"""The materialized store: plans, writes, trace equivalence."""

from __future__ import annotations

import pytest

from repro.algebraic.algebra import TraceAlgebra
from repro.errors import ServingError
from repro.runtime.state import MaterializedState


@pytest.fixture()
def store(bank_app):
    return MaterializedState(
        bank_app.framework.algebraic, bank_app.descriptions
    )


def test_initial_cells_match_trace_snapshot(store, bank_app):
    algebra = TraceAlgebra(bank_app.framework.algebraic)
    assert store.snapshot() == algebra.snapshot(algebra.initial_trace())


def test_plans_are_cached(store):
    assert store.plan("deposit", ("a1",)) is store.plan(
        "deposit", ("a1",)
    )


def test_frame_cells_dropped_from_plan(store):
    # deposit(a1) only ever writes a1's balance; the synthesized frame
    # equations for open(a1), open(a2) and balance(a2) are identities
    # and must not appear as candidate cells.
    plan = store.plan("deposit", ("a1",))
    assert plan.candidate_cells == (("balance", ("a1",)),)


def test_open_account_plan_covers_both_effects(store):
    cells = set(store.plan("open_account", ("a1",)).candidate_cells)
    assert cells == {("open", ("a1",)), ("balance", ("a1",))}


def test_precondition_compiled_against_cells(store):
    plan = store.plan("deposit", ("a1",))
    assert plan.precondition is not None
    assert plan.precondition(store.getter) is False  # a1 is closed
    store.apply("open_account", ("a1",))
    assert plan.precondition(store.getter) is True


def test_unknown_update_rejected(store):
    with pytest.raises(ServingError):
        store.plan("embezzle", ("a1",))


def test_bad_arity_rejected(store):
    with pytest.raises(ServingError):
        store.plan("deposit", ("a1", "a2"))


def test_unknown_parameter_value_rejected(store):
    with pytest.raises(ServingError):
        store.plan("deposit", ("a9",))


def test_compute_writes_returns_only_changes(store):
    store.apply("open_account", ("a1",))
    writes = store.compute_writes(store.plan("deposit", ("a1",)))
    assert writes == {("balance", ("a1",)): "m1"}


def test_precondition_false_apply_is_noop(store):
    before = store.snapshot()
    store.apply("deposit", ("a1",))  # a1 closed: trace-level no-op
    assert store.snapshot() == before


def test_apply_matches_trace_algebra(store, bank_app):
    algebra = TraceAlgebra(bank_app.framework.algebraic)
    trace = algebra.initial_trace()
    script = [
        ("open_account", ("a1",)),
        ("deposit", ("a1",)),
        ("deposit", ("a1",)),
        ("withdraw", ("a1",)),
        ("open_account", ("a2",)),
        ("close_account", ("a2",)),
        ("withdraw", ("a1",)),
        ("close_account", ("a1",)),
    ]
    for update, params in script:
        store.apply(update, params)
        trace = algebra.apply(update, *params, trace=trace)
        assert store.snapshot() == algebra.snapshot(trace)


def test_load_requires_matching_cell_set(store):
    with pytest.raises(ServingError):
        store.load({("balance", ("a1",)): "m1"})

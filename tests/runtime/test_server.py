"""The JSON-lines server: protocol handling and the asyncio loop."""

from __future__ import annotations

import asyncio
import json
import queue
import threading

import pytest

from repro.errors import ServingError
from repro.obs.telemetry import activate_telemetry
from repro.runtime.client import RuntimeClient, wait_until_ready
from repro.runtime.server import RuntimeServer, serve
from repro.runtime.service import SpecRuntime


@pytest.fixture()
def server(bank_runtime):
    return RuntimeServer(bank_runtime, allow_shutdown=True)


def test_ping(server):
    response, stop = server.handle_request({"op": "ping"})
    assert response == {"ok": True, "pong": True} and not stop


def test_query_and_update(server):
    response, _ = server.handle_request(
        {"op": "update", "update": "open_account", "params": ["a1"]}
    )
    assert response["ok"] and response["accepted"]
    response, _ = server.handle_request(
        {"op": "query", "query": "open", "params": ["a1"]}
    )
    assert response == {"ok": True, "value": True}


def test_rejected_update_is_still_ok(server):
    response, _ = server.handle_request(
        {"op": "update", "update": "deposit", "params": ["a1"]}
    )
    assert response["ok"] is True  # the request was served ...
    assert response["accepted"] is False  # ... and the update refused
    assert response["violation"]["kind"] == "precondition"


def test_state_and_stats(server):
    server.handle_request(
        {"op": "update", "update": "open_account", "params": ["a1"]}
    )
    response, _ = server.handle_request({"op": "state"})
    assert response["seq"] == 1
    assert ["open", ["a1"], True] in response["cells"]
    response, _ = server.handle_request({"op": "stats"})
    assert response["stats"]["accepted"] == 1


def test_errors_are_reported_not_raised(server):
    for request in (
        {"op": "frobnicate"},
        {"op": "query", "query": "no_such_query", "params": []},
        {"op": "update", "update": "deposit", "params": ["zz"]},
        {"op": "update"},
        [1, 2, 3],
    ):
        response, stop = server.handle_request(request)
        assert response["ok"] is False and response["error"]
        assert not stop


def test_shutdown_honored_only_when_allowed(bank_runtime):
    guarded = RuntimeServer(bank_runtime, allow_shutdown=False)
    response, stop = guarded.handle_request({"op": "shutdown"})
    assert not response["ok"] and not stop

    open_server = RuntimeServer(bank_runtime, allow_shutdown=True)
    response, stop = open_server.handle_request({"op": "shutdown"})
    assert response["ok"] and stop


def test_asyncio_round_trip(bank_app):
    """Drive the real event loop: connect, update, query, shutdown."""

    async def scenario():
        runtime = SpecRuntime(bank_app.framework, bank_app.descriptions)
        server = RuntimeServer(runtime, allow_shutdown=True)
        await server.start()
        serving = asyncio.create_task(server.serve_until_stopped())
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port
        )

        async def rpc(payload):
            writer.write((json.dumps(payload) + "\n").encode())
            await writer.drain()
            return json.loads(await reader.readline())

        assert (await rpc({"op": "ping"}))["pong"]
        accepted = await rpc(
            {"op": "update", "update": "open_account", "params": ["a1"]}
        )
        assert accepted["accepted"] and accepted["seq"] == 1
        value = await rpc(
            {"op": "query", "query": "open", "params": ["a1"]}
        )
        assert value["value"] is True
        garbage = await rpc({"op": "update", "update": "withdraw",
                             "params": ["a1"]})
        assert garbage["accepted"] is False
        writer.write(b"this is not json\n")
        await writer.drain()
        bad = json.loads(await reader.readline())
        assert bad == {"ok": False, "error": "invalid JSON"}
        assert (await rpc({"op": "shutdown"}))["bye"]
        await asyncio.wait_for(serving, timeout=10)
        writer.close()

    asyncio.run(scenario())


def test_blocking_client_against_threaded_server(bank_app):
    """The stdlib client talks to serve() running in another thread
    (the same shape the CI serve smoke uses across processes)."""
    runtime = SpecRuntime(bank_app.framework, bank_app.descriptions)
    ports: queue.Queue = queue.Queue()
    thread = threading.Thread(
        target=serve,
        args=(runtime,),
        kwargs={
            "allow_shutdown": True,
            "ready": lambda server: ports.put(server.port),
            "install_signal_handlers": False,
        },
        daemon=True,
    )
    thread.start()
    port = ports.get(timeout=15)
    with wait_until_ready("127.0.0.1", port) as client:
        assert client.ping()["pong"]
        assert client.update("open_account", "a1")["accepted"]
        assert client.query("balance", "a1")["value"] == "m0"
        rejected = client.update("deposit", "a2")
        assert rejected["accepted"] is False
        assert rejected["violation"]["kind"] == "precondition"
        assert client.stats()["stats"]["rejected"] == 1
        assert client.shutdown()["bye"]
    thread.join(timeout=10)
    assert not thread.is_alive()


def test_client_reports_closed_connection(bank_app):
    runtime = SpecRuntime(bank_app.framework, bank_app.descriptions)
    ports: queue.Queue = queue.Queue()
    thread = threading.Thread(
        target=serve,
        args=(runtime,),
        kwargs={
            "allow_shutdown": True,
            "ready": lambda server: ports.put(server.port),
            "install_signal_handlers": False,
        },
        daemon=True,
    )
    thread.start()
    port = ports.get(timeout=15)
    first = RuntimeClient("127.0.0.1", port)
    first.shutdown()
    thread.join(timeout=10)
    with pytest.raises(ServingError):
        first.request({"op": "ping"})
    first.close()


class TestTelemetryOp:
    def test_refused_when_telemetry_is_disabled(self, server):
        response, stop = server.handle_request({"op": "telemetry"})
        assert response["ok"] is False
        assert "telemetry" in response["error"]
        assert not stop

    def test_snapshot_reflects_served_traffic(self, server):
        with activate_telemetry():
            server.handle_request(
                {
                    "op": "update",
                    "update": "open_account",
                    "params": ["a1"],
                }
            )
            server.handle_request(
                {"op": "update", "update": "deposit", "params": ["a2"]}
            )
            server.handle_request(
                {"op": "query", "query": "open", "params": ["a1"]}
            )
            response, _ = server.handle_request({"op": "telemetry"})
        assert response["ok"] is True
        assert response["application"] == server.runtime.name
        snapshot = response["telemetry"]
        histograms = snapshot["histograms"]
        assert (
            histograms["runtime.update.open_account.admit"]["count"]
            == 1
        )
        assert (
            histograms["runtime.update.deposit.reject"]["count"] == 1
        )
        assert histograms["runtime.query"]["count"] == 1
        counters = snapshot["counters"]
        assert counters["runtime.updates.accepted"]["total"] == 1
        assert counters["runtime.updates.rejected"]["total"] == 1
        assert counters["runtime.rejected.precondition"]["total"] == 1

    def test_events_limit_is_honored(self, server):
        with activate_telemetry() as telemetry:
            for index in range(5):
                telemetry.event("info", f"op{index}")
            response, _ = server.handle_request(
                {"op": "telemetry", "events": 2}
            )
        assert [e["op"] for e in response["telemetry"]["events"]] == [
            "op3",
            "op4",
        ]


class TestStatsMetrics:
    def test_stats_carries_metrics_and_uptime(self, server):
        server.handle_request(
            {"op": "update", "update": "open_account", "params": ["a1"]}
        )
        server.handle_request(
            {"op": "update", "update": "deposit", "params": ["a2"]}
        )
        response, _ = server.handle_request({"op": "stats"})
        assert response["stats"]["uptime_seconds"] >= 0.0
        metrics = response["metrics"]
        assert metrics["counters"]["runtime.updates.accepted"] == 1
        assert metrics["counters"]["runtime.updates.rejected"] == 1
        assert metrics["gauges"]["runtime.seq"] == 1
        assert metrics["gauges"]["runtime.uptime_seconds"] >= 0.0

"""The admission pipeline end to end (no sockets, no journal)."""

from __future__ import annotations

from repro.runtime.service import SpecRuntime


def test_accept_and_query(bank_runtime):
    result = bank_runtime.execute("open_account", ("a1",))
    assert result.accepted and result.seq == 1
    assert result.delta == {("open", ("a1",)): True}
    assert bank_runtime.query("open", ("a1",)) is True
    assert bank_runtime.query("balance", ("a1",)) == "m0"


def test_precondition_rejection_with_witness(bank_runtime):
    result = bank_runtime.execute("deposit", ("a1",))  # a1 closed
    assert not result.accepted
    assert result.seq == 0
    assert result.delta == {}
    violation = result.violation
    assert violation.kind == "precondition"
    assert ("open", ("a1",)) in violation.cells
    assert dict(violation.binding) == {"p0": "a1"}


def test_rejection_leaves_state_unchanged(bank_runtime):
    bank_runtime.execute("open_account", ("a1",))
    before = bank_runtime.store.snapshot()
    result = bank_runtime.execute("withdraw", ("a1",))  # balance m0
    assert not result.accepted
    assert bank_runtime.store.snapshot() == before
    assert bank_runtime.seq == 1


def test_noop_update_accepted_without_seq_advance(bank_runtime):
    bank_runtime.execute("open_account", ("a1",))
    # a1 opened with balance m0 already: reopening is rejected by the
    # precondition, but an effect-free admissible update (none in the
    # bank) would be accepted without advancing seq; exercise the
    # closest real path — a rejected update — and the counter split.
    bank_runtime.execute("open_account", ("a1",))
    assert bank_runtime.accepted_count == 1
    assert bank_runtime.rejected_count == 1


def test_full_lifecycle_and_stats(bank_runtime):
    script = [
        ("open_account", ("a1",), True),
        ("deposit", ("a1",), True),
        ("deposit", ("a1",), True),
        ("withdraw", ("a1",), True),
        ("withdraw", ("a1",), True),
        ("withdraw", ("a1",), False),  # balance back to m0
        ("close_account", ("a1",), True),
    ]
    for update, params, expect in script:
        assert bank_runtime.execute(update, params).accepted is expect
    stats = bank_runtime.stats
    assert stats["application"] == "bank accounts"
    assert stats["accepted"] == 6
    assert stats["rejected"] == 1
    assert stats["seq"] == 6
    assert stats["static_instances"] > 0
    assert "journal" not in stats  # in-memory runtime


def test_static_guard_rejection(lenient_runtime):
    # Lenient close_account has no zero-balance precondition; closing
    # a funded account must instead be stopped by the closed_zero
    # static constraint, with the account's cells in the witness.
    lenient_runtime.execute("open_account", ("a1",))
    lenient_runtime.execute("deposit", ("a1",))
    before = lenient_runtime.store.snapshot()
    result = lenient_runtime.execute("close_account", ("a1",))
    assert not result.accepted
    assert result.violation.kind == "static"
    assert ("balance", ("a1",)) in result.violation.cells
    assert lenient_runtime.store.snapshot() == before
    assert lenient_runtime.query("open", ("a1",)) is True


def test_transition_guard_rejection(lenient_runtime):
    # reopen_rich lands in a statically consistent state (open with
    # m1), so only the reopen_zero *transition* constraint can reject.
    result = lenient_runtime.execute("reopen_rich", ("a1",))
    assert not result.accepted
    assert result.violation.kind == "transition"
    assert lenient_runtime.query("open", ("a1",)) is False
    assert lenient_runtime.query("balance", ("a1",)) == "m0"


def test_lenient_zero_balance_close_still_admitted(lenient_runtime):
    lenient_runtime.execute("open_account", ("a1",))
    result = lenient_runtime.execute("close_account", ("a1",))
    assert result.accepted  # balance is m0: no constraint violated


def test_execution_result_to_dict(bank_runtime):
    payload = bank_runtime.execute("open_account", ("a2",)).to_dict()
    assert payload["accepted"] is True
    assert payload["params"] == ["a2"]
    assert ["open", ["a2"], True] in payload["delta"]
    assert payload["violation"] is None


def test_admission_artifacts_cached(bank_app):
    runtime = SpecRuntime(bank_app.framework, bank_app.descriptions)
    runtime.execute("open_account", ("a1",))
    first = runtime._admission[("deposit", ("a1",))] if (
        ("deposit", ("a1",)) in runtime._admission
    ) else None
    runtime.execute("deposit", ("a1",))
    cached = runtime._admission[("deposit", ("a1",))]
    runtime.execute("deposit", ("a1",))
    assert runtime._admission[("deposit", ("a1",))] is cached
    assert first is None or first is cached

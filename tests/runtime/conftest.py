"""Fixtures for the serving-runtime tests.

Besides the shipped applications, a deliberately *lenient* bank
variant is built here: its ``close_account`` drops the zero-balance
precondition and a fifth update ``reopen_rich`` reopens an account
with a non-zero balance in one step.  Both are admissible by their
preconditions but violate the bank's information-level constraints —
exactly what exercises the guard-rejection paths (static and
transition) without mocking anything.
"""

from __future__ import annotations

import pytest

from repro.algebraic.description import (
    STATE_VAR,
    Effect,
    StructuredDescription,
    initial_equations,
    synthesize_equations,
)
from repro.algebraic.spec import AlgebraicSpec
from repro.applications.bank import (
    bank_carriers,
    bank_descriptions,
    bank_information,
    bank_interpretation,
    bank_schema_source,
    bank_signature,
)
from repro.core.framework import DesignFramework
from repro.logic import formulas as fm
from repro.logic.terms import Var
from repro.rpr.parser import parse_schema
from repro.runtime.apps import build_app
from repro.runtime.service import SpecRuntime


@pytest.fixture(scope="session")
def bank_app():
    """The shipped bank application (framework + descriptions)."""
    return build_app("bank")


@pytest.fixture()
def bank_runtime(bank_app):
    """A fresh in-memory bank runtime per test."""
    return SpecRuntime(bank_app.framework, bank_app.descriptions)


def lenient_bank() -> tuple[DesignFramework, list[StructuredDescription]]:
    """The guard-violating bank variant (see module docstring)."""
    signature = bank_signature()
    account = signature.logic.sort("account")
    money = signature.logic.sort("money")
    signature.add_update("reopen_rich", [account])

    a = Var("a", account)
    u = STATE_VAR
    is_open = fm.Equals(
        signature.apply_query("open", a, u), signature.true()
    )
    descriptions = [
        d
        for d in bank_descriptions(signature)
        if d.update != "close_account"
    ]
    descriptions.append(
        StructuredDescription(
            update="close_account",
            params=(a,),
            precondition=is_open,  # zero-balance conjunct dropped
            effects=(Effect("open", (a,), False),),
            doc="account a closes regardless of its balance",
        )
    )
    descriptions.append(
        StructuredDescription(
            update="reopen_rich",
            params=(a,),
            precondition=fm.Not(is_open),
            effects=(
                Effect("open", (a,), True),
                Effect("balance", (a,), signature.value(money, "m1")),
            ),
            doc="account a reopens with one unit already on it",
        )
    )
    equations = initial_equations(
        signature, defaults={"balance": signature.value(money, "m0")}
    ) + synthesize_equations(signature, descriptions)
    spec = AlgebraicSpec(
        signature, tuple(equations), name="bank accounts (lenient)"
    )
    framework = DesignFramework(
        information=bank_information(),
        algebraic=spec,
        schema=parse_schema(bank_schema_source()),
        carriers=bank_carriers(),
        interpretation=bank_interpretation(signature),
        name="bank accounts (lenient)",
    )
    return framework, descriptions


@pytest.fixture(scope="session")
def lenient_bank_parts():
    """(framework, descriptions) of the lenient bank, built once."""
    return lenient_bank()


@pytest.fixture()
def lenient_runtime(lenient_bank_parts):
    """A fresh runtime over the lenient bank per test."""
    framework, descriptions = lenient_bank_parts
    return SpecRuntime(framework, descriptions)

"""Admission guards: cell indexing, witnesses, violation detection."""

from __future__ import annotations

import pytest

from repro.runtime.guards import AdmissionGuard
from repro.runtime.state import MaterializedState


@pytest.fixture(scope="module")
def guard(bank_app):
    framework = bank_app.framework
    return AdmissionGuard(
        framework.information,
        framework.algebraic,
        framework.carriers,
        framework.interpretation,
    )


@pytest.fixture()
def cells(bank_app):
    store = MaterializedState(
        bank_app.framework.algebraic, bank_app.descriptions
    )
    return dict(store.cells)


def test_instances_compiled_and_indexed(guard):
    assert guard.static_instances > 0
    assert guard.transition_instances > 0
    balance_cell = ("balance", ("a1",))
    for instance in guard.static_for([balance_cell]):
        assert balance_cell in instance.reads


def test_initial_state_is_consistent(guard, cells):
    assert guard.check_now(cells.__getitem__) == []


def test_static_violation_detected(guard, cells):
    # a closed account holding money violates closed_zero.
    cells[("balance", ("a1",))] = "m1"
    violations = guard.static_violations(cells.__getitem__)
    assert violations
    assert all(v.kind == "static" for v in violations)
    witness = violations[0]
    assert ("balance", ("a1",)) in witness.cells
    assert dict(witness.binding)  # the instantiating values survive


def test_static_check_scoped_to_cells(guard, cells):
    cells[("balance", ("a1",))] = "m1"
    # Checking only a2's cells must not see a1's violation ...
    clean = guard.static_violations(
        cells.__getitem__, cells=[("balance", ("a2",))]
    )
    assert clean == []
    # ... while checking the touched cell does.
    dirty = guard.static_violations(
        cells.__getitem__, cells=[("balance", ("a1",))]
    )
    assert dirty


def test_transition_violation_detected(guard, cells):
    # reopening with a non-zero balance violates reopen_zero even
    # though both endpoint states are statically consistent.
    after = dict(cells)
    after[("open", ("a1",))] = True
    after[("balance", ("a1",))] = "m1"
    violations = guard.transition_violations(
        cells.__getitem__, after.__getitem__
    )
    assert violations
    assert all(v.kind == "transition" for v in violations)


def test_identity_step_has_no_transition_violation(guard, cells):
    assert (
        guard.transition_violations(
            cells.__getitem__, cells.__getitem__
        )
        == []
    )


def test_violation_witness_serializes(guard, cells):
    cells[("balance", ("a2",))] = "m2"
    witness = guard.static_violations(cells.__getitem__)[0]
    payload = witness.to_dict()
    assert payload["kind"] == "static"
    assert isinstance(payload["constraint"], str)
    assert payload["cells"]
    assert str(witness)  # human-readable form renders

"""Differential testing: the incremental store vs trace re-reduction.

Every submitted update is applied to *both* a :class:`SpecRuntime`
and the plain trace algebra (where a precondition-false update is a
no-op, matching the runtime's rejection).  After every step the
materialized cells must equal the full re-reduction of the grown
trace — over all four shipped applications.  The ``slow``-marked
variants push the same invariant through thousands of updates with a
journal, compaction and a final crash recovery.
"""

from __future__ import annotations

import random

import pytest

from repro.algebraic.algebra import TraceAlgebra
from repro.runtime.apps import available_applications, build_app
from repro.runtime.service import SpecRuntime

APPLICATIONS = sorted(available_applications())


def _differential_run(
    name: str, steps: int, seed: int, **runtime_kwargs
) -> SpecRuntime:
    app = build_app(name)
    runtime = SpecRuntime(
        app.framework, app.descriptions, **runtime_kwargs
    )
    algebra = TraceAlgebra(app.framework.algebraic)
    trace = algebra.initial_trace()
    instances = list(algebra.update_instances())
    rng = random.Random(seed)
    accepted = 0
    for _ in range(steps):
        update, params = rng.choice(instances)
        result = runtime.execute(update, params)
        trace = algebra.apply(update, *params, trace=trace)
        assert runtime.store.snapshot() == algebra.snapshot(trace), (
            f"{name}: store diverged from trace re-reduction after "
            f"{update}{params}"
        )
        accepted += result.accepted and bool(result.delta)
    assert accepted > 0, f"{name}: the random walk never changed state"
    return runtime


def test_all_applications_are_servable():
    assert APPLICATIONS == ["bank", "courses", "library", "projects"]


@pytest.mark.parametrize("name", APPLICATIONS)
def test_store_matches_trace_re_reduction(name):
    _differential_run(name, steps=40, seed=1984)


@pytest.mark.slow
@pytest.mark.parametrize("name", APPLICATIONS)
def test_store_matches_trace_re_reduction_long(name):
    _differential_run(name, steps=300, seed=8419)


@pytest.mark.slow
def test_load_with_journal_compaction_and_recovery(tmp_path, bank_app):
    """The load test: a long journaled random walk on the bank, with
    periodic compaction, then recovery to the identical state."""
    runtime = SpecRuntime(
        bank_app.framework,
        bank_app.descriptions,
        data_dir=str(tmp_path),
        fsync=False,
        compact_every=500,
    )
    algebra = TraceAlgebra(bank_app.framework.algebraic)
    instances = list(algebra.update_instances())
    rng = random.Random(1337)
    for _ in range(5000):
        update, params = rng.choice(instances)
        runtime.execute(update, params)
    runtime.flush()  # crash without close()
    assert runtime.journal.compactions >= 1
    assert runtime.guard.check_now(runtime.store.getter) == []

    recovered = SpecRuntime(
        bank_app.framework,
        bank_app.descriptions,
        data_dir=str(tmp_path),
        fsync=False,
    )
    assert recovered.seq == runtime.seq
    assert recovered.store.snapshot() == runtime.store.snapshot()
    assert recovered.recovery_warnings == []

"""Ground-closure compilation: read sets, folding, rejection."""

from __future__ import annotations

import pytest

from repro.algebraic.description import STATE_VAR
from repro.applications.bank import bank_signature
from repro.logic import formulas as fm
from repro.logic.terms import App, Var
from repro.runtime.compiler import (
    UnsupportedTermError,
    compile_ground_term,
    compile_ground_formula,
)


@pytest.fixture(scope="module")
def signature():
    return bank_signature()


def _balance(signature, account_term):
    return signature.apply_query("balance", account_term, STATE_VAR)


def test_query_term_reads_its_cell(signature):
    money = signature.logic.sort("money")
    account = signature.logic.sort("account")
    term = _balance(signature, signature.value(account, "a1"))
    closure, reads = compile_ground_term(term, {}, signature)
    assert reads == frozenset({("balance", ("a1",))})
    assert closure({("balance", ("a1",)): "m2"}.__getitem__) == "m2"
    assert money  # the sort resolves (sanity for the fixture)


def test_variable_resolved_through_env(signature):
    account = signature.logic.sort("account")
    a = Var("a", account)
    term = _balance(signature, a)
    closure, reads = compile_ground_term(term, {a: "a2"}, signature)
    assert reads == frozenset({("balance", ("a2",))})
    assert closure({("balance", ("a2",)): "m0"}.__getitem__) == "m0"


def test_unbound_variable_rejected(signature):
    account = signature.logic.sort("account")
    term = _balance(signature, Var("a", account))
    with pytest.raises(UnsupportedTermError):
        compile_ground_term(term, {}, signature)


def test_interpreted_function_folds_when_read_free(signature):
    money = signature.logic.sort("money")
    term = App(
        signature.logic.function("inc"),
        (signature.value(money, "m1"),),
    )
    closure, reads = compile_ground_term(term, {}, signature)
    assert reads == frozenset()
    assert closure(None) == "m2"  # folded: never touches the getter


def test_interpreted_function_over_query(signature):
    account = signature.logic.sort("account")
    term = App(
        signature.logic.function("inc"),
        (_balance(signature, signature.value(account, "a1")),),
    )
    closure, reads = compile_ground_term(term, {}, signature)
    assert reads == frozenset({("balance", ("a1",))})
    assert closure({("balance", ("a1",)): "m0"}.__getitem__) == "m1"


def test_query_on_non_variable_state_rejected(signature):
    account = signature.logic.sort("account")
    term = signature.apply_query(
        "balance",
        signature.value(account, "a1"),
        signature.initial_term(),
    )
    with pytest.raises(UnsupportedTermError):
        compile_ground_term(term, {}, signature)


def _equals_hook(signature):
    """An L2 equality hook mirroring the store's."""

    def hook(equality: fm.Equals, env):
        lhs, lreads = compile_ground_term(equality.lhs, env, signature)
        rhs, rreads = compile_ground_term(equality.rhs, env, signature)
        return (lambda get: lhs(get) == rhs(get)), lreads | rreads

    return hook


def test_formula_constant_connectives_fold(signature):
    closure, reads = compile_ground_formula(
        fm.And(fm.TrueF(), fm.FalseF()), {}, lambda sort: []
    )
    assert reads == frozenset()
    assert closure(None) is False


def test_quantifier_unrolls_over_domain(signature):
    account = signature.logic.sort("account")
    a = Var("a", account)
    body = fm.Equals(
        signature.apply_query("open", a, STATE_VAR), signature.true()
    )
    closure, reads = compile_ground_formula(
        fm.Forall(a, body),
        {},
        lambda sort: ["a1", "a2"],
        equals_hook=_equals_hook(signature),
    )
    assert reads == frozenset(
        {("open", ("a1",)), ("open", ("a2",))}
    )
    cells = {("open", ("a1",)): True, ("open", ("a2",)): True}
    assert closure(cells.__getitem__) is True
    cells[("open", ("a2",))] = False
    assert closure(cells.__getitem__) is False


def test_exists_prunes_decided_branches(signature):
    account = signature.logic.sort("account")
    a = Var("a", account)
    # body is read-free and True for every branch: the disjunction
    # folds to the constant True without touching the getter.
    body = fm.TrueF()
    closure, reads = compile_ground_formula(
        fm.Exists(a, body), {}, lambda sort: ["a1", "a2"]
    )
    assert reads == frozenset()
    assert closure(None) is True


def test_information_level_equality_folds(signature):
    money = signature.logic.sort("money")
    m = Var("m", money)
    closure, reads = compile_ground_formula(
        fm.Equals(m, m), {m: "m0"}, lambda sort: []
    )
    assert reads == frozenset()
    assert closure(None) is True


def test_atom_without_hook_rejected(signature):
    from repro.logic.signature import PredicateSymbol
    from repro.logic.sorts import Sort

    pred = PredicateSymbol("p", (Sort("account"),))
    atom = fm.Atom(pred, (Var("a", Sort("account")),))
    with pytest.raises(UnsupportedTermError):
        compile_ground_formula(atom, {}, lambda sort: [])

"""Write-ahead journal: durability, compaction, crash recovery."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import JournalError
from repro.runtime.service import SpecRuntime


def _runtime(bank_app, directory, **kwargs):
    kwargs.setdefault("fsync", False)
    return SpecRuntime(
        bank_app.framework,
        bank_app.descriptions,
        data_dir=str(directory),
        **kwargs,
    )


def _journal_lines(directory) -> list[str]:
    path = os.path.join(str(directory), "journal.jsonl")
    if not os.path.exists(path):
        return []
    with open(path, encoding="utf-8") as handle:
        return [line for line in handle if line.strip()]


def _drive(runtime) -> None:
    runtime.execute("open_account", ("a1",))
    runtime.execute("deposit", ("a1",))
    runtime.execute("open_account", ("a2",))
    runtime.execute("deposit", ("a1",))
    runtime.execute("withdraw", ("a1",))


def test_recovery_after_crash(bank_app, tmp_path):
    first = _runtime(bank_app, tmp_path)
    _drive(first)
    first.flush()  # simulate a crash: flushed but never close()d
    expected = first.store.snapshot()

    second = _runtime(bank_app, tmp_path)
    assert second.seq == first.seq == 5
    assert second.store.snapshot() == expected
    assert second.recovery_warnings == []


def test_rejections_are_never_journaled(bank_app, tmp_path):
    runtime = _runtime(bank_app, tmp_path)
    _drive(runtime)
    runtime.flush()
    lines = _journal_lines(tmp_path)
    assert len(lines) == runtime.accepted_count == 5

    runtime.execute("deposit", ("a2",))  # a2 is open: accepted
    runtime.execute("withdraw", ("a2",))
    runtime.execute("withdraw", ("a2",))  # balance m0: rejected
    runtime.flush()
    assert runtime.rejected_count == 1
    assert len(_journal_lines(tmp_path)) == runtime.accepted_count
    runtime.close()


def test_truncated_tail_is_skipped_with_warning(bank_app, tmp_path):
    runtime = _runtime(bank_app, tmp_path)
    _drive(runtime)
    runtime.close()
    expected = runtime.store.snapshot()
    with open(tmp_path / "journal.jsonl", "a", encoding="utf-8") as f:
        f.write('{"seq": 6, "update": "deposit", "par')  # torn write

    recovered = _runtime(bank_app, tmp_path)
    assert recovered.seq == 5
    assert recovered.store.snapshot() == expected
    assert any(
        "truncated or malformed" in w
        for w in recovered.recovery_warnings
    )


def test_corrupt_crc_drops_entry_and_tail(bank_app, tmp_path):
    runtime = _runtime(bank_app, tmp_path)
    _drive(runtime)
    runtime.close()
    lines = _journal_lines(tmp_path)
    entry = json.loads(lines[2])
    entry["update"] = "withdraw"  # flip the payload, keep the old crc
    lines[2] = json.dumps(entry) + "\n"
    (tmp_path / "journal.jsonl").write_text("".join(lines))

    recovered = _runtime(bank_app, tmp_path)
    # entries 1-2 survive; the corrupt third and everything after drop.
    assert recovered.seq == 2
    assert recovered.query("balance", ("a1",)) == "m1"
    assert recovered.query("open", ("a2",)) is False
    assert any("checksum" in w for w in recovered.recovery_warnings)


def test_non_monotone_seq_drops_tail(bank_app, tmp_path):
    runtime = _runtime(bank_app, tmp_path)
    _drive(runtime)
    runtime.close()
    lines = _journal_lines(tmp_path)
    del lines[2]  # a gap: seq jumps 2 -> 4
    (tmp_path / "journal.jsonl").write_text("".join(lines))

    recovered = _runtime(bank_app, tmp_path)
    assert recovered.seq == 2
    assert any(
        "expected" in w for w in recovered.recovery_warnings
    )


def test_compaction_truncates_journal_and_preserves_state(
    bank_app, tmp_path
):
    runtime = _runtime(bank_app, tmp_path)
    _drive(runtime)
    runtime.compact()
    runtime.close()
    assert _journal_lines(tmp_path) == []
    assert (tmp_path / "snapshot.json").exists()

    recovered = _runtime(bank_app, tmp_path)
    assert recovered.seq == 5
    assert recovered.store.snapshot() == runtime.store.snapshot()
    assert recovered.recovery_warnings == []


def test_replay_after_compaction_is_byte_identical(bank_app, tmp_path):
    runtime = _runtime(bank_app, tmp_path)
    _drive(runtime)
    runtime.compact()
    runtime.close()
    first_bytes = (tmp_path / "snapshot.json").read_bytes()

    # Recover from the snapshot and immediately re-compact: the
    # canonical encoding must reproduce the file byte for byte.
    recovered = _runtime(bank_app, tmp_path)
    recovered.compact()
    recovered.close()
    assert (tmp_path / "snapshot.json").read_bytes() == first_bytes


def test_updates_after_compaction_replay_on_top_of_snapshot(
    bank_app, tmp_path
):
    runtime = _runtime(bank_app, tmp_path)
    _drive(runtime)
    runtime.compact()
    runtime.execute("deposit", ("a2",))
    runtime.close()
    expected = runtime.store.snapshot()

    recovered = _runtime(bank_app, tmp_path)
    assert recovered.seq == 6
    assert recovered.store.snapshot() == expected


def test_corrupt_snapshot_raises(bank_app, tmp_path):
    runtime = _runtime(bank_app, tmp_path)
    _drive(runtime)
    runtime.compact()
    runtime.close()
    payload = json.loads((tmp_path / "snapshot.json").read_text())
    payload["seq"] = 99  # tamper without refreshing the crc
    (tmp_path / "snapshot.json").write_text(json.dumps(payload))
    with pytest.raises(JournalError):
        _runtime(bank_app, tmp_path)


def test_auto_compaction_every_n_updates(bank_app, tmp_path):
    runtime = _runtime(bank_app, tmp_path, compact_every=3)
    _drive(runtime)  # 5 accepted updates -> one auto-compaction
    runtime.close()
    assert runtime.journal.compactions == 1
    assert len(_journal_lines(tmp_path)) == 2

    recovered = _runtime(bank_app, tmp_path)
    assert recovered.seq == 5
    assert recovered.store.snapshot() == runtime.store.snapshot()


def test_fsync_batching_counters(bank_app, tmp_path):
    runtime = SpecRuntime(
        bank_app.framework,
        bank_app.descriptions,
        data_dir=str(tmp_path),
        fsync_batch=2,
        fsync=True,
    )
    _drive(runtime)  # 5 appends at batch 2 -> 2 batched syncs
    assert runtime.journal.appends == 5
    assert runtime.journal.syncs == 2
    runtime.close()  # close flushes the straggler
    assert runtime.journal.syncs == 3

"""Tests for the project staffing application."""

import pytest

from repro.algebraic.algebra import TraceAlgebra
from repro.applications.projects import (
    projects_algebraic,
    projects_framework,
)


@pytest.fixture(scope="module")
def algebra():
    return TraceAlgebra(projects_algebraic())


def staffed(algebra, *steps):
    t = algebra.initial_trace()
    for name, *params in steps:
        t = algebra.apply(name, *params, trace=t)
    return t


class TestCapacity:
    def test_third_assignment_blocked(self, algebra):
        t = staffed(
            algebra,
            ("open_project", "p1"),
            ("open_project", "p2"),
            ("open_project", "p3"),
            ("assign", "e1", "p1"),
            ("assign", "e1", "p2"),
            ("assign", "e1", "p3"),
        )
        assert algebra.query("assigned", "e1", "p3", trace=t) is False
        assert algebra.query("assigned", "e1", "p1", trace=t) is True
        assert algebra.query("assigned", "e1", "p2", trace=t) is True

    def test_reassign_frees_capacity(self, algebra):
        t = staffed(
            algebra,
            ("open_project", "p1"),
            ("open_project", "p2"),
            ("open_project", "p3"),
            ("assign", "e1", "p1"),
            ("assign", "e1", "p2"),
            ("reassign", "e1", "p1", "p3"),
        )
        assert algebra.query("assigned", "e1", "p1", trace=t) is False
        assert algebra.query("assigned", "e1", "p3", trace=t) is True

    def test_repeat_assignment_is_noop_not_blocked(self, algebra):
        t = staffed(
            algebra,
            ("open_project", "p1"),
            ("assign", "e1", "p1"),
            ("assign", "e1", "p1"),
        )
        assert algebra.query("assigned", "e1", "p1", trace=t) is True


class TestDissolve:
    def test_dissolve_blocked_while_staffed(self, algebra):
        t = staffed(
            algebra,
            ("open_project", "p1"),
            ("assign", "e1", "p1"),
            ("dissolve", "p1"),
        )
        assert algebra.query("active", "p1", trace=t) is True

    def test_dissolve_after_reassign(self, algebra):
        t = staffed(
            algebra,
            ("open_project", "p1"),
            ("open_project", "p2"),
            ("assign", "e1", "p1"),
            ("reassign", "e1", "p1", "p2"),
            ("dissolve", "p1"),
        )
        assert algebra.query("active", "p1", trace=t) is False


class TestStateSpace:
    @pytest.mark.slow
    def test_reachable_count_matches_hand_count(self, algebra):
        # Sum over active subsets A of (assignments per employee)^2
        # where each employee picks <= 2 projects from A:
        # |A|=0: 1, |A|=1: 2^2 * 3, |A|=2: 4^2 * 3, |A|=3: 7^2.
        assert len(algebra.explore()) == 1 + 12 + 48 + 49


class TestFullVerification:
    @pytest.mark.slow
    def test_framework_verifies_small(self):
        # 2 employees x 2 projects to keep the integration test fast;
        # the default 3-project domain is exercised above.
        report = projects_framework(employees=2, projects=2).verify()
        assert report.ok

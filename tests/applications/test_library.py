"""Tests for the library loans application."""

import pytest

from repro.algebraic.algebra import TraceAlgebra
from repro.applications.library import (
    library_algebraic,
    library_carriers,
    library_framework,
    library_information,
    library_schema_source,
)
from repro.rpr.interpreter import Database
from repro.rpr.parser import parse_schema


@pytest.fixture(scope="module")
def algebra():
    return TraceAlgebra(library_algebraic())


class TestAlgebraicBehaviour:
    def test_checkout_needs_catalog(self, algebra):
        t = algebra.apply(
            "checkout", "m1", "b1", trace=algebra.initial_trace()
        )
        assert algebra.query("loaned", "m1", "b1", trace=t) is False

    def test_checkout_succeeds_when_free(self, algebra):
        t = algebra.initial_trace()
        t = algebra.apply("acquire", "b1", trace=t)
        t = algebra.apply("checkout", "m1", "b1", trace=t)
        assert algebra.query("loaned", "m1", "b1", trace=t) is True

    def test_second_member_blocked(self, algebra):
        t = algebra.initial_trace()
        t = algebra.apply("acquire", "b1", trace=t)
        t = algebra.apply("checkout", "m1", "b1", trace=t)
        t = algebra.apply("checkout", "m2", "b1", trace=t)
        assert algebra.query("loaned", "m2", "b1", trace=t) is False
        assert algebra.query("loaned", "m1", "b1", trace=t) is True

    def test_retire_blocked_while_loaned(self, algebra):
        t = algebra.initial_trace()
        t = algebra.apply("acquire", "b1", trace=t)
        t = algebra.apply("checkout", "m1", "b1", trace=t)
        t = algebra.apply("retire", "b1", trace=t)
        assert algebra.query("catalog", "b1", trace=t) is True

    def test_return_then_retire(self, algebra):
        t = algebra.initial_trace()
        t = algebra.apply("acquire", "b1", trace=t)
        t = algebra.apply("checkout", "m1", "b1", trace=t)
        t = algebra.apply("return_book", "m1", "b1", trace=t)
        t = algebra.apply("retire", "b1", trace=t)
        assert algebra.query("catalog", "b1", trace=t) is False

    def test_reachable_state_count(self, algebra):
        # catalog {} -> 1; {b} -> 3 loans states each; {b1,b2} -> 9.
        assert len(algebra.explore()) == 16


class TestSchema:
    def test_session_mirrors_algebra(self):
        schema = parse_schema(library_schema_source())
        db = Database(
            schema, {"Members": ["m1", "m2"], "Books": ["b1", "b2"]}
        )
        db.call("initiate")
        db.call("acquire", "b1")
        db.call("checkout", "m1", "b1")
        db.call("checkout", "m2", "b1")  # blocked
        assert db.rows("LOANED") == {("m1", "b1")}
        db.call("retire", "b1")  # blocked
        assert db.holds_fact("CATALOG", "b1")


class TestInformationLevel:
    def test_unique_holder_constraint(self):
        info = library_information()
        from repro.logic.structures import Structure

        double = Structure(
            info.signature,
            library_carriers(),
            relations={
                "catalog": {("b1",)},
                "loaned": {("m1", "b1"), ("m2", "b1")},
            },
        )
        from repro.information.consistency import is_consistent_state

        assert not is_consistent_state(info, double)


class TestFullVerification:
    def test_framework_verifies(self):
        report = library_framework().verify()
        assert report.ok
        assert report.first_second.inclusion.valid_count == 16

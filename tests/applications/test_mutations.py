"""Mutation testing of the methodology itself.

A verification framework is only as good as the faults it cannot miss.
Here every one of the registrar's sixteen Q-equations is mutated by
negating its right-hand side, and the 2nd->3rd refinement check must
refute *every* mutant against the (correct) RPR schema — i.e. the
check's equation coverage has no blind spots at the granularity of
whole equations.
"""

import pytest

from repro.algebraic.spec import AlgebraicSpec
from repro.algebraic.equations import ConditionalEquation
from repro.applications.courses import (
    courses_algebraic,
    courses_schema_source,
)
from repro.refinement.second_third import check_refinement
from repro.rpr.parser import parse_schema


@pytest.fixture(scope="module")
def schema():
    return parse_schema(courses_schema_source())


def _mutants():
    spec = courses_algebraic()
    signature = spec.signature
    for index, victim in enumerate(spec.equations):
        mutated = ConditionalEquation(
            victim.lhs,
            signature.not_(victim.rhs),
            victim.condition,
            f"{victim.label}-negated",
        )
        equations = list(spec.equations)
        equations[index] = mutated
        yield victim.label, AlgebraicSpec(
            signature, tuple(equations), name=f"mutant {victim.label}"
        )


MUTANTS = list(_mutants())


@pytest.mark.parametrize(
    "label,mutant", MUTANTS, ids=[label for label, _ in MUTANTS]
)
def test_every_rhs_negation_is_refuted(label, mutant, schema):
    report = check_refinement(mutant, schema)
    assert not report.ok, (
        f"mutant {label} survived the refinement check"
    )
    # The falsified equation is the mutated one (or an equation whose
    # evaluation it feeds; at minimum something failed).
    assert report.failures


def test_unmutated_baseline_passes(schema):
    report = check_refinement(courses_algebraic(), schema)
    assert report.ok

"""Tests for the bank accounts application: non-Boolean queries,
interpreted arithmetic, and the explicit I and K maps."""

import pytest

from repro.algebraic.algebra import TraceAlgebra
from repro.applications.bank import (
    bank_algebraic,
    bank_framework,
    bank_information,
    bank_interpretation,
    bank_schema_source,
)
from repro.rpr.interpreter import Database
from repro.rpr.parser import parse_schema


@pytest.fixture(scope="module")
def algebra():
    return TraceAlgebra(bank_algebraic())


def session(algebra, *steps):
    t = algebra.initial_trace()
    for name, *params in steps:
        t = algebra.apply(name, *params, trace=t)
    return t


class TestBalances:
    def test_initial_balance_zero(self, algebra):
        assert (
            algebra.query("balance", "a1", trace=algebra.initial_trace())
            == "m0"
        )

    def test_deposit_increments(self, algebra):
        t = session(
            algebra, ("open_account", "a1"), ("deposit", "a1"),
            ("deposit", "a1"),
        )
        assert algebra.query("balance", "a1", trace=t) == "m2"

    def test_withdraw_decrements(self, algebra):
        t = session(
            algebra,
            ("open_account", "a1"),
            ("deposit", "a1"),
            ("withdraw", "a1"),
        )
        assert algebra.query("balance", "a1", trace=t) == "m0"

    def test_deposit_needs_open_account(self, algebra):
        t = session(algebra, ("deposit", "a1"))
        assert algebra.query("balance", "a1", trace=t) == "m0"
        assert algebra.query("open", "a1", trace=t) is False

    def test_overdraft_blocked(self, algebra):
        t = session(algebra, ("open_account", "a1"), ("withdraw", "a1"))
        assert algebra.query("balance", "a1", trace=t) == "m0"

    def test_overflow_blocked_at_top(self, algebra):
        t = session(
            algebra,
            ("open_account", "a1"),
            *[("deposit", "a1")] * 5,
        )
        assert algebra.query("balance", "a1", trace=t) == "m3"

    def test_close_needs_zero_balance(self, algebra):
        t = session(
            algebra,
            ("open_account", "a1"),
            ("deposit", "a1"),
            ("close_account", "a1"),
        )
        assert algebra.query("open", "a1", trace=t) is True
        t = algebra.apply("withdraw", "a1", trace=t)
        t = algebra.apply("close_account", "a1", trace=t)
        assert algebra.query("open", "a1", trace=t) is False


class TestStateSpace:
    def test_reachable_count(self, algebra):
        # Per account: closed(m0) or open x {m0..m3} = 5 states.
        assert len(algebra.explore()) == 25


class TestSchemaExecution:
    def test_successor_table_arithmetic(self):
        schema = parse_schema(bank_schema_source())
        db = Database(
            schema,
            {"Accounts": ["a1", "a2"], "Money": ["m0", "m1", "m2", "m3"]},
        )
        db.call("initiate")
        assert db.rows("NEXT") == {
            ("m0", "m1"),
            ("m1", "m2"),
            ("m2", "m3"),
        }
        db.call("open_account", "a1")
        db.call("deposit", "a1")
        db.call("deposit", "a1")
        assert db.holds_fact("BALANCE", "a1", "m2")
        assert not db.holds_fact("BALANCE", "a1", "m0")
        # Balance stays functional: exactly one row per account.
        rows_a1 = [r for r in db.rows("BALANCE") if r[0] == "a1"]
        assert len(rows_a1) == 1

    def test_withdraw_via_inverse_successor(self):
        schema = parse_schema(bank_schema_source())
        db = Database(
            schema,
            {"Accounts": ["a1"], "Money": ["m0", "m1", "m2", "m3"]},
        )
        db.call("initiate")
        db.call("open_account", "a1")
        db.call("deposit", "a1")
        db.call("withdraw", "a1")
        assert db.holds_fact("BALANCE", "a1", "m0")


class TestInformationLevel:
    def test_closed_account_with_money_is_inconsistent(self):
        info = bank_information()
        from repro.applications.bank import bank_carriers
        from repro.information.consistency import is_consistent_state
        from repro.logic.structures import Structure

        bad = Structure(
            info.signature,
            bank_carriers(),
            relations={
                "open": set(),
                "balance": {("a1", "m2"), ("a2", "m0")},
            },
        )
        assert not is_consistent_state(info, bad)

    def test_interpretation_realizes_balance_as_relation(self):
        spec = bank_algebraic()
        algebra = TraceAlgebra(spec)
        interpretation = bank_interpretation(spec.signature)
        t = session(algebra, ("open_account", "a1"), ("deposit", "a1"))
        assert interpretation.realize(algebra, "balance", ("a1", "m1"), t)
        assert not interpretation.realize(
            algebra, "balance", ("a1", "m0"), t
        )


class TestFullVerification:
    def test_framework_verifies(self):
        report = bank_framework().verify()
        assert report.ok
        assert report.grammar_ok is None  # const decls: grammar skipped
        assert report.first_second.inclusion.valid_count == 25

"""Tests for the time-sort encoding, including the property-based
equivalence theorem: the Kripke semantics and the flattened
first-order semantics agree on every formula, universe and state."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SpecificationError
from repro.logic import formulas as fm
from repro.logic.parser import parse_formula
from repro.logic.semantics import satisfies
from repro.logic.signature import Signature
from repro.logic.sorts import Sort
from repro.logic.structures import Structure
from repro.logic.terms import Var
from repro.temporal.formulas import Necessarily, Possibly
from repro.temporal.kripke import KripkeUniverse
from repro.temporal.semantics import satisfies_temporal
from repro.temporal.timesort import (
    TIME,
    structure_of_universe,
    timestamp_formula,
    timestamped_signature,
)

COURSE = Sort("course")


def _signature():
    sig = Signature(sorts=[COURSE])
    sig.add_predicate("offered", [COURSE], db=True)
    return sig


def _states(signature):
    carriers = {COURSE: ["c1", "c2"]}
    extensions = [set(), {("c1",)}, {("c2",)}, {("c1",), ("c2",)}]
    return [
        Structure(signature, carriers, relations={"offered": ext})
        for ext in extensions
    ]


class TestSignatureExtension:
    def test_adds_time_and_accessible(self):
        extended = timestamped_signature(_signature())
        assert extended.has_sort("time")
        assert extended.predicate("accessible").arg_sorts == (TIME, TIME)

    def test_timestamped_twin(self):
        extended = timestamped_signature(_signature())
        twin = extended.predicate("offered_at")
        assert twin.arg_sorts == (COURSE, TIME)
        assert twin.db


class TestTranslationShape:
    def test_atom_gets_instant(self):
        signature = _signature()
        formula = parse_formula(
            "exists c:course. offered(c)", signature
        )
        translated = timestamp_formula(formula, signature)
        atoms = [
            sub
            for sub in translated.subformulas()
            if isinstance(sub, fm.Atom)
        ]
        assert atoms[0].predicate.name == "offered_at"
        assert atoms[0].args[-1] == Var("now", TIME)

    def test_diamond_becomes_exists_accessible(self):
        signature = _signature()
        formula = Possibly(
            parse_formula("exists c:course. offered(c)", signature)
        )
        translated = timestamp_formula(formula, signature)
        assert isinstance(translated, fm.Exists)
        assert translated.var.sort == TIME

    def test_box_becomes_forall(self):
        signature = _signature()
        formula = Necessarily(fm.TRUE)
        translated = timestamp_formula(formula, signature)
        assert isinstance(translated, fm.Forall)

    def test_time_quantifier_in_source_rejected(self):
        signature = _signature()
        bad = fm.Forall(Var("t", TIME), fm.TRUE)
        with pytest.raises(SpecificationError):
            timestamp_formula(bad, signature)


class TestFlattening:
    def test_accessible_mirrors_r(self):
        signature = _signature()
        states = _states(signature)
        universe = KripkeUniverse(states, [(states[0], states[1])])
        structure, instant_of = structure_of_universe(
            universe, signature
        )
        assert structure.relation("accessible") == {(0, 1)}
        assert instant_of[states[1]] == 1

    def test_rows_tagged_with_instant(self):
        signature = _signature()
        states = _states(signature)
        universe = KripkeUniverse(states[:2], [])
        structure, _ = structure_of_universe(universe, signature)
        assert structure.relation("offered_at") == {("c1", 1)}


def _formula_strategy(signature):
    offered = signature.predicate("offered")
    c = Var("c", COURSE)
    atom = fm.Atom(offered, (c,))
    base = st.sampled_from(
        [fm.Exists(c, atom), fm.Forall(c, atom), fm.TRUE]
    )

    def extend(children):
        return st.one_of(
            st.builds(fm.Not, children),
            st.builds(fm.And, children, children),
            st.builds(fm.Implies, children, children),
            st.builds(Possibly, children),
            st.builds(Necessarily, children),
        )

    return st.recursive(base, extend, max_leaves=6)


class TestEquivalenceTheorem:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_kripke_and_timesort_agree(self, data):
        signature = _signature()
        states = _states(signature)
        edge_bits = data.draw(st.integers(0, 2 ** 16 - 1))
        edges = [
            (states[i], states[j])
            for i in range(4)
            for j in range(4)
            if edge_bits >> (i * 4 + j) & 1
        ]
        universe = KripkeUniverse(states, edges)
        formula = data.draw(_formula_strategy(signature))
        start = data.draw(st.integers(0, 3))

        translated = timestamp_formula(formula, signature)
        structure, instant_of = structure_of_universe(
            universe, signature
        )
        kripke = satisfies_temporal(universe, states[start], formula)
        flattened = satisfies(
            structure, translated, {Var("now", TIME): start}
        )
        assert kripke == flattened

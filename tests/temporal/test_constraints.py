"""Tests for the static/transition classification (paper: axioms with
modalities are transition constraints, the rest static)."""

from repro.logic.parser import parse_formula
from repro.logic.signature import Signature
from repro.logic.sorts import Sort
from repro.temporal.constraints import (
    STATIC,
    TRANSITION,
    classify,
    split_axioms,
)

COURSE = Sort("course")


def _signature():
    sig = Signature(sorts=[COURSE])
    sig.add_predicate("offered", [COURSE], db=True)
    return sig


class TestClassification:
    def test_static(self):
        sig = _signature()
        axiom = parse_formula("forall c:course. offered(c)", sig)
        assert classify(axiom) is STATIC

    def test_transition(self):
        sig = _signature()
        axiom = parse_formula(
            "forall c:course. [](offered(c) -> []offered(c))",
            sig,
            allow_modal=True,
        )
        assert classify(axiom) is TRANSITION

    def test_split_preserves_order(self):
        sig = _signature()
        static1 = parse_formula("forall c:course. offered(c)", sig)
        static2 = parse_formula("exists c:course. offered(c)", sig)
        transition = parse_formula(
            "<>exists c:course. offered(c)", sig, allow_modal=True
        )
        statics, transitions = split_axioms([static1, transition, static2])
        assert statics == (static1, static2)
        assert transitions == (transition,)

    def test_kind_str(self):
        assert str(STATIC) == "static"
        assert str(TRANSITION) == "transition"

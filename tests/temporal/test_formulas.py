"""Tests for the temporal extension's formula nodes, including the
duality property []P == ~<>~P."""

import pytest
from hypothesis import given, strategies as st

from repro.logic import formulas as fm
from repro.logic.signature import PredicateSymbol, Signature
from repro.logic.sorts import Sort
from repro.logic.structures import Structure
from repro.logic.terms import Var
from repro.temporal.formulas import (
    Necessarily,
    Possibly,
    is_modal,
    modal_depth,
    necessity_as_dual,
)
from repro.temporal.kripke import KripkeUniverse
from repro.temporal.semantics import satisfies_temporal

COURSE = Sort("course")
OFFERED = PredicateSymbol("offered", (COURSE,), db=True)
C = Var("c", COURSE)
ATOM = fm.Atom(OFFERED, (C,))
CLOSED_ATOM = fm.Exists(C, ATOM)


class TestNodes:
    def test_free_vars_pass_through(self):
        assert Possibly(ATOM).free_vars() == frozenset({C})
        assert Necessarily(ATOM).free_vars() == frozenset({C})

    def test_str(self):
        assert str(Possibly(CLOSED_ATOM)) == "<>(exists c:course. offered(c))"
        assert str(Necessarily(fm.TRUE)) == "[]true"

    def test_subformulas(self):
        kinds = [
            type(s).__name__ for s in Possibly(fm.Not(ATOM)).subformulas()
        ]
        assert kinds == ["Possibly", "Not", "Atom"]


class TestClassification:
    def test_is_modal_detects_nested_operator(self):
        formula = fm.Forall(C, fm.Implies(ATOM, Possibly(ATOM)))
        assert is_modal(formula)

    def test_non_modal(self):
        assert not is_modal(fm.Forall(C, ATOM))

    def test_modal_depth(self):
        assert modal_depth(ATOM) == 0
        assert modal_depth(Possibly(ATOM)) == 1
        assert modal_depth(Necessarily(Possibly(ATOM))) == 2
        assert modal_depth(fm.And(Possibly(ATOM), ATOM)) == 1


class TestDuality:
    def test_rewrites_box(self):
        result = necessity_as_dual(Necessarily(CLOSED_ATOM))
        assert result == fm.Not(Possibly(fm.Not(CLOSED_ATOM)))

    def test_recurses_under_connectives(self):
        formula = fm.And(Necessarily(fm.TRUE), Possibly(fm.FALSE))
        result = necessity_as_dual(formula)
        assert not any(
            isinstance(s, Necessarily) for s in result.subformulas()
        )

    @given(st.integers(0, 255), st.sampled_from([0, 1, 2, 3]))
    def test_duality_is_semantic_identity(self, relation_bits, start):
        # Over random 2-course universes with random accessibility,
        # []P and ~<>~P agree at every state.
        signature = Signature(sorts=[COURSE])
        signature.add_predicate_symbol(OFFERED)
        carriers = {COURSE: ["c1", "c2"]}
        states = [
            Structure(signature, carriers, relations={"offered": rel})
            for rel in [
                set(),
                {("c1",)},
                {("c2",)},
                {("c1",), ("c2",)},
            ]
        ]
        edges = [
            (states[i], states[j])
            for i in range(4)
            for j in range(4)
            if relation_bits >> (i * 4 + j) & 1
        ]
        universe = KripkeUniverse(states, edges)
        formula = Necessarily(CLOSED_ATOM)
        dual = necessity_as_dual(formula)
        assert satisfies_temporal(
            universe, states[start], formula
        ) == satisfies_temporal(universe, states[start], dual)

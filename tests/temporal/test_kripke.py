"""Tests for Kripke universes."""

import pytest

from repro.errors import SpecificationError
from repro.logic.signature import Signature
from repro.logic.sorts import Sort
from repro.logic.structures import Structure
from repro.temporal.kripke import (
    KripkeUniverse,
    linear_history,
    transition_pair,
)

COURSE = Sort("course")


def make_states(count=3):
    signature = Signature(sorts=[COURSE])
    signature.add_predicate("offered", [COURSE], db=True)
    carriers = {COURSE: ["c1", "c2", "c3"]}
    return [
        Structure(
            signature,
            carriers,
            relations={"offered": {(f"c{j}",) for j in range(1, i + 1)}},
        )
        for i in range(count)
    ]


class TestConstruction:
    def test_needs_a_state(self):
        with pytest.raises(SpecificationError):
            KripkeUniverse([])

    def test_deduplicates_states(self):
        a, b, _ = make_states()
        universe = KripkeUniverse([a, b, a])
        assert len(universe) == 2

    def test_common_domain_enforced(self):
        signature = Signature(sorts=[COURSE])
        signature.add_predicate("offered", [COURSE], db=True)
        a = Structure(signature, {COURSE: ["c1"]})
        b = Structure(signature, {COURSE: ["c1", "c2"]})
        with pytest.raises(SpecificationError):
            KripkeUniverse([a, b])

    def test_accessibility_must_stay_inside(self):
        a, b, c = make_states()
        with pytest.raises(SpecificationError):
            KripkeUniverse([a, b], [(a, c)])


class TestRelations:
    def test_successors(self):
        a, b, c = make_states()
        universe = KripkeUniverse([a, b, c], [(a, b), (a, c)])
        assert set(universe.successors(a)) == {b, c}
        assert list(universe.successors(c)) == []

    def test_accessible(self):
        a, b, _ = make_states()
        universe = KripkeUniverse([a, b], [(a, b)])
        assert universe.accessible(a, b)
        assert not universe.accessible(b, a)

    def test_transitive_closure(self):
        a, b, c = make_states()
        universe = KripkeUniverse([a, b, c], [(a, b), (b, c)])
        closed = universe.transitive_closure()
        assert closed.accessible(a, c)
        assert not universe.accessible(a, c)

    def test_reflexive_closure(self):
        a, b, _ = make_states()
        universe = KripkeUniverse([a, b], [(a, b)]).reflexive_closure()
        assert universe.accessible(a, a)
        assert universe.accessible(b, b)


class TestBuilders:
    def test_linear_history_is_future_of(self):
        a, b, c = make_states()
        universe = linear_history([a, b, c])
        assert universe.accessible(a, c)
        assert universe.accessible(b, c)
        assert not universe.accessible(c, a)

    def test_transition_pair(self):
        a, b, _ = make_states()
        universe = transition_pair(a, b)
        assert len(universe) == 2
        assert universe.accessibility == frozenset({(a, b)})

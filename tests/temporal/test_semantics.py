"""Tests for modal satisfaction (the paper's Section 3.1 semantics)."""

import pytest

from repro.logic import formulas as fm
from repro.logic.parser import parse_formula
from repro.logic.signature import Signature
from repro.logic.sorts import Sort
from repro.logic.structures import Structure
from repro.temporal.formulas import Necessarily, Possibly
from repro.temporal.kripke import KripkeUniverse
from repro.temporal.semantics import (
    holds_at_every_state,
    satisfies_temporal,
)

COURSE = Sort("course")


@pytest.fixture()
def setting():
    signature = Signature(sorts=[COURSE])
    signature.add_predicate("offered", [COURSE], db=True)
    carriers = {COURSE: ["c1"]}
    empty = Structure(signature, carriers)
    full = Structure(
        signature, carriers, relations={"offered": {("c1",)}}
    )
    return signature, empty, full


class TestModalRules:
    def test_possibly_needs_a_witness_successor(self, setting):
        signature, empty, full = setting
        offered = parse_formula("exists c:course. offered(c)", signature)
        universe = KripkeUniverse([empty, full], [(empty, full)])
        assert satisfies_temporal(universe, empty, Possibly(offered))
        # full has no successors: <> is false there.
        assert not satisfies_temporal(universe, full, Possibly(offered))

    def test_necessarily_vacuous_without_successors(self, setting):
        signature, empty, full = setting
        offered = parse_formula("exists c:course. offered(c)", signature)
        universe = KripkeUniverse([empty, full], [(empty, full)])
        assert satisfies_temporal(universe, full, Necessarily(offered))

    def test_necessarily_all_successors(self, setting):
        signature, empty, full = setting
        offered = parse_formula("exists c:course. offered(c)", signature)
        universe = KripkeUniverse(
            [empty, full], [(empty, full), (empty, empty)]
        )
        assert not satisfies_temporal(
            universe, empty, Necessarily(offered)
        )

    def test_first_order_rules_at_current_state(self, setting):
        signature, empty, full = setting
        offered = parse_formula("exists c:course. offered(c)", signature)
        universe = KripkeUniverse([empty, full], [(empty, full)])
        assert not satisfies_temporal(universe, empty, offered)
        assert satisfies_temporal(universe, full, offered)

    def test_quantifier_scopes_over_modality(self, setting):
        # forall c. <>offered(c): the same valuation is carried into
        # the successor state (constant-domain semantics).
        signature, empty, full = setting
        formula = parse_formula(
            "forall c:course. <>offered(c)", signature, allow_modal=True
        )
        universe = KripkeUniverse([empty, full], [(empty, full)])
        assert satisfies_temporal(universe, empty, formula)

    def test_nested_modalities(self, setting):
        signature, empty, full = setting
        offered = parse_formula("exists c:course. offered(c)", signature)
        universe = KripkeUniverse(
            [empty, full], [(empty, empty), (empty, full)]
        )
        # <> <> offered: empty -> empty -> ... -> full
        assert satisfies_temporal(
            universe, empty, Possibly(Possibly(offered))
        )

    def test_connectives(self, setting):
        signature, empty, full = setting
        offered = parse_formula("exists c:course. offered(c)", signature)
        universe = KripkeUniverse([empty, full], [(empty, full)])
        assert satisfies_temporal(
            universe, empty, fm.Implies(offered, fm.FALSE)
        )
        assert satisfies_temporal(
            universe, empty, fm.Or(offered, Possibly(offered))
        )
        assert satisfies_temporal(
            universe, empty, fm.Iff(offered, fm.FALSE)
        )
        assert not satisfies_temporal(
            universe, empty, fm.And(offered, fm.TRUE)
        )


class TestHoldsEverywhere:
    def test_all_states_checked(self, setting):
        signature, empty, full = setting
        offered = parse_formula("exists c:course. offered(c)", signature)
        universe = KripkeUniverse([empty, full], [(empty, full)])
        assert not holds_at_every_state(universe, offered)
        assert holds_at_every_state(
            universe, fm.Or(offered, fm.Not(offered))
        )

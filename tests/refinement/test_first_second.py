"""Tests for the 1st->2nd refinement bundle (Section 4.4), with
failure-injected specifications for the negative paths."""

import pytest

from repro.algebraic.algebra import TraceAlgebra
from repro.algebraic.description import (
    Effect,
    StructuredDescription,
    initial_equations,
    synthesize_equations,
)
from repro.algebraic.spec import AlgebraicSpec
from repro.applications.courses import (
    courses_descriptions,
    courses_information,
    courses_information_carriers,
    courses_signature,
)
from repro.refinement.first_second import (
    check_refinement,
    check_static_consistency,
    check_transition_consistency,
)


@pytest.fixture(scope="module")
def info():
    return courses_information()


@pytest.fixture(scope="module")
def carriers():
    return courses_information_carriers()


def broken_cancel_spec() -> AlgebraicSpec:
    """The courses spec with cancel's precondition REMOVED: cancelling
    a taken course now succeeds, violating the static constraint."""
    signature = courses_signature()
    descriptions = courses_descriptions(signature)
    fixed = []
    for description in descriptions:
        if description.update == "cancel":
            description = StructuredDescription(
                update="cancel",
                params=description.params,
                precondition=None,  # the injected fault
                effects=description.effects,
                doc="BROKEN: cancel without checking enrollments",
            )
        fixed.append(description)
    equations = initial_equations(signature) + synthesize_equations(
        signature, fixed
    )
    return AlgebraicSpec(signature, tuple(equations), name="broken cancel")


def dropping_enroll_spec() -> AlgebraicSpec:
    """The courses spec with an extra 'drop' update that removes a
    student's only enrollment — violating the transition constraint
    while preserving the static one."""
    signature = courses_signature()
    student = signature.logic.sort("student")
    course = signature.logic.sort("course")
    from repro.logic.terms import Var

    s = Var("s", student)
    c = Var("c", course)
    signature.add_update("drop", [student, course])
    descriptions = courses_descriptions(signature) + [
        StructuredDescription(
            update="drop",
            params=(s, c),
            precondition=None,
            effects=(Effect("takes", (s, c), False),),
            doc="drop an enrollment unconditionally",
        )
    ]
    equations = initial_equations(signature) + synthesize_equations(
        signature, descriptions
    )
    return AlgebraicSpec(signature, tuple(equations), name="with drop")


class TestPositive:
    def test_full_bundle_on_paper_example(self, info, carriers):
        from repro.applications.courses import courses_algebraic

        report = check_refinement(
            info, carriers, TraceAlgebra(courses_algebraic())
        )
        assert report.ok
        assert report.correct
        assert report.completeness.ok
        assert report.static.ok
        assert report.inclusion.ok
        assert report.transitions.ok
        text = str(report)
        assert "(a)" in text and "(d)" in text


class TestStaticViolation:
    def test_broken_cancel_detected(self, info, carriers):
        from repro.refinement.interpretation import Interpretation

        algebra = TraceAlgebra(broken_cancel_spec())
        interpretation = Interpretation.homonym(info, algebra.signature)
        report = check_static_consistency(
            info, carriers, algebra, interpretation
        )
        assert not report.ok
        assert report.violations

    @pytest.mark.slow
    def test_broken_cancel_full_check(self, info, carriers):
        algebra = TraceAlgebra(broken_cancel_spec())
        report = check_refinement(info, carriers, algebra)
        assert not report.static.ok
        assert not report.correct
        assert report.static.violations
        # The witness trace must actually cancel a taken course.
        trace, axiom = report.static.violations[0]
        assert "cancel" in str(trace)


class TestTransitionViolation:
    def test_drop_update_breaks_transition_constraint(
        self, info, carriers
    ):
        algebra = TraceAlgebra(dropping_enroll_spec())
        report = check_refinement(info, carriers, algebra)
        # Static consistency still holds (dropping never creates an
        # orphan enrollment)...
        assert report.static.ok
        # ...but the never-drop-to-zero transition constraint fails.
        assert not report.transitions.ok
        assert not report.correct
        violated = {t.update for t, _ in report.transitions.violations}
        assert violated == {"drop"}


class TestTransitionConsistencyDirect:
    def test_paper_example_all_edges_pass(self, info, carriers):
        from repro.applications.courses import courses_algebraic

        algebra = TraceAlgebra(courses_algebraic())
        from repro.refinement.interpretation import Interpretation

        interpretation = Interpretation.homonym(info, algebra.signature)
        report = check_transition_consistency(
            info, carriers, algebra, interpretation
        )
        assert report.ok
        assert report.transitions_checked == 400

"""Tests for the V/G comparison (Sections 4.4b-c)."""

import pytest

from repro.refinement.interpretation import Interpretation
from repro.refinement.reachability import (
    compare_valid_reachable,
    enumerate_valid_structures,
    reachable_structures,
    synthesize_trace,
)


@pytest.fixture(scope="module")
def interpretation(courses_info, courses_spec):
    return Interpretation.homonym(courses_info, courses_spec.signature)


# module-scoped copies of the session fixtures for the fixture above
@pytest.fixture(scope="module")
def courses_info():
    from repro.applications.courses import courses_information

    return courses_information()


@pytest.fixture(scope="module")
def courses_spec():
    from repro.applications.courses import courses_algebraic

    return courses_algebraic()


@pytest.fixture(scope="module")
def courses_algebra(courses_spec):
    from repro.algebraic.algebra import TraceAlgebra

    return TraceAlgebra(courses_spec)


@pytest.fixture(scope="module")
def courses_carriers():
    from repro.applications.courses import courses_information_carriers

    return courses_information_carriers()


class TestValidEnumeration:
    def test_valid_count_matches_hand_count(
        self, courses_info, courses_carriers
    ):
        valid = list(
            enumerate_valid_structures(courses_info, courses_carriers)
        )
        # 1 + 4 + 4 + 16 over the four offered-sets.
        assert len(valid) == 25

    def test_all_valid_satisfy_static_constraint(
        self, courses_info, courses_carriers
    ):
        from repro.information.consistency import is_consistent_state

        for structure in enumerate_valid_structures(
            courses_info, courses_carriers
        ):
            assert is_consistent_state(courses_info, structure)


class TestReachableStructures:
    def test_reachable_count(
        self, courses_info, courses_carriers, courses_algebra, interpretation
    ):
        reachable = reachable_structures(
            courses_info, courses_carriers, courses_algebra, interpretation
        )
        assert len(reachable) == 25

    def test_witness_traces_realize_their_structure(
        self, courses_info, courses_carriers, courses_algebra, interpretation
    ):
        reachable = reachable_structures(
            courses_info, courses_carriers, courses_algebra, interpretation
        )
        for structure, trace in list(reachable.items())[:5]:
            again = interpretation.structure_of_trace(
                courses_info, courses_carriers, courses_algebra, trace
            )
            assert again == structure


class TestComparison:
    def test_paper_example_has_g_equal_v(
        self, courses_info, courses_carriers, courses_algebra, interpretation
    ):
        report = compare_valid_reachable(
            courses_info, courses_carriers, courses_algebra, interpretation
        )
        assert report.ok
        assert report.reachable_subset_valid
        assert report.valid_subset_reachable
        assert report.valid_count == report.reachable_count == 25
        assert "yes" in str(report)

    def test_synthesize_trace_for_every_valid_state(
        self, courses_info, courses_carriers, courses_algebra, interpretation
    ):
        graph = courses_algebra.explore()
        for target in enumerate_valid_structures(
            courses_info, courses_carriers
        ):
            trace = synthesize_trace(
                courses_info,
                courses_carriers,
                courses_algebra,
                interpretation,
                target,
                graph,
            )
            assert trace is not None
            realized = interpretation.structure_of_trace(
                courses_info, courses_carriers, courses_algebra, trace
            )
            assert realized == target

    def test_synthesize_trace_unreachable_returns_none(
        self, courses_info, courses_carriers, courses_algebra, interpretation
    ):
        from repro.logic.structures import Structure

        invalid = Structure(
            courses_info.signature,
            courses_carriers,
            relations={"takes": {("s1", "c1")}},
        )
        assert (
            synthesize_trace(
                courses_info,
                courses_carriers,
                courses_algebra,
                interpretation,
                invalid,
            )
            is None
        )

    def test_truncated_exploration_flagged(
        self, courses_info, courses_carriers, courses_algebra, interpretation
    ):
        graph = courses_algebra.explore(max_states=3)
        report = compare_valid_reachable(
            courses_info,
            courses_carriers,
            courses_algebra,
            interpretation,
            graph,
        )
        assert report.truncated
        assert not report.valid_subset_reachable
        assert report.unreachable_valid

"""Tests for interpretations I and the induced structure map M."""

import pytest

from repro.errors import RefinementError
from repro.logic.sorts import BOOLEAN, STATE, Sort
from repro.logic.terms import Var
from repro.refinement.interpretation import (
    Interpretation,
    PredicateInterpretation,
)


class TestPredicateInterpretation:
    def test_boolean_term_required(self, courses_spec):
        signature = courses_spec.signature
        sigma = Var("sigma", STATE)
        with pytest.raises(RefinementError):
            PredicateInterpretation((), sigma, sigma)

    def test_state_var_sort_checked(self, courses_spec):
        signature = courses_spec.signature
        course = signature.logic.sort("course")
        x = Var("x", course)
        term = signature.apply_query("offered", x, Var("sigma", STATE))
        with pytest.raises(RefinementError):
            PredicateInterpretation((x,), Var("sigma", course), term)

    def test_unexpected_free_vars_rejected(self, courses_spec):
        signature = courses_spec.signature
        course = signature.logic.sort("course")
        sigma = Var("sigma", STATE)
        stray = Var("stray", course)
        term = signature.apply_query("offered", stray, sigma)
        with pytest.raises(RefinementError):
            PredicateInterpretation((), sigma, term)


class TestHomonym:
    def test_builds_for_courses(self, courses_info, courses_spec):
        interpretation = Interpretation.homonym(
            courses_info, courses_spec.signature
        )
        assert set(interpretation.predicate_names) == {"offered", "takes"}

    def test_missing_query_rejected(self, courses_info):
        from repro.algebraic.signature import AlgebraicSignature

        bare = AlgebraicSignature()
        with pytest.raises(RefinementError):
            Interpretation.homonym(courses_info, bare)

    def test_uncovered_predicate_lookup_raises(
        self, courses_info, courses_spec
    ):
        interpretation = Interpretation.homonym(
            courses_info, courses_spec.signature
        )
        with pytest.raises(RefinementError):
            interpretation.of("ghost")


class TestRealization:
    def test_realize_matches_query(
        self, courses_info, courses_spec, courses_algebra
    ):
        interpretation = Interpretation.homonym(
            courses_info, courses_spec.signature
        )
        trace = courses_algebra.apply(
            "offer", "c1", trace=courses_algebra.initial_trace()
        )
        assert interpretation.realize(
            courses_algebra, "offered", ("c1",), trace
        )
        assert not interpretation.realize(
            courses_algebra, "offered", ("c2",), trace
        )

    def test_structure_of_trace(
        self, courses_info, courses_carriers, courses_spec, courses_algebra
    ):
        interpretation = Interpretation.homonym(
            courses_info, courses_spec.signature
        )
        trace = courses_algebra.apply(
            "enroll",
            "s1",
            "c1",
            trace=courses_algebra.apply(
                "offer", "c1", trace=courses_algebra.initial_trace()
            ),
        )
        structure = interpretation.structure_of_trace(
            courses_info, courses_carriers, courses_algebra, trace
        )
        assert structure.relation("offered") == {("c1",)}
        assert structure.relation("takes") == {("s1", "c1")}

"""Tests for the syntactic extension of I to wffs (Section 4.3):
mapping temporal L1 formulas into L2 + the reachability predicate F."""

import pytest

from repro.logic import formulas as fm
from repro.logic.sorts import STATE
from repro.logic.terms import Var
from repro.refinement.first_second import (
    REACHABILITY_PREDICATE,
    translate_axiom,
)
from repro.refinement.interpretation import Interpretation


@pytest.fixture(scope="module")
def interpretation():
    from repro.applications.courses import (
        courses_algebraic,
        courses_information,
    )

    return Interpretation.homonym(
        courses_information(), courses_algebraic().signature
    )


@pytest.fixture(scope="module")
def info():
    from repro.applications.courses import courses_information

    return courses_information()


class TestAtomTranslation:
    def test_db_atom_becomes_equality(self, interpretation, info):
        static = info.static_constraints[0]
        translated = translate_axiom(interpretation, static)
        # No Atom over db-predicates survives; they become Equals.
        for sub in translated.subformulas():
            if isinstance(sub, fm.Atom):
                assert sub.predicate.name == "F"
        equalities = [
            sub
            for sub in translated.subformulas()
            if isinstance(sub, fm.Equals)
        ]
        assert equalities

    def test_free_state_variable_is_sigma(self, interpretation, info):
        static = info.static_constraints[0]
        translated = translate_axiom(interpretation, static)
        free = translated.free_vars()
        assert free == frozenset({Var("sigma", STATE)})


class TestModalTranslation:
    def test_box_becomes_forall_over_f(self, interpretation, info):
        transition = info.transition_constraints[0]
        translated = translate_axiom(interpretation, transition)
        f_atoms = [
            sub
            for sub in translated.subformulas()
            if isinstance(sub, fm.Atom) and sub.predicate.name == "F"
        ]
        # The constraint has two nested boxes.
        assert len(f_atoms) == 2
        assert REACHABILITY_PREDICATE.arg_sorts == (STATE, STATE)

    def test_box_shape(self, interpretation, info):
        # [](P) at sigma  ->  forall sigma1. F(sigma, sigma1) -> P'.
        transition = info.transition_constraints[0]
        translated = translate_axiom(interpretation, transition)
        foralls = [
            sub
            for sub in translated.subformulas()
            if isinstance(sub, fm.Forall) and sub.var.sort == STATE
        ]
        assert len(foralls) == 2
        outer = foralls[0]
        assert isinstance(outer.body, fm.Implies)
        assert isinstance(outer.body.lhs, fm.Atom)
        assert outer.body.lhs.predicate.name == "F"

    def test_diamond_becomes_exists(self, interpretation, info):
        from repro.temporal.formulas import Possibly

        signature = info.signature
        from repro.logic.parser import parse_formula

        diamond = parse_formula(
            "<>exists c:course. offered(c)",
            signature,
            allow_modal=True,
        )
        translated = translate_axiom(interpretation, diamond)
        assert isinstance(translated, fm.Exists)
        assert translated.var.sort == STATE
        assert isinstance(translated.body, fm.And)

    def test_fresh_state_variables_distinct(self, interpretation, info):
        transition = info.transition_constraints[0]
        translated = translate_axiom(interpretation, transition)
        state_vars = {
            sub.var.name
            for sub in translated.subformulas()
            if isinstance(sub, (fm.Forall, fm.Exists))
            and sub.var.sort == STATE
        }
        assert len(state_vars) == 2

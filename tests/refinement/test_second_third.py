"""Tests for the 2nd->3rd refinement (Sections 5.3-5.4), including a
faulty schema that must be caught."""

import pytest

from repro.errors import RefinementError
from repro.applications.courses import (
    courses_algebraic,
    courses_schema_source,
)
from repro.refinement.second_third import (
    InducedStructure,
    RepresentationMap,
    check_agreement,
    check_refinement,
)
from repro.rpr.parser import parse_schema


@pytest.fixture(scope="module")
def spec():
    return courses_algebraic()


@pytest.fixture(scope="module")
def schema():
    return parse_schema(courses_schema_source())


BROKEN_CANCEL = courses_schema_source().replace(
    "if ~exists s: Students. TAKES(s, c)\n    then delete OFFERED(c)",
    "delete OFFERED(c)",
)

NONDETERMINISTIC = courses_schema_source().replace(
    "proc offer(c) =\n    insert OFFERED(c)",
    "proc offer(c) =\n    (insert OFFERED(c) | skip)",
)


class TestRepresentationMap:
    def test_homonym_builds(self, spec, schema):
        rep_map = RepresentationMap.homonym(spec.signature, schema)
        assert set(rep_map.query_map) == {"offered", "takes"}
        assert rep_map.proc_for("enroll") == "enroll"
        assert rep_map.initial_proc == "initiate"

    def test_missing_relation_rejected(self, spec):
        other = parse_schema(
            "schema OFFERED(Courses);"
            " proc initiate() = OFFERED := {} end-schema"
        )
        with pytest.raises(RefinementError):
            RepresentationMap.homonym(spec.signature, other)

    def test_uncovered_query_lookup(self, spec, schema):
        rep_map = RepresentationMap.homonym(spec.signature, schema)
        with pytest.raises(RefinementError):
            rep_map.realization("ghost")


class TestInducedStructure:
    def test_initial_state_is_empty(self, spec, schema):
        induced = InducedStructure(
            spec.signature,
            schema,
            RepresentationMap.homonym(spec.signature, schema),
        )
        state = induced.initial()
        assert state.relation("OFFERED") == frozenset()
        assert state.relation("TAKES") == frozenset()

    def test_state_of_trace_runs_procs(self, spec, schema):
        from repro.algebraic.algebra import TraceAlgebra

        algebra = TraceAlgebra(spec)
        induced = InducedStructure(
            spec.signature,
            schema,
            RepresentationMap.homonym(spec.signature, schema),
        )
        trace = algebra.apply(
            "enroll",
            "s1",
            "c1",
            trace=algebra.apply(
                "offer", "c1", trace=algebra.initial_trace()
            ),
        )
        state = induced.state_of_trace(trace)
        assert state.relation("TAKES") == {("s1", "c1")}

    def test_eval_query_via_k(self, spec, schema):
        induced = InducedStructure(
            spec.signature,
            schema,
            RepresentationMap.homonym(spec.signature, schema),
        )
        state = induced.initial()
        opened = induced.apply_update("offer", ("c1",), state)
        assert induced.eval_query("offered", ("c1",), opened) is True
        assert induced.eval_query("offered", ("c2",), opened) is False

    def test_reachable_states_count(self, spec, schema):
        induced = InducedStructure(
            spec.signature,
            schema,
            RepresentationMap.homonym(spec.signature, schema),
        )
        assert len(induced.reachable_states()) == 25

    def test_nondeterministic_schema_rejected(self, spec):
        bad = parse_schema(NONDETERMINISTIC)
        with pytest.raises(RefinementError, match="deterministic"):
            InducedStructure(
                spec.signature,
                bad,
                RepresentationMap.homonym(spec.signature, bad),
            )


class TestRefinementCheck:
    def test_paper_schema_refines(self, spec, schema):
        report = check_refinement(spec, schema)
        assert report.ok
        assert report.states_checked == 25
        assert "correctly refines" in str(report)

    def test_broken_cancel_schema_caught(self, spec):
        bad = parse_schema(BROKEN_CANCEL)
        report = check_refinement(spec, bad)
        assert not report.ok
        assert report.failures
        labels = {f.equation.label for f in report.failures}
        # The violated equations are cancel's (6a in the paper).
        assert any("eq6" in label for label in labels)
        assert "does NOT refine" in str(report)

    def test_agreement_on_paper_schema(self, spec, schema):
        from repro.algebraic.algebra import TraceAlgebra

        report = check_agreement(TraceAlgebra(spec), schema, depth=2)
        assert report.ok

    @pytest.mark.slow
    def test_agreement_catches_broken_schema(self, spec):
        from repro.algebraic.algebra import TraceAlgebra

        bad = parse_schema(BROKEN_CANCEL)
        # Exposing the fault needs offer -> enroll -> cancel: depth 3.
        report = check_agreement(
            TraceAlgebra(spec), bad, depth=3, max_traces=6_000
        )
        assert not report.ok

"""Property-based cross-level agreement: random update workloads must
yield identical answers at all three levels.

For any sequence of update instances, the level-1 structure induced by
the level-2 trace (via I), the level-2 snapshot computed by rewriting,
and the level-3 database state produced by running the procedures (via
K) must all present the same relations — the strongest executable form
of the paper's refinement claims.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebraic.algebra import TraceAlgebra
from repro.applications import courses
from repro.information.consistency import check_state
from repro.refinement.interpretation import Interpretation
from repro.refinement.second_third import (
    InducedStructure,
    RepresentationMap,
)
from repro.rpr.parser import parse_schema


@pytest.fixture(scope="module")
def setting():
    info = courses.courses_information()
    carriers = courses.courses_information_carriers()
    spec = courses.courses_algebraic()
    algebra = TraceAlgebra(spec)
    schema = parse_schema(courses.courses_schema_source())
    interpretation = Interpretation.homonym(info, spec.signature)
    induced = InducedStructure(
        spec.signature,
        schema,
        RepresentationMap.homonym(spec.signature, schema),
    )
    return info, carriers, algebra, interpretation, induced


UPDATES = st.lists(
    st.one_of(
        st.tuples(st.just("offer"), st.sampled_from(["c1", "c2"])),
        st.tuples(st.just("cancel"), st.sampled_from(["c1", "c2"])),
        st.tuples(
            st.just("enroll"),
            st.sampled_from(["s1", "s2"]),
            st.sampled_from(["c1", "c2"]),
        ),
        st.tuples(
            st.just("transfer"),
            st.sampled_from(["s1", "s2"]),
            st.sampled_from(["c1", "c2"]),
            st.sampled_from(["c1", "c2"]),
        ),
    ),
    max_size=8,
)


class TestThreeLevelAgreement:
    @settings(max_examples=50, deadline=None)
    @given(UPDATES)
    def test_levels_agree_on_random_workloads(self, setting, steps):
        info, carriers, algebra, interpretation, induced = setting
        trace = algebra.initial_trace()
        for name, *params in steps:
            trace = algebra.apply(name, *params, trace=trace)

        snapshot = algebra.snapshot(trace)
        db_state = induced.state_of_trace(trace)
        structure = interpretation.structure_of_trace(
            info, carriers, algebra, trace
        )

        # level 2 vs level 3
        assert snapshot.relation("offered") == db_state.relation(
            "OFFERED"
        )
        assert snapshot.relation("takes") == db_state.relation("TAKES")
        # level 2 vs level 1 (via I)
        assert structure.relation("offered") == snapshot.relation(
            "offered"
        )
        assert structure.relation("takes") == snapshot.relation("takes")

    @settings(max_examples=50, deadline=None)
    @given(UPDATES)
    def test_every_random_state_is_statically_consistent(
        self, setting, steps
    ):
        # The encapsulation guarantee: no update sequence can produce
        # an inconsistent state.
        info, carriers, algebra, interpretation, _ = setting
        trace = algebra.initial_trace()
        for name, *params in steps:
            trace = algebra.apply(name, *params, trace=trace)
        structure = interpretation.structure_of_trace(
            info, carriers, algebra, trace
        )
        assert check_state(info, structure).ok

    @settings(max_examples=30, deadline=None)
    @given(UPDATES, UPDATES)
    def test_observational_equality_transfers_to_level_3(
        self, setting, left_steps, right_steps
    ):
        # If two traces are level-2 observationally equal, their
        # level-3 realizations are the same database state.
        _, _, algebra, _, induced = setting
        left = algebra.initial_trace()
        for name, *params in left_steps:
            left = algebra.apply(name, *params, trace=left)
        right = algebra.initial_trace()
        for name, *params in right_steps:
            right = algebra.apply(name, *params, trace=right)
        if algebra.observationally_equal(left, right):
            assert induced.state_of_trace(left) == induced.state_of_trace(
                right
            )

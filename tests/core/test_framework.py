"""Tests for the combined design framework."""

import pytest

from repro.core.framework import DesignFramework
from repro.applications import courses


@pytest.fixture(scope="module")
def framework():
    return DesignFramework.from_sources(
        information=courses.courses_information(),
        algebraic=courses.courses_algebraic(),
        schema_source=courses.courses_schema_source(),
        carriers=courses.courses_information_carriers(),
        name="courses registrar",
    )


@pytest.fixture(scope="module")
def report(framework):
    return framework.verify()


class TestVerify:
    def test_everything_passes(self, report):
        assert report.ok
        assert bool(report)

    def test_sections_present(self, report):
        assert report.first_second.ok
        assert report.congruence.ok
        assert report.grammar_ok is True
        assert report.second_third.ok
        assert report.agreement.ok

    def test_render(self, report):
        text = str(report)
        assert "W-grammar" in text
        assert "full design verified: True" in text

    def test_algebra_accessor(self, framework):
        algebra = framework.algebra()
        assert algebra.query(
            "offered", "c1", trace=algebra.initial_trace()
        ) is False


class TestWithoutSource:
    @pytest.mark.slow
    def test_grammar_check_skipped(self):
        framework = DesignFramework(
            information=courses.courses_information(),
            algebraic=courses.courses_algebraic(),
            schema=__import__(
                "repro.rpr.parser", fromlist=["parse_schema"]
            ).parse_schema(courses.courses_schema_source()),
            carriers=courses.courses_information_carriers(),
            name="no source",
        )
        report = framework.verify()
        assert report.grammar_ok is None
        assert report.ok  # None does not fail the bundle
        assert "skipped" in str(report)


class TestFailurePropagation:
    @pytest.mark.slow
    def test_broken_schema_fails_bundle(self):
        broken = courses.courses_schema_source().replace(
            "if ~exists s: Students. TAKES(s, c)\n    then delete OFFERED(c)",
            "delete OFFERED(c)",
        )
        framework = DesignFramework.from_sources(
            information=courses.courses_information(),
            algebraic=courses.courses_algebraic(),
            schema_source=broken,
            carriers=courses.courses_information_carriers(),
            name="broken",
        )
        report = framework.verify()
        assert not report.second_third.ok
        assert not report.ok

"""Tests for the verification CLI."""

import pytest

from repro.cli import APPLICATIONS, main


class TestList:
    def test_lists_all_applications(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in APPLICATIONS:
            assert name in out


class TestVerify:
    @pytest.mark.slow
    def test_verify_courses_quiet(self, capsys):
        assert main(["verify", "courses", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("[OK]")

    def test_verify_unknown_application(self, capsys):
        assert main(["verify", "atlantis"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_verify_prints_full_report_by_default(self, capsys):
        assert main(["verify", "library"]) == 0
        out = capsys.readouterr().out
        assert "Section 4.4" in out


class TestObservabilityFlags:
    def test_trace_writes_chrome_loadable_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.json"
        assert main(
            ["verify", "courses", "--quiet", "--trace", str(path)]
        ) == 0
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        assert events, "trace should contain spans"
        assert all(event["ph"] == "X" for event in events)
        names = {event["name"] for event in events}
        # The span tree covers exploration, each 4.4/5.4 check, and
        # the W-grammar recognizer.
        for required in (
            "verify",
            "first-second",
            "explore",
            "completeness",
            "static",
            "inclusion",
            "transitions",
            "congruence",
            "wgrammar.recognize",
            "second-third",
            "agreement",
        ):
            assert required in names, required
        assert str(path) in capsys.readouterr().out

    def test_trace_covers_per_worker_activity(self, tmp_path):
        import json

        path = tmp_path / "trace.json"
        assert main(
            [
                "verify", "courses", "--quiet",
                "--workers", "2", "--trace", str(path),
            ]
        ) == 0
        events = json.loads(path.read_text())["traceEvents"]
        chunk_tids = {
            event["tid"]
            for event in events
            if event["name"] == "chunk"
        }
        # The inline bounded sweeps split into one chunk per worker;
        # the independent serial checks additionally fan out as one
        # chunk each, so higher tids may appear behind them.
        assert {1, 2} <= chunk_tids

    def test_trace_jsonl_and_summary(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.jsonl"
        assert main(
            [
                "verify", "library", "--quiet",
                "--trace-jsonl", str(path), "--trace-summary",
            ]
        ) == 0
        lines = path.read_text().splitlines()
        assert lines
        first = json.loads(lines[0])
        assert first["name"] == "verify"
        assert first["depth"] == 0
        out = capsys.readouterr().out
        assert "verify" in out and "first-second" in out

    def test_metrics_json_subsumes_the_adhoc_counters(
        self, tmp_path, capsys
    ):
        import json

        path = tmp_path / "metrics.json"
        assert main(
            [
                "verify", "courses", "--quiet",
                "--metrics-json", str(path),
            ]
        ) == 0
        payload = json.loads(path.read_text())
        counters, gauges = payload["counters"], payload["gauges"]
        for name in (
            "verify.items",
            "rewrite.cache.hits",
            "rewrite.cache.misses",
            "rewrite.dispatch.hits",
            "kernel.interned_terms",
            "rewrite.evaluate.calls",
            "wgrammar.steps",
        ):
            assert name in counters, name
        for name in (
            "verify.wall_time",
            "kernel.intern_table.size",
        ):
            assert name in gauges, name

    def test_metrics_json_to_stdout(self, capsys):
        import json

        assert main(
            ["verify", "library", "--quiet", "--metrics-json", "-"]
        ) == 0
        out = capsys.readouterr().out
        start = out.index("{")
        payload = json.loads(out[start:])
        assert "counters" in payload

    def test_verify_without_flags_leaves_tracing_off(self):
        from repro.obs.tracer import OBS_STATE

        assert main(["verify", "library", "--quiet"]) == 0
        assert OBS_STATE.enabled is False


class TestSchemaAndAxioms:
    def test_schema_prints_rpr_source(self, capsys):
        assert main(["schema", "courses"]) == 0
        out = capsys.readouterr().out
        assert "proc cancel(c)" in out
        assert "end-schema" in out

    def test_axioms_prints_theory(self, capsys):
        assert main(["axioms", "courses"]) == 0
        out = capsys.readouterr().out
        assert "static constraints" in out
        assert "takes" in out

    def test_schema_unknown(self, capsys):
        assert main(["schema", "atlantis"]) == 2

    def test_axioms_unknown(self, capsys):
        assert main(["axioms", "atlantis"]) == 2


class TestPipelineFlags:
    def test_only_runs_one_check_with_outcome_table(self, capsys):
        assert main(
            ["verify", "courses", "--only", "second-third"]
        ) == 0
        out = capsys.readouterr().out
        assert "second-third" in out
        assert "second-to-third refinement" in out
        # The selection table replaces the full report.
        assert "full design verified" not in out

    def test_only_pulls_in_dependencies(self, capsys):
        assert main(["verify", "courses", "--only", "static"]) == 0
        out = capsys.readouterr().out
        assert "explore" in out
        assert "static" in out
        assert "congruence" not in out

    def test_skip_accepts_comma_separated_names(self, capsys):
        assert main(
            ["verify", "courses", "--skip", "congruence,agreement"]
        ) == 0
        out = capsys.readouterr().out
        assert "congruence" not in out
        assert "agreement" not in out
        assert "completeness" in out

    def test_unknown_check_name_errors(self, capsys):
        assert main(["verify", "courses", "--only", "typo"]) == 2
        assert "unknown check" in capsys.readouterr().err

    def test_fail_fast_passes_on_a_clean_design(self, capsys):
        assert main(
            ["verify", "courses", "--fail-fast", "--quiet"]
        ) == 0

    def test_cache_dir_warm_run_is_byte_identical(
        self, tmp_path, capsys
    ):
        import re

        cache_dir = str(tmp_path / "cache")
        assert main(
            ["verify", "courses", "--cache-dir", cache_dir]
        ) == 0
        cold = capsys.readouterr().out
        assert main(
            ["verify", "courses", "--cache-dir", cache_dir]
        ) == 0
        warm = capsys.readouterr().out
        strip = lambda text: re.sub(r"\(\d+\.\d+s\)", "", text)
        assert strip(warm) == strip(cold)
        assert list((tmp_path / "cache").glob("*.json"))

    def test_cache_dir_composes_with_selection(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(
            [
                "verify", "courses",
                "--only", "congruence",
                "--cache-dir", cache_dir,
            ]
        ) == 0
        capsys.readouterr()
        assert main(
            [
                "verify", "courses",
                "--only", "congruence",
                "--cache-dir", cache_dir,
            ]
        ) == 0
        assert "[cached]" in capsys.readouterr().out

"""Tests for the verification CLI."""

import pytest

from repro.cli import APPLICATIONS, main


class TestList:
    def test_lists_all_applications(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in APPLICATIONS:
            assert name in out


class TestVerify:
    @pytest.mark.slow
    def test_verify_courses_quiet(self, capsys):
        assert main(["verify", "courses", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("[OK]")

    def test_verify_unknown_application(self, capsys):
        assert main(["verify", "atlantis"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_verify_prints_full_report_by_default(self, capsys):
        assert main(["verify", "library"]) == 0
        out = capsys.readouterr().out
        assert "Section 4.4" in out


class TestSchemaAndAxioms:
    def test_schema_prints_rpr_source(self, capsys):
        assert main(["schema", "courses"]) == 0
        out = capsys.readouterr().out
        assert "proc cancel(c)" in out
        assert "end-schema" in out

    def test_axioms_prints_theory(self, capsys):
        assert main(["axioms", "courses"]) == 0
        out = capsys.readouterr().out
        assert "static constraints" in out
        assert "takes" in out

    def test_schema_unknown(self, capsys):
        assert main(["schema", "atlantis"]) == 2

    def test_axioms_unknown(self, capsys):
        assert main(["axioms", "atlantis"]) == 2

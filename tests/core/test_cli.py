"""Tests for the verification CLI."""

import pytest

from repro.cli import APPLICATIONS, main


class TestList:
    def test_lists_all_applications(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in APPLICATIONS:
            assert name in out


class TestVerify:
    @pytest.mark.slow
    def test_verify_courses_quiet(self, capsys):
        assert main(["verify", "courses", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("[OK]")

    def test_verify_unknown_application(self, capsys):
        assert main(["verify", "atlantis"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_verify_prints_full_report_by_default(self, capsys):
        assert main(["verify", "library"]) == 0
        out = capsys.readouterr().out
        assert "Section 4.4" in out


class TestObservabilityFlags:
    def test_trace_writes_chrome_loadable_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.json"
        assert main(
            ["verify", "courses", "--quiet", "--trace", str(path)]
        ) == 0
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        assert events, "trace should contain spans"
        assert all(event["ph"] == "X" for event in events)
        names = {event["name"] for event in events}
        # The span tree covers exploration, each 4.4/5.4 check, and
        # the W-grammar recognizer.
        for required in (
            "verify",
            "first-second",
            "explore",
            "completeness",
            "static",
            "inclusion",
            "transitions",
            "congruence",
            "wgrammar.recognize",
            "second-third",
            "agreement",
        ):
            assert required in names, required
        assert str(path) in capsys.readouterr().out

    def test_trace_covers_per_worker_activity(self, tmp_path):
        import json

        path = tmp_path / "trace.json"
        assert main(
            [
                "verify", "courses", "--quiet",
                "--workers", "2", "--trace", str(path),
            ]
        ) == 0
        events = json.loads(path.read_text())["traceEvents"]
        chunk_tids = {
            event["tid"]
            for event in events
            if event["name"] == "chunk"
        }
        # The inline bounded sweeps split into one chunk per worker;
        # the independent serial checks additionally fan out as one
        # chunk each, so higher tids may appear behind them.
        assert {1, 2} <= chunk_tids

    def test_trace_jsonl_and_summary(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.jsonl"
        assert main(
            [
                "verify", "library", "--quiet",
                "--trace-jsonl", str(path), "--trace-summary",
            ]
        ) == 0
        lines = path.read_text().splitlines()
        assert lines
        first = json.loads(lines[0])
        assert first["name"] == "verify"
        assert first["depth"] == 0
        out = capsys.readouterr().out
        assert "verify" in out and "first-second" in out

    def test_metrics_json_subsumes_the_adhoc_counters(
        self, tmp_path, capsys
    ):
        import json

        path = tmp_path / "metrics.json"
        assert main(
            [
                "verify", "courses", "--quiet",
                "--metrics-json", str(path),
            ]
        ) == 0
        payload = json.loads(path.read_text())
        counters, gauges = payload["counters"], payload["gauges"]
        for name in (
            "verify.items",
            "rewrite.cache.hits",
            "rewrite.cache.misses",
            "rewrite.dispatch.hits",
            "kernel.interned_terms",
            "rewrite.evaluate.calls",
            "wgrammar.steps",
        ):
            assert name in counters, name
        for name in (
            "verify.wall_time",
            "kernel.intern_table.size",
        ):
            assert name in gauges, name

    def test_metrics_json_to_stdout(self, capsys):
        import json

        assert main(
            ["verify", "library", "--quiet", "--metrics-json", "-"]
        ) == 0
        out = capsys.readouterr().out
        start = out.index("{")
        payload = json.loads(out[start:])
        assert "counters" in payload

    def test_verify_without_flags_leaves_tracing_off(self):
        from repro.obs.tracer import OBS_STATE

        assert main(["verify", "library", "--quiet"]) == 0
        assert OBS_STATE.enabled is False


class TestKernelStatsFields:
    def test_stats_line_reports_arena_and_delta(self, capsys):
        assert main(["verify", "library", "--quiet", "--stats"]) == 0
        out = capsys.readouterr().out
        kernel_lines = [
            line for line in out.splitlines() if "[kernel]" in line
        ]
        assert kernel_lines
        for field in (
            "arena_terms=",
            "arena_bytes=",
            "delta_reexplored_states=",
        ):
            assert all(field in line for line in kernel_lines), field

    def test_metrics_json_reports_arena_and_delta(self, tmp_path):
        import json

        path = tmp_path / "metrics.json"
        assert main(
            [
                "verify", "library", "--quiet",
                "--metrics-json", str(path),
            ]
        ) == 0
        gauges = json.loads(path.read_text())["gauges"]
        for name in (
            "kernel.arena.terms",
            "kernel.arena.bytes",
            "kernel.delta.reexplored_states",
            "kernel.delta.cached_transitions",
        ):
            assert name in gauges, name


class TestSchemaAndAxioms:
    def test_schema_prints_rpr_source(self, capsys):
        assert main(["schema", "courses"]) == 0
        out = capsys.readouterr().out
        assert "proc cancel(c)" in out
        assert "end-schema" in out

    def test_axioms_prints_theory(self, capsys):
        assert main(["axioms", "courses"]) == 0
        out = capsys.readouterr().out
        assert "static constraints" in out
        assert "takes" in out

    def test_schema_unknown(self, capsys):
        assert main(["schema", "atlantis"]) == 2

    def test_axioms_unknown(self, capsys):
        assert main(["axioms", "atlantis"]) == 2


class TestPipelineFlags:
    def test_only_runs_one_check_with_outcome_table(self, capsys):
        assert main(
            ["verify", "courses", "--only", "second-third"]
        ) == 0
        out = capsys.readouterr().out
        assert "second-third" in out
        assert "second-to-third refinement" in out
        # The selection table replaces the full report.
        assert "full design verified" not in out

    def test_only_pulls_in_dependencies(self, capsys):
        assert main(["verify", "courses", "--only", "static"]) == 0
        out = capsys.readouterr().out
        assert "explore" in out
        assert "static" in out
        assert "congruence" not in out

    def test_skip_accepts_comma_separated_names(self, capsys):
        assert main(
            ["verify", "courses", "--skip", "congruence,agreement"]
        ) == 0
        out = capsys.readouterr().out
        assert "congruence" not in out
        assert "agreement" not in out
        assert "completeness" in out

    def test_unknown_check_name_errors(self, capsys):
        assert main(["verify", "courses", "--only", "typo"]) == 2
        assert "unknown check" in capsys.readouterr().err

    def test_fail_fast_passes_on_a_clean_design(self, capsys):
        assert main(
            ["verify", "courses", "--fail-fast", "--quiet"]
        ) == 0

    def test_cache_dir_warm_run_is_byte_identical(
        self, tmp_path, capsys
    ):
        import re

        cache_dir = str(tmp_path / "cache")
        assert main(
            ["verify", "courses", "--cache-dir", cache_dir]
        ) == 0
        cold = capsys.readouterr().out
        assert main(
            ["verify", "courses", "--cache-dir", cache_dir]
        ) == 0
        warm = capsys.readouterr().out
        strip = lambda text: re.sub(r"\(\d+\.\d+s\)", "", text)
        assert strip(warm) == strip(cold)
        assert list((tmp_path / "cache").glob("*.json"))

    def test_cache_dir_composes_with_selection(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(
            [
                "verify", "courses",
                "--only", "congruence",
                "--cache-dir", cache_dir,
            ]
        ) == 0
        capsys.readouterr()
        assert main(
            [
                "verify", "courses",
                "--only", "congruence",
                "--cache-dir", cache_dir,
            ]
        ) == 0
        assert "[cached]" in capsys.readouterr().out


def _broken_factory():
    """A courses variant whose cancel equations drop the guard —
    every consistency check fails with concrete witnesses."""
    from repro.applications import courses
    from repro.core.framework import DesignFramework
    from tests.refinement.test_first_second import broken_cancel_spec

    return DesignFramework.from_sources(
        information=courses.courses_information(),
        algebraic=broken_cancel_spec(),
        schema_source=courses.courses_schema_source(),
        carriers=courses.courses_information_carriers(),
        name="broken",
    )


class TestCoverageFlags:
    def test_coverage_json_reports_full_cell_coverage(
        self, tmp_path, capsys
    ):
        import json

        path = tmp_path / "coverage.json"
        assert main(
            ["verify", "courses", "--quiet", "--coverage", str(path)]
        ) == 0
        document = json.loads(path.read_text())
        assert document["application"] == "courses"
        assert document["rewrite"]["summary"]["coverage"] == 1.0
        assert document["rewrite"]["summary"]["uncovered_cells"] == []
        assert document["explore"]["states"] > 0
        assert document["wgrammar"]["hyperrules"]
        assert document["checks"]
        assert str(path) in capsys.readouterr().out

    def test_coverage_html_is_self_contained(self, tmp_path):
        path = tmp_path / "coverage.html"
        assert main(
            [
                "verify", "courses", "--quiet",
                "--coverage-html", str(path),
            ]
        ) == 0
        html = path.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "<style>" in html
        assert "100.0% cell coverage" in html
        # Self-contained: no external scripts or stylesheets.
        assert "src=" not in html and "href=" not in html

    def test_coverage_to_stdout(self, capsys):
        import json

        assert main(
            ["verify", "library", "--quiet", "--coverage", "-"]
        ) == 0
        out = capsys.readouterr().out
        document = json.loads(out[out.index("{"):])
        assert document["rewrite"]["summary"]["coverage"] == 1.0

    def test_coverage_byte_identical_across_worker_counts(
        self, tmp_path, capsys
    ):
        one, four = tmp_path / "w1.json", tmp_path / "w4.json"
        assert main(
            ["verify", "courses", "--quiet", "--coverage", str(one)]
        ) == 0
        assert main(
            [
                "verify", "courses", "--quiet",
                "--workers", "4", "--coverage", str(four),
            ]
        ) == 0
        capsys.readouterr()
        assert one.read_bytes() == four.read_bytes()

    def test_coverage_byte_identical_cold_vs_warm(
        self, tmp_path, capsys
    ):
        cache_dir = str(tmp_path / "cache")
        cold, warm = tmp_path / "cold.json", tmp_path / "warm.json"
        for path in (cold, warm):
            assert main(
                [
                    "verify", "courses", "--quiet",
                    "--cache-dir", cache_dir,
                    "--coverage", str(path),
                ]
            ) == 0
        capsys.readouterr()
        assert cold.read_bytes() == warm.read_bytes()

    def test_coverage_composes_with_selection(self, tmp_path, capsys):
        import json

        path = tmp_path / "coverage.json"
        assert main(
            [
                "verify", "courses",
                "--only", "grammar",
                "--coverage", str(path),
            ]
        ) == 0
        capsys.readouterr()
        document = json.loads(path.read_text())
        # Only the recognizer ran: grammar usage is present, the
        # rewrite cells and the census are untouched.
        assert document["wgrammar"]["hyperrules"]
        assert document["explore"] is None
        assert document["rewrite"]["summary"]["covered"] == 0

    def test_coverage_all_emits_a_document_list(
        self, tmp_path, capsys
    ):
        import json

        path = tmp_path / "coverage.json"
        assert main(
            ["verify", "all", "--quiet", "--coverage", str(path)]
        ) == 0
        capsys.readouterr()
        documents = json.loads(path.read_text())
        assert isinstance(documents, list)
        assert [d["application"] for d in documents] == list(
            APPLICATIONS
        )

    def test_verify_leaves_coverage_off(self):
        from repro.obs.coverage import COV_STATE

        assert main(
            ["verify", "library", "--quiet", "--coverage", "-"]
        ) == 0
        assert COV_STATE.enabled is False
        assert COV_STATE.recorder is None


class TestFailureTraces:
    def test_verify_failure_prints_minimal_trace(
        self, monkeypatch, capsys
    ):
        monkeypatch.setitem(APPLICATIONS, "broken", _broken_factory)
        assert main(["verify", "broken", "--quiet"]) == 1
        out = capsys.readouterr().out
        assert "[static] minimal counterexample:" in out
        assert "initiate" in out
        assert "-> cancel(" in out
        assert "more counterexample" in out

    def test_failure_traces_with_coverage_pipeline(
        self, monkeypatch, tmp_path, capsys
    ):
        import json

        monkeypatch.setitem(APPLICATIONS, "broken", _broken_factory)
        path = tmp_path / "coverage.json"
        assert main(
            [
                "verify", "broken", "--quiet",
                "--coverage", str(path),
            ]
        ) == 1
        out = capsys.readouterr().out
        assert "minimal counterexample:" in out
        document = json.loads(path.read_text())
        failed = [
            check
            for check in document["checks"]
            if check["ok"] is False
        ]
        assert failed
        assert any(check.get("witnesses") for check in failed)


class TestOutputPathHandling:
    def test_stats_json_dash_writes_stdout(self, capsys):
        import json

        assert main(
            ["verify", "library", "--quiet", "--stats-json", "-"]
        ) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["application"] == "library"

    def test_trace_dash_writes_stdout(self, capsys):
        import json

        assert main(
            ["verify", "library", "--quiet", "--trace", "-"]
        ) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["traceEvents"]

    def test_missing_parent_directories_are_created(self, tmp_path):
        nested = tmp_path / "a" / "b" / "stats.json"
        assert main(
            [
                "verify", "library", "--quiet",
                "--stats-json", str(nested),
            ]
        ) == 0
        assert nested.is_file()

    def test_unwritable_path_fails_cleanly(self, capsys):
        assert main(
            [
                "verify", "library", "--quiet",
                "--stats-json", "/proc/nonexistent/stats.json",
            ]
        ) == 2
        err = capsys.readouterr().err
        assert "error: cannot write stats JSON" in err
        assert "Traceback" not in err

    def test_unwritable_coverage_path_fails_cleanly(self, capsys):
        assert main(
            [
                "verify", "library", "--quiet",
                "--coverage", "/proc/nonexistent/coverage.json",
            ]
        ) == 2
        err = capsys.readouterr().err
        assert "error: cannot write coverage" in err
        assert "Traceback" not in err


class TestCacheSubcommand:
    def _populate(self, cache_dir):
        assert main(
            [
                "verify", "courses", "--quiet",
                "--cache-dir", cache_dir, "--coverage", "-",
            ]
        ) == 0

    def test_stats_reports_entries(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        self._populate(cache_dir)
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "entries" in out
        assert "stale" in out

    def test_stats_json(self, tmp_path, capsys):
        import json

        cache_dir = str(tmp_path / "cache")
        self._populate(cache_dir)
        capsys.readouterr()
        assert main(
            ["cache", "stats", "--cache-dir", cache_dir, "--json"]
        ) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["entries"] > 0
        assert summary["stale"] == 0
        assert summary["with_coverage"] == summary["entries"]
        assert summary["by_node"]

    def test_prune_removes_stale_then_all(self, tmp_path, capsys):
        import json

        cache_dir = tmp_path / "cache"
        self._populate(str(cache_dir))
        # Plant one stale (older-format) and one unreadable entry.
        (cache_dir / "old-entry.json").write_text(
            json.dumps({"format": 1, "node": "explore"})
        )
        (cache_dir / "garbage.json").write_text("{not json")
        capsys.readouterr()
        assert main(
            ["cache", "prune", "--cache-dir", str(cache_dir)]
        ) == 0
        assert "pruned 2" in capsys.readouterr().out
        remaining = len(list(cache_dir.glob("*.json")))
        assert remaining > 0
        assert main(
            ["cache", "prune", "--cache-dir", str(cache_dir), "--all"]
        ) == 0
        assert f"pruned {remaining}" in capsys.readouterr().out
        assert not list(cache_dir.glob("*.json"))

    def test_stats_on_missing_directory(self, tmp_path, capsys):
        assert main(
            ["cache", "stats", "--cache-dir", str(tmp_path / "none")]
        ) == 0
        assert "0" in capsys.readouterr().out

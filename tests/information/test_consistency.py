"""Tests for state/transition/history consistency checks — the
information-level reading of the paper's Section 3.2 example."""

import pytest

from repro.information.consistency import (
    check_history,
    check_state,
    check_transition,
    is_acceptable_transition,
    is_consistent_state,
)
from repro.logic.structures import Structure


@pytest.fixture()
def states(courses_info, courses_carriers):
    empty = Structure(courses_info.signature, courses_carriers)
    offered = empty.with_relation("offered", {("c1",)})
    enrolled = offered.with_relation("takes", {("s1", "c1")})
    orphan = empty.with_relation("takes", {("s1", "c1")})
    return empty, offered, enrolled, orphan


class TestStaticConsistency:
    def test_empty_state_is_consistent(self, courses_info, states):
        empty, *_ = states
        assert is_consistent_state(courses_info, empty)

    def test_enrolled_state_is_consistent(self, courses_info, states):
        *_, enrolled, _ = states
        assert is_consistent_state(courses_info, enrolled)

    def test_taking_unoffered_course_is_inconsistent(
        self, courses_info, states
    ):
        *_, orphan = states
        assert not is_consistent_state(courses_info, orphan)

    def test_report_carries_the_violated_axiom(self, courses_info, states):
        *_, orphan = states
        report = check_state(courses_info, orphan)
        assert not report.ok
        assert len(report.violations) == 1
        assert "takes" in str(report.violations[0][0])

    def test_report_str(self, courses_info, states):
        empty, *_ = states
        assert str(check_state(courses_info, empty)) == "consistent"


class TestTransitionConsistency:
    def test_dropping_all_courses_is_unacceptable(
        self, courses_info, states
    ):
        _, offered, enrolled, _ = states
        assert not is_acceptable_transition(
            courses_info, enrolled, offered
        )

    def test_enrolling_is_acceptable(self, courses_info, states):
        _, offered, enrolled, _ = states
        assert is_acceptable_transition(courses_info, offered, enrolled)

    def test_swapping_course_is_acceptable(self, courses_info, states):
        *_, enrolled, _ = states
        swapped = enrolled.with_relations(
            {"offered": {("c1",), ("c2",)}, "takes": {("s1", "c2")}}
        )
        assert is_acceptable_transition(courses_info, enrolled, swapped)

    def test_report_names_the_constraint(self, courses_info, states):
        _, offered, enrolled, _ = states
        report = check_transition(courses_info, enrolled, offered)
        assert not report.ok
        assert "[]" in str(report.violations[0][0])


class TestHistoryConsistency:
    def test_good_history(self, courses_info, states):
        empty, offered, enrolled, _ = states
        assert check_history(courses_info, [empty, offered, enrolled]).ok

    def test_static_violation_located_by_index(
        self, courses_info, states
    ):
        empty, _, _, orphan = states
        report = check_history(courses_info, [empty, orphan])
        assert not report.ok
        assert any("state 1" in where for _, where in report.violations)

    def test_transition_violation_detected_across_gap(
        self, courses_info, states
    ):
        # enrolled -> offered -> empty: the student's course count
        # drops to zero along the history.
        empty, offered, enrolled, _ = states
        report = check_history(courses_info, [enrolled, offered])
        assert not report.ok

    def test_single_state_history(self, courses_info, states):
        empty, *_ = states
        assert check_history(courses_info, [empty]).ok

"""Tests for information-level specifications."""

import pytest

from repro.errors import SpecificationError
from repro.information.spec import InformationSpec
from repro.logic.parser import parse_formula
from repro.logic.signature import Signature
from repro.logic.sorts import Sort

COURSE = Sort("course")


def _signature(db=True):
    sig = Signature(sorts=[COURSE])
    sig.add_predicate("offered", [COURSE], db=db)
    return sig


class TestInformationSpec:
    def test_requires_db_predicate(self):
        with pytest.raises(SpecificationError):
            InformationSpec(_signature(db=False))

    def test_requires_closed_axioms(self):
        sig = _signature()
        open_axiom = parse_formula(
            "offered(c)", sig, variables={"c": COURSE}
        )
        with pytest.raises(SpecificationError):
            InformationSpec(sig, (open_axiom,))

    def test_constraint_split(self, courses_info):
        assert len(courses_info.static_constraints) == 1
        assert len(courses_info.transition_constraints) == 1

    def test_db_predicates(self, courses_info):
        names = {p.name for p in courses_info.db_predicates}
        assert names == {"offered", "takes"}

    def test_str_mentions_both_kinds(self, courses_info):
        text = str(courses_info)
        assert "static constraints" in text
        assert "transition constraints" in text

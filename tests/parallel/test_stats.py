"""Unit tests for the verification-statistics records and their
merger."""

import json

from repro.parallel import StatsSink, VerificationStats, WorkerStats
from repro.parallel.stats import counter_delta, engine_counters


class _FakeEngine:
    def __init__(self, hits, misses, steps, dispatch=0):
        self.cache_hits = hits
        self.cache_misses = misses
        self.rewrite_steps = steps
        self.dispatch_hits = dispatch


class TestCounters:
    def test_engine_counters_sums_and_skips_none(self):
        counters = engine_counters(
            _FakeEngine(3, 1, 7, dispatch=4), None, _FakeEngine(2, 2, 0)
        )
        # interned_terms is a process-wide gauge, not a per-engine sum.
        assert counters.pop("interned_terms") >= 0
        assert counters == {
            "cache_hits": 5,
            "cache_misses": 3,
            "rewrite_steps": 7,
            "dispatch_hits": 4,
        }

    def test_counter_delta(self):
        before = engine_counters(_FakeEngine(3, 1, 7, dispatch=2))
        after = engine_counters(_FakeEngine(10, 4, 9, dispatch=5))
        delta = counter_delta(before, after, items=6)
        # No terms were built between the two snapshots.
        assert delta.pop("interned_terms") == 0
        assert delta == {
            "cache_hits": 7,
            "cache_misses": 3,
            "rewrite_steps": 2,
            "dispatch_hits": 3,
            "items": 6,
        }

    def test_counter_delta_clamps_interned_shrinkage(self):
        # A garbage collection between snapshots can shrink the intern
        # table; the reported growth never goes negative.
        before = {"interned_terms": 10}
        after = {"interned_terms": 4}
        assert counter_delta(before, after)["interned_terms"] == 0


class TestMerge:
    def test_merge_sums_per_worker_counters(self):
        per_worker = [
            WorkerStats(0, items=5, cache_hits=10, cache_misses=2,
                        rewrite_steps=30, wall_time=0.5),
            WorkerStats(1, items=4, cache_hits=6, cache_misses=4,
                        rewrite_steps=20, wall_time=0.4),
        ]
        merged = VerificationStats.merge(
            "explore", 2, per_worker, wall_time=0.6
        )
        assert merged.states_checked == 9
        assert merged.cache_hits == 16
        assert merged.cache_misses == 6
        assert merged.rewrite_steps == 50
        # Wall time is the pass's elapsed time, not the worker sum.
        assert merged.wall_time == 0.6
        assert merged.per_worker == tuple(per_worker)
        assert merged.cache_hit_rate == 16 / 22

    def test_combine_keeps_parts(self):
        a = VerificationStats("explore", workers=4, states_checked=125,
                              cache_hits=10, wall_time=1.0)
        b = VerificationStats("coverage", workers=1, states_checked=50,
                              cache_misses=5, wall_time=0.5)
        bundle = VerificationStats.combine("verify", [a, b])
        assert bundle.workers == 4
        assert bundle.states_checked == 175
        assert bundle.cache_hits == 10
        assert bundle.cache_misses == 5
        assert bundle.wall_time == 1.5
        assert [p.label for p in bundle.parts] == ["explore", "coverage"]

    def test_hit_rate_zero_when_untouched(self):
        assert VerificationStats("x").cache_hit_rate == 0.0


class TestSerialization:
    def test_to_dict_round_trips_through_json(self):
        record = VerificationStats.merge(
            "reachable", 2,
            [WorkerStats(0, items=3, wall_time=0.1)],
            wall_time=0.2,
        )
        loaded = json.loads(record.to_json())
        assert loaded["label"] == "reachable"
        assert loaded["states_checked"] == 3
        assert loaded["per_worker"][0]["worker"] == 0

    def test_str_is_informative(self):
        text = str(VerificationStats("explore", workers=4,
                                     states_checked=125))
        assert "explore" in text
        assert "workers=4" in text
        assert "125" in text


class TestSink:
    def test_combined_bundles_everything_added(self):
        sink = StatsSink()
        sink.add(VerificationStats("a", states_checked=1))
        sink.add(VerificationStats("b", states_checked=2))
        bundle = sink.combined("verify")
        assert bundle.label == "verify"
        assert bundle.states_checked == 3
        assert len(bundle.parts) == 2

"""Protocol-level tests for the ``repro worker`` TCP server.

These speak raw frames at a :class:`WorkerServer`, the way a
hand-written (or adversarial) client would — the ``SocketBackend``
integration is covered in ``test_backends.py``.
"""

import pickle
import socket

import pytest

from repro.parallel import wire
from repro.parallel.backends import bundle_fingerprint
from repro.parallel.worker import WorkerServer


def _bundle(context):
    data = pickle.dumps(context, protocol=pickle.HIGHEST_PROTOCOL)
    return data, bundle_fingerprint(data)


def _memo_probe_chunk(context, arg):
    return context["base"] + arg, {"items": 1}


class _Client:
    """A minimal frame-at-a-time client."""

    def __init__(self, server: WorkerServer):
        self._sock = socket.create_connection(
            (server.host, server.port), timeout=10
        )
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")

    def call(self, payload: dict) -> dict | None:
        wire.send_frame(self._wfile, payload)
        self._wfile.flush()
        return wire.recv_frame(self._rfile)

    def close(self) -> None:
        self._sock.close()


@pytest.fixture(scope="module")
def server():
    worker = WorkerServer(module_prefixes=("repro.", "tests."))
    worker.serve_in_thread()
    yield worker
    worker.shutdown()


@pytest.fixture
def client(server):
    c = _Client(server)
    yield c
    c.close()


def _handshake(client):
    reply = client.call({"op": "hello", "version": wire.PROTOCOL_VERSION})
    assert reply["ok"] is True
    return reply


class TestHandshake:
    def test_hello(self, client):
        reply = _handshake(client)
        assert reply["server"] == "repro-worker"
        assert reply["version"] == wire.PROTOCOL_VERSION

    def test_version_mismatch_refused(self, client):
        reply = client.call({"op": "hello", "version": 999})
        assert reply["ok"] is False
        assert "version" in reply["error"]

    def test_unknown_op_is_an_error(self, client):
        reply = client.call({"op": "frobnicate"})
        assert reply["ok"] is False
        assert "unknown op" in reply["error"]

    def test_bye_ends_the_session(self, client):
        _handshake(client)
        assert client.call({"op": "bye"})["ok"] is True
        assert client.call({"op": "hello"}) is None  # closed


class TestBundles:
    def test_bind_unknown_fingerprint(self, client):
        _handshake(client)
        reply = client.call({"op": "bind", "fingerprint": "0" * 64})
        assert reply == {"ok": True, "have": False}

    def test_bundle_upload_then_bind_from_cache(self, server, client):
        _handshake(client)
        data, fingerprint = _bundle({"base": 40})
        reply = client.call(
            {
                "op": "bundle",
                "fingerprint": fingerprint,
                "data": wire.encode_bytes(data),
            }
        )
        assert reply == {"ok": True, "fingerprint": fingerprint}
        # A second session binds without re-uploading.
        other = _Client(server)
        try:
            _handshake(other)
            reply = other.call(
                {"op": "bind", "fingerprint": fingerprint}
            )
            assert reply == {"ok": True, "have": True}
        finally:
            other.close()

    def test_bundle_fingerprint_mismatch_rejected(self, client):
        _handshake(client)
        data, _ = _bundle({"base": 1})
        reply = client.call(
            {
                "op": "bundle",
                "fingerprint": "f" * 64,
                "data": wire.encode_bytes(data),
            }
        )
        assert reply["ok"] is False
        assert "fingerprint" in reply["error"]


class TestChunks:
    def _bind(self, client, context):
        data, fingerprint = _bundle(context)
        reply = client.call(
            {
                "op": "bundle",
                "fingerprint": fingerprint,
                "data": wire.encode_bytes(data),
            }
        )
        assert reply["ok"] is True

    def test_chunk_without_bind_is_an_error(self, client):
        _handshake(client)
        reply = client.call(
            {
                "op": "chunk",
                "fn": "tests.parallel.test_worker:_memo_probe_chunk",
                "index": 0,
                "arg": wire.encode_bytes(pickle.dumps(1)),
            }
        )
        assert reply["ok"] is False
        assert "no context bound" in reply["error"]

    def test_chunk_runs_against_the_bound_context(self, client):
        _handshake(client)
        self._bind(client, {"base": 40})
        reply = client.call(
            {
                "op": "chunk",
                "fn": "tests.parallel.test_worker:_memo_probe_chunk",
                "index": 0,
                "arg": wire.encode_bytes(pickle.dumps(2)),
            }
        )
        assert reply["ok"] is True
        result, stats = pickle.loads(
            wire.decode_bytes(reply["outcome"])
        )
        assert result == 42
        assert stats.worker == 0
        assert stats.items == 1

    def test_module_gating_rejects_foreign_callables(self, client):
        _handshake(client)
        self._bind(client, {"base": 0})
        reply = client.call(
            {
                "op": "chunk",
                "fn": "os:system",
                "index": 0,
                "arg": wire.encode_bytes(pickle.dumps("true")),
            }
        )
        assert reply["ok"] is False
        assert "outside the allowed prefixes" in reply["error"]

    def test_chunk_exception_ships_back_as_error(self, client):
        _handshake(client)
        self._bind(client, {"base": 0})
        reply = client.call(
            {
                "op": "chunk",
                "fn": "tests.parallel.test_worker:_memo_probe_chunk",
                "index": 0,
                # A string arg makes the chunk's addition raise.
                "arg": wire.encode_bytes(pickle.dumps("boom")),
            }
        )
        assert reply["ok"] is False
        assert "TypeError" in reply["error"]


class TestShutdown:
    def test_shutdown_refused_by_default(self, client):
        _handshake(client)
        reply = client.call({"op": "shutdown"})
        assert reply["ok"] is False
        assert "--allow-shutdown" in reply["error"]

    def test_shutdown_honored_when_allowed(self):
        worker = WorkerServer(allow_shutdown=True)
        thread = worker.serve_in_thread()
        c = _Client(worker)
        try:
            _handshake(c)
            assert c.call({"op": "shutdown"})["ok"] is True
        finally:
            c.close()
        thread.join(timeout=10)
        assert not thread.is_alive()


class TestTelemetryOp:
    def test_ops_and_bundle_loads_are_histogrammed(self, server):
        c = _Client(server)
        try:
            _handshake(c)
            data, fingerprint = _bundle({"base": 10})
            c.call(
                {
                    "op": "bundle",
                    "fingerprint": fingerprint,
                    "data": wire.encode_bytes(data),
                }
            )
            c.call(
                {
                    "op": "chunk",
                    "fn": "tests.parallel.test_worker:_memo_probe_chunk",
                    "index": 0,
                    "arg": wire.encode_bytes(pickle.dumps(1)),
                }
            )
            reply = c.call({"op": "telemetry"})
        finally:
            c.close()
        assert reply["ok"] is True
        assert reply["server"] == "repro-worker"
        snapshot = reply["telemetry"]
        histograms = snapshot["histograms"]
        assert histograms["worker.op.hello"]["count"] >= 1
        assert histograms["worker.op.chunk"]["count"] >= 1
        assert histograms["worker.bundle.load"]["count"] >= 1
        assert histograms["worker.chunk"]["count"] >= 1
        counters = snapshot["counters"]
        assert counters["worker.chunks"]["total"] >= 1
        assert counters["worker.bundle.loads"]["total"] >= 1

    def test_bundle_cache_hits_and_misses_are_counted(self, server):
        c = _Client(server)
        try:
            _handshake(c)
            data, fingerprint = _bundle({"base": 77})
            c.call(
                {
                    "op": "bundle",
                    "fingerprint": fingerprint,
                    "data": wire.encode_bytes(data),
                }
            )
            before = c.call({"op": "telemetry"})["telemetry"]
            # Binding a cached fingerprint is a hit; an unknown one
            # is a miss.
            c.call({"op": "bind", "fingerprint": fingerprint})
            c.call({"op": "bind", "fingerprint": "0" * 64})
            after = c.call({"op": "telemetry"})["telemetry"]
        finally:
            c.close()
        def total(snap, name):
            return snap["counters"].get(name, {"total": 0})["total"]

        assert total(after, "worker.bundle.hits") == (
            total(before, "worker.bundle.hits") + 1
        )
        assert total(after, "worker.bundle.misses") == (
            total(before, "worker.bundle.misses") + 1
        )

    def test_worker_telemetry_is_server_local(self, server):
        from repro.obs.telemetry import TEL_STATE

        assert TEL_STATE.enabled is False
        c = _Client(server)
        try:
            _handshake(c)
            reply = c.call({"op": "telemetry"})
        finally:
            c.close()
        # Always on for the worker's own server object, without
        # touching the process-global switch.
        assert reply["ok"] is True
        assert reply["telemetry"]["histograms"]

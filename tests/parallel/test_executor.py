"""Tests for the process-backed chunk executor.

The chunk functions live at module level: the executor sends them to
workers by reference, like the verification layers' own chunk
functions.
"""

import os

import pytest

from repro.parallel import ParallelExecutor, run_chunked


def _square_chunk(context, arg):
    return arg * arg, {"items": 1}


def _context_chunk(context, arg):
    return (context["base"] + arg, os.getpid()), {"items": 1}


def _counting_chunk(context, indices):
    total = sum(indices)
    return total, {
        "items": len(indices),
        "cache_hits": total,
        "rewrite_steps": 2 * len(indices),
    }


class TestInline:
    def test_workers_1_runs_in_process(self):
        with ParallelExecutor(1, context=None) as executor:
            results = executor.map(_square_chunk, [3, 1, 2])
        assert results == [9, 1, 4]
        assert [w.worker for w in executor.worker_stats] == [0, 1, 2]

    def test_map_outside_context_manager_rejected(self):
        executor = ParallelExecutor(1)
        with pytest.raises(RuntimeError):
            executor.map(_square_chunk, [1])


class TestForked:
    def test_results_preserve_argument_order(self):
        results, stats = run_chunked(
            _square_chunk, None, list(range(16)), workers=4
        )
        assert results == [i * i for i in range(16)]
        assert [w.worker for w in stats] == list(range(16))

    def test_context_inherited_without_pickling(self):
        # The context holds a lambda — unpicklable, so reaching the
        # workers proves fork inheritance, not argument pickling.
        context = {"base": 100, "unpicklable": lambda: None}
        results, _ = run_chunked(
            _context_chunk, context, [1, 2, 3], workers=2
        )
        values = [value for value, _pid in results]
        assert values == [101, 102, 103]

    def test_worker_stats_carry_chunk_counters(self):
        chunks = [range(0, 3), range(3, 5)]
        results, stats = run_chunked(
            _counting_chunk, None, chunks, workers=2
        )
        assert results == [3, 7]
        assert [w.items for w in stats] == [3, 2]
        assert [w.cache_hits for w in stats] == [3, 7]
        assert [w.rewrite_steps for w in stats] == [6, 4]
        assert all(w.wall_time >= 0 for w in stats)

    def test_map_reusable_across_calls(self):
        with ParallelExecutor(2, context=None) as executor:
            first = executor.map(_square_chunk, [1, 2])
            second = executor.map(_square_chunk, [3])
        assert first == [1, 4]
        assert second == [9]
        assert len(executor.worker_stats) == 3

"""Serial-vs-parallel equivalence: every check must produce a
bit-identical report for any worker count (the contract the parallel
subsystem is built around), on both passing and failing inputs."""

import dataclasses

import pytest

from repro.algebraic.algebra import TraceAlgebra
from repro.algebraic.completeness import (
    check_coverage,
    check_sufficient_completeness,
)
from repro.algebraic.equations import ConditionalEquation
from repro.algebraic.signature import AlgebraicSignature
from repro.algebraic.spec import AlgebraicSpec
from repro.applications import courses
from repro.core.framework import DesignFramework
from repro.logic import formulas as fm
from repro.logic.sorts import STATE
from repro.logic.terms import Var
from repro.parallel import StatsSink
from repro.refinement.first_second import (
    check_refinement as check_first_second,
)
from repro.refinement.interpretation import Interpretation
from repro.refinement.second_third import (
    check_refinement as check_second_third,
)
from repro.rpr.parser import parse_schema

WORKERS = 4


def _algebra() -> TraceAlgebra:
    return TraceAlgebra(courses.courses_algebraic())


def _uncovered_spec() -> AlgebraicSpec:
    """A spec whose coverage check fails with many gaps (exercises the
    mid-stream uncovered cap in the parallel merger)."""
    signature = AlgebraicSignature()
    course = signature.add_parameter_sort("course")
    signature.add_parameter_values(course, ["c1", "c2"])
    signature.add_query("q", [course])
    signature.add_query("r", [course])
    signature.add_initial()
    signature.add_update("touch", [course])
    c = Var("c", course)
    u = Var("U", STATE)
    touched = signature.apply_update("touch", c, u)
    only_c1 = fm.Equals(c, signature.value(course, "c1"))
    equations = (
        ConditionalEquation(
            signature.apply_query("q", c, signature.initial_term()),
            signature.false(),
        ),
        ConditionalEquation(
            signature.apply_query("r", c, signature.initial_term()),
            signature.false(),
        ),
        ConditionalEquation(
            signature.apply_query("q", c, touched),
            signature.true(),
            only_c1,
        ),
        ConditionalEquation(
            signature.apply_query("r", c, touched),
            signature.false(),
        ),
    )
    return AlgebraicSpec(signature, equations)


class TestExploreEquivalence:
    def test_graph_identical_at_workers_4(self):
        serial = _algebra().explore()
        sink = StatsSink()
        parallel = _algebra().explore(workers=WORKERS, stats=sink)
        # Same snapshots in the same (BFS discovery) order, same
        # witness traces, same edges, same truncation verdict.
        assert list(parallel.states) == list(serial.states)
        assert parallel.states == serial.states
        assert parallel.transitions == serial.transitions
        assert parallel.initial == serial.initial
        assert parallel.truncated is serial.truncated
        [record] = sink.records
        assert record.label == "explore"
        assert record.workers == WORKERS
        assert record.states_checked > 0

    def test_truncation_identical(self):
        serial = _algebra().explore(max_states=7)
        parallel = _algebra().explore(max_states=7, workers=WORKERS)
        assert serial.truncated and parallel.truncated
        assert list(parallel.states) == list(serial.states)
        assert parallel.transitions == serial.transitions

    def test_max_depth_identical(self):
        serial = _algebra().explore(max_depth=1)
        parallel = _algebra().explore(max_depth=1, workers=WORKERS)
        assert list(parallel.states) == list(serial.states)
        assert parallel.transitions == serial.transitions


class TestCompletenessEquivalence:
    def test_passing_spec(self):
        spec = courses.courses_algebraic()
        serial = check_sufficient_completeness(spec, depth=2)
        parallel = check_sufficient_completeness(
            spec, depth=2, workers=WORKERS
        )
        assert parallel == serial
        assert parallel.ok

    @pytest.mark.parametrize("depth", [1, 2])
    def test_failing_spec_hits_same_cap(self, depth):
        spec = _uncovered_spec()
        serial = check_coverage(spec, depth=depth)
        parallel = check_coverage(spec, depth=depth, workers=WORKERS)
        assert parallel == serial
        assert not parallel.ok
        assert parallel.uncovered == serial.uncovered
        assert parallel.traces_checked == serial.traces_checked


class TestRefinementEquivalence:
    @pytest.mark.slow
    def test_first_second_bundle_identical(self):
        info = courses.courses_information()
        carriers = courses.courses_information_carriers()
        serial = check_first_second(info, carriers, _algebra())
        sink = StatsSink()
        parallel = check_first_second(
            info, carriers, _algebra(), workers=WORKERS, stats=sink
        )
        assert parallel == serial
        assert parallel.ok
        labels = [record.label for record in sink.records]
        assert "static" in labels
        assert "reachable" in labels
        assert "transitions" in labels

    def test_second_third_identical(self):
        spec = courses.courses_algebraic()
        schema = parse_schema(courses.courses_schema_source())
        serial = check_second_third(spec, schema)
        parallel = check_second_third(spec, schema, workers=WORKERS)
        assert parallel == serial
        assert parallel.ok
        assert parallel.states_checked == 25


class TestFrameworkEquivalence:
    @pytest.mark.slow
    def test_verify_report_identical_and_stats_attached(self):
        framework = DesignFramework.from_sources(
            information=courses.courses_information(),
            algebraic=courses.courses_algebraic(),
            schema_source=courses.courses_schema_source(),
            carriers=courses.courses_information_carriers(),
        )
        serial = framework.verify()
        parallel = framework.verify(workers=WORKERS)
        assert serial.stats is None  # stats are opt-in for serial runs
        assert parallel.stats is not None
        assert dataclasses.replace(parallel, stats=None) == serial
        labels = [part.label for part in parallel.stats.parts]
        assert labels == [
            "explore",
            "coverage",
            "static",
            "reachable",
            "valid-enumeration",
            "transitions",
            "grammar",
            "second-third",
        ]
        assert parallel.stats.workers == WORKERS

    def test_collect_stats_without_workers(self):
        framework = DesignFramework.from_sources(
            information=courses.courses_information(),
            algebraic=courses.courses_algebraic(),
            schema_source=courses.courses_schema_source(),
            carriers=courses.courses_information_carriers(),
        )
        report = framework.verify(collect_stats=True)
        assert report.stats is not None
        assert report.stats.workers == 1
        assert report.stats.states_checked > 0

"""Unit tests for the work partitioner."""

from repro.parallel import chunk_ranges, chunk_sizes


class TestChunkSizes:
    def test_even_split(self):
        assert chunk_sizes(12, 4) == [3, 3, 3, 3]

    def test_remainder_goes_to_leading_chunks(self):
        assert chunk_sizes(14, 4) == [4, 4, 3, 3]

    def test_more_chunks_than_items(self):
        assert chunk_sizes(2, 5) == [1, 1]

    def test_empty(self):
        assert chunk_sizes(0, 4) == []

    def test_sizes_sum_to_total(self):
        for total in range(0, 40):
            for chunks in range(1, 9):
                sizes = chunk_sizes(total, chunks)
                assert sum(sizes) == total
                assert all(size > 0 for size in sizes)
                # Balanced: no two chunks differ by more than one.
                if sizes:
                    assert max(sizes) - min(sizes) <= 1


class TestChunkRanges:
    def test_contiguous_cover(self):
        for total in range(0, 40):
            for chunks in range(1, 9):
                ranges = chunk_ranges(total, chunks)
                flat = [i for r in ranges for i in r]
                assert flat == list(range(total))

    def test_single_chunk_is_whole_range(self):
        assert chunk_ranges(7, 1) == [range(0, 7)]

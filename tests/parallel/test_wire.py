"""Tests for the length-prefixed JSON frame protocol."""

import io
import struct

import pytest

from repro.parallel import wire


def _roundtrip(payload: dict) -> dict:
    buffer = io.BytesIO()
    wire.send_frame(buffer, payload)
    buffer.seek(0)
    return wire.recv_frame(buffer)


class TestFrames:
    def test_roundtrip(self):
        payload = {"op": "chunk", "index": 3, "arg": "aGk="}
        assert _roundtrip(payload) == payload

    def test_roundtrip_unicode(self):
        payload = {"op": "hello", "note": "trädgård"}
        assert _roundtrip(payload) == payload

    def test_eof_at_frame_boundary_is_none(self):
        assert wire.recv_frame(io.BytesIO(b"")) is None

    def test_truncated_length_prefix_raises(self):
        with pytest.raises(wire.WireError):
            wire.recv_frame(io.BytesIO(b"\x00\x00"))

    def test_truncated_body_raises(self):
        buffer = io.BytesIO()
        wire.send_frame(buffer, {"op": "bye"})
        data = buffer.getvalue()
        with pytest.raises(wire.WireError):
            wire.recv_frame(io.BytesIO(data[:-2]))

    def test_oversized_frame_rejected(self):
        prefix = struct.pack(">I", wire.MAX_FRAME + 1)
        with pytest.raises(wire.WireError):
            wire.recv_frame(io.BytesIO(prefix))

    def test_oversized_send_rejected(self):
        with pytest.raises(wire.WireError):
            wire.send_frame(
                io.BytesIO(), {"data": "x" * (wire.MAX_FRAME + 1)}
            )

    def test_non_object_frame_rejected(self):
        body = b"[1, 2, 3]"
        data = struct.pack(">I", len(body)) + body
        with pytest.raises(wire.WireError):
            wire.recv_frame(io.BytesIO(data))

    def test_invalid_json_rejected(self):
        body = b"{not json"
        data = struct.pack(">I", len(body)) + body
        with pytest.raises(wire.WireError):
            wire.recv_frame(io.BytesIO(data))

    def test_back_to_back_frames(self):
        buffer = io.BytesIO()
        wire.send_frame(buffer, {"n": 1})
        wire.send_frame(buffer, {"n": 2})
        buffer.seek(0)
        assert wire.recv_frame(buffer) == {"n": 1}
        assert wire.recv_frame(buffer) == {"n": 2}
        assert wire.recv_frame(buffer) is None


class TestBytesCodec:
    def test_roundtrip(self):
        data = bytes(range(256))
        assert wire.decode_bytes(wire.encode_bytes(data)) == data

    def test_encoded_is_json_safe_text(self):
        encoded = wire.encode_bytes(b"\x00\xff")
        assert isinstance(encoded, str)
        assert encoded.isascii()

    def test_invalid_base64_rejected(self):
        with pytest.raises(Exception):
            wire.decode_bytes("!!not base64!!")

"""Tests for the pluggable executor backends.

The cross-backend contract under test is the virtual-worker model:
chunk ``i`` runs on virtual worker ``i mod workers`` and every
virtual worker starts from its own unpickled copy of the context —
so results *and* per-chunk counter stats are identical across
``inline``, ``fork`` and ``socket`` for a fixed worker count.
``wall_time`` and ``interned_terms`` are ambient (timing and
process-global intern growth) and excluded from the comparisons.

Chunk functions live at module level: workers resolve them by
``module:qualname`` reference.
"""

import gc
import weakref

import pytest

from repro.parallel import (
    ParallelExecutor,
    run_chunked,
)
from repro.parallel.backends import (
    BACKEND_NAMES,
    ExecutorBackendError,
    ForkBackend,
    InlineBackend,
    SocketBackend,
    active_backend,
    bundle_context,
    make_backend,
    parse_address,
    resolve_backend,
    use_backend,
)
from repro.parallel.worker import WorkerServer


class _MemoContext:
    """A context whose counters depend on its own warmth — the shape
    of the rewrite engine's memo cache, reduced to its essence."""

    def __init__(self):
        self.memo = {}

    def compute(self, n):
        if n in self.memo:
            return self.memo[n], 1, 0
        value = n * n
        self.memo[n] = value
        return value, 0, 1


def _memo_chunk(context, ns):
    total = hits = misses = 0
    for n in ns:
        value, hit, miss = context.compute(n)
        total += value
        hits += hit
        misses += miss
    return total, {
        "items": len(ns),
        "cache_hits": hits,
        "cache_misses": misses,
    }


def _square_chunk(context, arg):
    return arg * arg, {"items": 1}


def _failing_chunk(context, arg):
    raise ValueError(f"chunk {arg} exploded")


#: Chunk args with deliberate overlap, so memo warmth shows up in the
#: counters: which hits a worker sees depends only on which chunks it
#: was assigned and in what order.
_MEMO_ARGS = [
    [1, 2, 3],
    [2, 3, 4],
    [1, 4, 5],
    [5, 1, 2],
    [3, 3, 6],
    [6, 2, 1],
]


def _counters(stats):
    """The deterministic per-chunk counter records (ambient fields
    excluded)."""
    return [
        {
            "worker": w.worker,
            "items": w.items,
            "cache_hits": w.cache_hits,
            "cache_misses": w.cache_misses,
            "rewrite_steps": w.rewrite_steps,
            "dispatch_hits": w.dispatch_hits,
        }
        for w in stats
    ]


@pytest.fixture(scope="module")
def worker_servers():
    """Two in-thread workers, as a CI topology in miniature."""
    servers = [
        WorkerServer(module_prefixes=("repro.", "tests."))
        for _ in range(2)
    ]
    for server in servers:
        server.serve_in_thread()
    yield servers
    for server in servers:
        server.shutdown()


class TestRegistry:
    def test_names(self):
        assert BACKEND_NAMES == ("inline", "fork", "socket")

    def test_make_inline_and_fork(self):
        assert isinstance(make_backend("inline"), InlineBackend)
        assert isinstance(make_backend("fork"), ForkBackend)

    def test_make_socket_needs_addresses(self):
        with pytest.raises(ExecutorBackendError):
            make_backend("socket")
        backend = make_backend("socket", addresses=["localhost:7474"])
        assert isinstance(backend, SocketBackend)
        assert backend.addresses == (("localhost", 7474),)

    def test_unknown_name_rejected(self):
        with pytest.raises(ExecutorBackendError):
            make_backend("threads")

    def test_parse_address(self):
        assert parse_address("10.0.0.2:9000") == ("10.0.0.2", 9000)
        with pytest.raises(ExecutorBackendError):
            parse_address("no-port")
        with pytest.raises(ExecutorBackendError):
            parse_address("host:abc")

    def test_default_backend_is_fork(self):
        assert isinstance(active_backend(), ForkBackend)
        assert resolve_backend(None) is active_backend()

    def test_use_backend_scopes_the_active_backend(self):
        inline = make_backend("inline")
        with use_backend(inline):
            assert active_backend() is inline
            assert resolve_backend(None) is inline
        assert isinstance(active_backend(), ForkBackend)

    def test_use_backend_none_is_a_noop_scope(self):
        before = active_backend()
        with use_backend(None):
            assert active_backend() is before

    def test_resolve_explicit_instance_wins(self):
        inline = make_backend("inline")
        with use_backend("fork"):
            assert resolve_backend(inline) is inline
            assert resolve_backend("inline") is inline

    def test_bundle_context_none_for_unpicklable(self):
        assert bundle_context(lambda: None) is None
        assert bundle_context({"n": 1}) is not None


class TestCrossBackendIdentity:
    """Same results and same canonicalized stats on every backend."""

    def _run(self, backend, workers):
        return run_chunked(
            _memo_chunk,
            _MemoContext(),
            _MEMO_ARGS,
            workers=workers,
            backend=backend,
        )

    @pytest.mark.parametrize("workers", [1, 4])
    def test_inline_fork_socket_agree(self, worker_servers, workers):
        addresses = [server.address for server in worker_servers]
        socket_backend = make_backend("socket", addresses=addresses)
        outcomes = {}
        for name, backend in [
            ("inline", "inline"),
            ("fork", "fork"),
            ("socket", socket_backend),
        ]:
            results, stats = self._run(backend, workers)
            outcomes[name] = (results, _counters(stats))
        assert outcomes["inline"] == outcomes["fork"]
        assert outcomes["inline"] == outcomes["socket"]

    def test_fork_is_run_to_run_deterministic(self):
        first = self._run("fork", 3)
        second = self._run("fork", 3)
        assert first[0] == second[0]
        assert _counters(first[1]) == _counters(second[1])

    def test_worker_counts_differ_only_in_warmth(self):
        # Different W means different chunk subsequences per virtual
        # worker — results stay identical, counters may not.
        results_2, _ = self._run("inline", 2)
        results_4, _ = self._run("inline", 4)
        assert results_2 == results_4

    def test_socket_chunk_error_propagates(self, worker_servers):
        addresses = [server.address for server in worker_servers]
        with pytest.raises(Exception, match="exploded"):
            run_chunked(
                _failing_chunk,
                {"ok": True},
                [1, 2],
                workers=2,
                backend=make_backend("socket", addresses=addresses),
            )

    def test_socket_unpicklable_context_is_an_error(self, worker_servers):
        addresses = [server.address for server in worker_servers]
        backend = make_backend("socket", addresses=addresses)
        with pytest.raises(ExecutorBackendError):
            backend.open_pool(2, lambda: None)

    def test_socket_unreachable_worker_is_an_error(self):
        backend = make_backend("socket", addresses=["127.0.0.1:1"])
        with pytest.raises(ExecutorBackendError):
            backend.open_pool(2, {"n": 1})


def _scrub_ambient(node):
    """Zero the ambient stats fields (timing, process-global intern
    growth) recursively; everything else must be identical."""
    if isinstance(node, dict):
        return {
            key: (0 if key in ("wall_time", "interned_terms")
                  else _scrub_ambient(value))
            for key, value in node.items()
        }
    if isinstance(node, list):
        return [_scrub_ambient(item) for item in node]
    return node


class TestSpecLevelIdentity:
    """The acceptance bar: a full framework verification produces the
    same report and the same canonicalized stats on every backend, at
    workers 1 and 4."""

    @pytest.mark.parametrize("workers", [1, 4])
    def test_verify_identical_across_backends(
        self, worker_servers, workers
    ):
        from repro.applications.library import library_framework

        addresses = [server.address for server in worker_servers]
        outcomes = {}
        for name in ("inline", "fork", "socket"):
            backend = make_backend(
                name,
                addresses=addresses if name == "socket" else None,
            )
            report = library_framework().verify(
                workers=workers, collect_stats=True, backend=backend
            )
            outcomes[name] = (
                str(report),
                _scrub_ambient(report.stats.to_dict()),
            )
        assert outcomes["inline"] == outcomes["fork"]
        assert outcomes["inline"] == outcomes["socket"]

    def test_verify_workers_4_matches_serial_report(self):
        from repro.applications.library import library_framework

        serial = library_framework().verify(workers=1)
        fanned = library_framework().verify(workers=4, backend="inline")
        assert str(fanned) == str(serial)


class TestForkDegradation:
    """Fork unavailable -> the executor's in-process loop, silently
    and correctly (the historical contract: ``workers=N`` is always
    safe to request)."""

    def test_forced_spawn_failure_degrades_to_in_process(
        self, monkeypatch
    ):
        import repro.parallel.backends as backends

        def refuse(mp_context, conn, bundle):
            raise OSError("process creation forced to fail")

        monkeypatch.setattr(backends, "_spawn_fork_worker", refuse)
        assert ForkBackend().open_pool(4, {"n": 1}) is None
        results, stats = run_chunked(
            _memo_chunk,
            _MemoContext(),
            _MEMO_ARGS,
            workers=4,
            backend="fork",
        )
        serial_results, serial_stats = run_chunked(
            _memo_chunk,
            _MemoContext(),
            _MEMO_ARGS,
            workers=1,
        )
        # Same chunks, same order, same live context: results and
        # per-chunk counters match the serial run exactly.
        assert results == serial_results
        assert _counters(stats) == _counters(serial_stats)

    def test_forced_spawn_failure_verify_matches_serial(
        self, monkeypatch
    ):
        import repro.parallel.backends as backends

        from repro.applications.library import library_framework

        def refuse(mp_context, conn, bundle):
            raise OSError("process creation forced to fail")

        monkeypatch.setattr(backends, "_spawn_fork_worker", refuse)
        degraded = library_framework().verify(workers=4)
        serial = library_framework().verify(workers=1)
        # The report — verdicts, counts, everything rendered — is
        # byte-identical to the serial run.  (Counter *stats* are
        # compared at fixed W across backends elsewhere: the chunk
        # plan itself depends on W, so stats are W-dependent by
        # design.)
        assert str(degraded) == str(serial)
        # And the degraded run is deterministic.
        again = library_framework().verify(workers=4)
        assert str(again) == str(degraded)
        assert _scrub_ambient(again.stats.to_dict()) == _scrub_ambient(
            degraded.stats.to_dict()
        )


class TestContextRelease:
    def test_exit_drops_the_context_reference(self):
        class Blob:
            pass

        context = Blob()
        ref = weakref.ref(context)
        with ParallelExecutor(2, context=context) as executor:
            results = executor.map(_square_chunk, [1, 2, 3])
        assert results == [1, 4, 9]
        # The executor outlives its with-block (callers read
        # worker_stats off it) but must not pin the context.
        assert executor.context is None
        del context
        gc.collect()
        assert ref() is None
        assert len(executor.worker_stats) == 3

    def test_exit_drops_context_when_no_pool_opened(self):
        class Blob:
            pass

        context = Blob()
        ref = weakref.ref(context)
        with ParallelExecutor(1, context=context) as executor:
            executor.map(_square_chunk, [2])
        del context
        gc.collect()
        assert ref() is None
        assert executor.context is None

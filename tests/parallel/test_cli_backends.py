"""CLI surface of the executor backends: ``verify --backend`` /
``--workers-addr`` validation and the ``repro worker`` process."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.parallel.worker import WorkerServer


class TestVerifyBackendFlags:
    def test_socket_without_addresses_is_exit_2(self, capsys):
        code = main(["verify", "courses", "--backend", "socket"])
        assert code == 2
        assert "--workers-addr" in capsys.readouterr().err

    def test_addresses_with_inline_backend_is_exit_2(self, capsys):
        code = main(
            [
                "verify",
                "courses",
                "--backend",
                "inline",
                "--workers-addr",
                "127.0.0.1:7000",
            ]
        )
        assert code == 2
        assert "socket" in capsys.readouterr().err

    def test_unreachable_worker_is_exit_2(self, capsys):
        code = main(
            [
                "verify",
                "courses",
                "--workers",
                "2",
                "--workers-addr",
                "127.0.0.1:1",
            ]
        )
        assert code == 2
        assert "worker" in capsys.readouterr().err.lower()

    def test_addresses_imply_the_socket_backend(self, capsys):
        server = WorkerServer()
        server.serve_in_thread()
        try:
            code = main(
                [
                    "verify",
                    "courses",
                    "--workers",
                    "2",
                    "--workers-addr",
                    server.address,
                ]
            )
        finally:
            server.shutdown()
        captured = capsys.readouterr()
        assert code == 0
        assert "full design verified: True" in captured.out

    def test_inline_backend_verifies(self, capsys):
        code = main(
            ["verify", "courses", "--workers", "2", "--backend", "inline"]
        )
        assert code == 0
        assert "full design verified: True" in capsys.readouterr().out


class TestWorkerCommand:
    def test_worker_process_serves_and_writes_port_file(self, tmp_path):
        port_file = tmp_path / "port"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "worker",
                "--port",
                "0",
                "--port-file",
                str(port_file),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.monotonic() + 30
            while not port_file.exists():
                assert process.poll() is None, process.stderr.read()
                assert time.monotonic() < deadline
                time.sleep(0.05)
            port = int(port_file.read_text().strip())
            assert port > 0

            # The ready line is the harness contract.
            line = process.stdout.readline()
            assert f"worker listening on 127.0.0.1:{port}" in line
        finally:
            process.send_signal(signal.SIGINT)
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
        assert process.returncode == 0

"""Tests for repro.logic.structures."""

import pytest

from repro.errors import EvaluationError, SignatureError
from repro.logic.signature import Signature
from repro.logic.sorts import Sort
from repro.logic.structures import Structure

STUDENT = Sort("student")
COURSE = Sort("course")


@pytest.fixture()
def signature():
    sig = Signature(sorts=[STUDENT, COURSE])
    sig.add_predicate("takes", [STUDENT, COURSE], db=True)
    sig.add_predicate("offered", [COURSE], db=True)
    sig.add_constant("s1", STUDENT)
    sig.add_function("best", [COURSE], STUDENT)
    return sig


CARRIERS = {STUDENT: ["s1", "s2"], COURSE: ["c1", "c2"]}


class TestConstruction:
    def test_missing_relations_default_empty(self, signature):
        structure = Structure(signature, CARRIERS)
        assert structure.relation("takes") == frozenset()

    def test_carrier_by_name(self, signature):
        structure = Structure(signature, {"student": ["s1"], "course": []})
        assert structure.carrier(STUDENT) == ("s1",)

    def test_carrier_deduplicates_preserving_order(self, signature):
        structure = Structure(
            signature, {STUDENT: ["s1", "s2", "s1"], COURSE: []}
        )
        assert structure.carrier(STUDENT) == ("s1", "s2")

    def test_undeclared_relation_rejected(self, signature):
        with pytest.raises(SignatureError):
            Structure(signature, CARRIERS, relations={"nope": set()})

    def test_wrong_arity_tuple_rejected(self, signature):
        with pytest.raises(EvaluationError):
            Structure(
                signature, CARRIERS, relations={"offered": {("c1", "c2")}}
            )

    def test_undeclared_function_rejected(self, signature):
        with pytest.raises(SignatureError):
            Structure(signature, CARRIERS, functions={"nope": 1})


class TestFunctions:
    def test_constant_defaults_to_own_name(self, signature):
        structure = Structure(signature, CARRIERS)
        assert structure.apply_function("s1", ()) == "s1"

    def test_explicit_constant_value(self, signature):
        structure = Structure(signature, CARRIERS, functions={"s1": "s2"})
        assert structure.apply_function("s1", ()) == "s2"

    def test_callable_interpretation(self, signature):
        structure = Structure(
            signature, CARRIERS, functions={"best": lambda c: "s1"}
        )
        assert structure.apply_function("best", ("c1",)) == "s1"

    def test_table_interpretation(self, signature):
        structure = Structure(
            signature, CARRIERS, functions={"best": {("c1",): "s2"}}
        )
        assert structure.apply_function("best", ("c1",)) == "s2"

    def test_table_missing_entry(self, signature):
        structure = Structure(signature, CARRIERS, functions={"best": {}})
        with pytest.raises(EvaluationError):
            structure.apply_function("best", ("c1",))

    def test_uninterpreted_nonconstant_raises(self, signature):
        structure = Structure(signature, CARRIERS)
        with pytest.raises(EvaluationError):
            structure.apply_function("best", ("c1",))


class TestUpdatesAndEquality:
    def test_with_relation_immutably_updates(self, signature):
        base = Structure(signature, CARRIERS)
        updated = base.with_relation("offered", {("c1",)})
        assert base.relation("offered") == frozenset()
        assert updated.relation("offered") == frozenset({("c1",)})

    def test_insert_delete(self, signature):
        base = Structure(signature, CARRIERS)
        inserted = base.insert("offered", ("c1",))
        assert inserted.holds("offered", ("c1",))
        deleted = inserted.delete("offered", ("c1",))
        assert deleted == base

    def test_with_relations_batch(self, signature):
        base = Structure(signature, CARRIERS)
        updated = base.with_relations(
            {"offered": {("c1",)}, "takes": {("s1", "c1")}}
        )
        assert updated.holds("takes", ("s1", "c1"))

    def test_equality_by_extensions(self, signature):
        a = Structure(signature, CARRIERS, relations={"offered": {("c1",)}})
        b = Structure(signature, CARRIERS).insert("offered", ("c1",))
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_on_different_carriers(self, signature):
        a = Structure(signature, CARRIERS)
        b = Structure(signature, {STUDENT: ["s1"], COURSE: ["c1"]})
        assert a != b

"""Tests for repro.logic.semantics (Tarskian satisfaction)."""

import pytest

from repro.errors import EvaluationError
from repro.logic import formulas as fm
from repro.logic.parser import parse_formula
from repro.logic.semantics import (
    all_valuations,
    evaluate_term,
    models_all,
    satisfies,
)
from repro.logic.signature import Signature
from repro.logic.sorts import Sort
from repro.logic.structures import Structure
from repro.logic.terms import Var

STUDENT = Sort("student")
COURSE = Sort("course")


@pytest.fixture()
def signature():
    sig = Signature(sorts=[STUDENT, COURSE])
    sig.add_predicate("takes", [STUDENT, COURSE], db=True)
    sig.add_predicate("offered", [COURSE], db=True)
    sig.add_constant("c1", COURSE)
    return sig


@pytest.fixture()
def structure(signature):
    return Structure(
        signature,
        {STUDENT: ["s1", "s2"], COURSE: ["c1", "c2"]},
        relations={
            "offered": {("c1",)},
            "takes": {("s1", "c1")},
        },
    )


def parse(signature, text, **kw):
    return parse_formula(text, signature, **kw)


class TestTermEvaluation:
    def test_constant(self, signature, structure):
        term = signature and structure
        from repro.logic.terms import App

        c1 = App(signature.function("c1"), ())
        assert evaluate_term(structure, c1) == "c1"

    def test_variable_from_valuation(self, structure):
        x = Var("x", COURSE)
        assert evaluate_term(structure, x, {x: "c2"}) == "c2"

    def test_unbound_variable_raises(self, structure):
        with pytest.raises(EvaluationError):
            evaluate_term(structure, Var("x", COURSE))


class TestSatisfaction:
    def test_atom_true(self, signature, structure):
        assert satisfies(structure, parse(signature, "offered(c1)"))

    def test_atom_false(self, signature, structure):
        s = Var("s", STUDENT)
        c = Var("c", COURSE)
        atom = fm.Atom(signature.predicate("takes"), (s, c))
        assert not satisfies(structure, atom, {s: "s2", c: "c1"})

    def test_negation(self, signature, structure):
        assert satisfies(structure, parse(signature, "~takes(s, c)",
                                          variables={"s": STUDENT,
                                                     "c": COURSE}),
                         {Var("s", STUDENT): "s2", Var("c", COURSE): "c2"})

    def test_connective_truth_tables(self, signature, structure):
        t = fm.TRUE
        f = fm.FALSE
        assert satisfies(structure, fm.And(t, t))
        assert not satisfies(structure, fm.And(t, f))
        assert satisfies(structure, fm.Or(f, t))
        assert satisfies(structure, fm.Implies(f, f))
        assert not satisfies(structure, fm.Implies(t, f))
        assert satisfies(structure, fm.Iff(f, f))
        assert not satisfies(structure, fm.Iff(t, f))

    def test_equals(self, signature, structure):
        x = Var("x", COURSE)
        y = Var("y", COURSE)
        assert satisfies(
            structure, fm.Equals(x, y), {x: "c1", y: "c1"}
        )
        assert not satisfies(
            structure, fm.Equals(x, y), {x: "c1", y: "c2"}
        )

    def test_exists_over_carrier(self, signature, structure):
        formula = parse(
            signature, "exists s:student, c:course. takes(s, c)"
        )
        assert satisfies(structure, formula)

    def test_forall_over_carrier(self, signature, structure):
        formula = parse(signature, "forall c:course. offered(c)")
        assert not satisfies(structure, formula)

    def test_static_constraint_of_the_paper(self, signature, structure):
        constraint = parse(
            signature,
            "~exists s:student, c:course. takes(s, c) & ~offered(c)",
        )
        assert satisfies(structure, constraint)
        bad = structure.insert("takes", ("s1", "c2"))
        assert not satisfies(bad, constraint)


class TestHelpers:
    def test_all_valuations_count(self, structure):
        variables = [Var("s", STUDENT), Var("c", COURSE)]
        assert len(list(all_valuations(structure, variables))) == 4

    def test_all_valuations_deterministic_order(self, structure):
        variables = [Var("b", COURSE), Var("a", STUDENT)]
        first = list(all_valuations(structure, variables))
        second = list(all_valuations(structure, variables))
        assert first == second

    def test_models_all(self, signature, structure):
        good = parse(signature, "offered(c1)")
        assert models_all(structure, [good])

    def test_models_all_rejects_open_formula(self, signature, structure):
        open_formula = parse(
            signature, "offered(c)", variables={"c": COURSE}
        )
        with pytest.raises(EvaluationError):
            models_all(structure, [open_formula])

"""Invariants of the array-packed term arena.

Packing must hash-cons (one node id per distinct term), the lazy
object views must be the interned terms themselves (so arena results
are indistinguishable from object-path results), batch constructors
must agree with one-at-a-time interning, and an arena must survive
pickling and the fork into :class:`~repro.parallel.executor.ParallelExecutor`
workers with its node numbering intact.
"""

import pickle

from repro.logic.arena import (
    KIND_APP,
    KIND_VAR,
    TermArena,
    arena_stats,
)
from repro.logic.signature import FunctionSymbol
from repro.logic.sorts import BOOLEAN, STATE, Sort
from repro.logic.terms import App, Var, const

ITEM = Sort("arena_item")
ITEM_A = FunctionSymbol("arena_a", (), ITEM)
ITEM_B = FunctionSymbol("arena_b", (), ITEM)
PAIR = FunctionSymbol("arena_pair", (ITEM, ITEM), ITEM)
INITIATE = FunctionSymbol("arena_initiate", (), STATE)
PUSH = FunctionSymbol("arena_push", (ITEM, STATE), STATE)
ON_TOP = FunctionSymbol("arena_on_top", (ITEM, STATE), BOOLEAN)


def _deep_trace(depth: int) -> App:
    trace = const(INITIATE)
    for index in range(depth):
        item = const(ITEM_A if index % 2 == 0 else ITEM_B)
        trace = App(PUSH, (item, trace))
    return trace


class TestPackingHashConses:
    def test_equal_terms_share_a_node(self):
        arena = TermArena()
        assert arena.intern(_deep_trace(12)) == arena.intern(
            _deep_trace(12)
        )

    def test_distinct_terms_get_distinct_nodes(self):
        arena = TermArena()
        assert arena.intern(const(ITEM_A)) != arena.intern(const(ITEM_B))

    def test_subterms_are_shared(self):
        arena = TermArena()
        outer = arena.intern(App(PAIR, (const(ITEM_A), const(ITEM_A))))
        children = arena.children(outer)
        assert children[0] == children[1]
        assert children[0] == arena.intern(const(ITEM_A))

    def test_kinds_and_arity(self):
        arena = TermArena()
        var = arena.intern(Var("arena_x", ITEM))
        app = arena.intern(App(PAIR, (const(ITEM_A), const(ITEM_B))))
        assert arena.kind(var) == KIND_VAR
        assert arena.kind(app) == KIND_APP
        assert arena.arity(var) == 0
        assert arena.arity(app) == 2

    def test_deep_traces_pack_iteratively(self):
        # Far past the recursion limit a naive recursive intern
        # would hit.
        arena = TermArena()
        node = arena.intern(_deep_trace(5000))
        assert len(arena) >= 5000
        assert arena.term(node) is _deep_trace(5000)

    def test_packed_app_matches_interned_object(self):
        arena = TermArena()
        tail = arena.intern(const(INITIATE))
        item = arena.intern(const(ITEM_A))
        sid = arena.symbol_id(PUSH)
        packed = arena.app(sid, (item, tail))
        assert packed == arena.intern(App(PUSH, (const(ITEM_A), const(INITIATE))))


class TestViewsAreInternedTerms:
    def test_view_is_the_identical_object(self):
        arena = TermArena()
        term = _deep_trace(6)
        assert arena.term(arena.intern(term)) is term

    def test_view_materializes_after_release(self):
        arena = TermArena()
        node = arena.intern(_deep_trace(6))
        arena.release_views()
        # Rebuilt bottom-up from the packed tables, the view re-interns
        # to the identical live object.
        assert arena.term(node) is _deep_trace(6)

    def test_var_view_survives_release(self):
        arena = TermArena()
        var = Var("arena_y", ITEM)
        node = arena.intern(var)
        arena.release_views()
        assert arena.term(node) is var

    def test_release_preserves_node_ids(self):
        arena = TermArena()
        node = arena.intern(_deep_trace(4))
        arena.release_views()
        assert arena.intern(_deep_trace(4)) == node


class TestBatchConstructors:
    def test_intern_many_agrees_with_intern(self):
        arena = TermArena()
        terms = [_deep_trace(d) for d in (2, 3, 2)]
        nodes = arena.intern_many(terms)
        assert nodes == [arena.intern(t) for t in terms]
        assert nodes[0] == nodes[2]

    def test_apply_batch_matches_object_construction(self):
        arena = TermArena()
        item = arena.intern(const(ITEM_A))
        tails = arena.intern_many([_deep_trace(d) for d in (0, 1, 2)])
        sid = arena.symbol_id(PUSH)
        batch = arena.apply_batch(sid, (item,), tails)
        expected = [
            arena.intern(App(PUSH, (const(ITEM_A), _deep_trace(d))))
            for d in (0, 1, 2)
        ]
        assert batch == expected


class TestPickleAndFork:
    def test_round_trip_preserves_numbering_and_views(self):
        arena = TermArena()
        node = arena.intern(_deep_trace(9))
        single = arena.intern(const(ITEM_A))
        clone = pickle.loads(pickle.dumps(arena))
        assert len(clone) == len(arena)
        assert clone.term(node) is _deep_trace(9)
        assert clone.term(single) is const(ITEM_A)

    def test_round_trip_rebuilds_hash_consing(self):
        arena = TermArena()
        node = arena.intern(_deep_trace(5))
        clone = pickle.loads(pickle.dumps(arena))
        # New interns against the clone dedup against shipped nodes.
        assert clone.intern(_deep_trace(5)) == node
        assert len(clone) == len(arena)

    def test_arena_survives_worker_round_trip(self):
        from repro.parallel.executor import ParallelExecutor

        with ParallelExecutor(2, context=None) as executor:
            results = executor.map(_pack_chunk, [7, 7, 3])
        for depth, (length, view_ok) in zip((7, 7, 3), results):
            assert length >= depth
            assert view_ok


class TestArenaStats:
    def test_stats_count_this_arena(self):
        before = arena_stats()
        arena = TermArena()
        arena.intern(_deep_trace(10))
        after = arena_stats()
        assert after["arenas"] >= before["arenas"] + 1
        assert after["terms"] >= before["terms"] + 10
        assert after["bytes"] > before["bytes"]
        assert arena.stats()["terms"] == len(arena)
        assert arena.stats()["bytes"] == arena.nbytes


def _pack_chunk(context, depth):
    """Worker chunk: build an arena in the forked worker, pack a trace,
    and ship the arena home through pickle."""
    arena = TermArena()
    node = arena.intern(_deep_trace(depth))
    clone = pickle.loads(pickle.dumps(arena))
    return (len(clone), clone.term(node) is _deep_trace(depth)), {"items": 1}

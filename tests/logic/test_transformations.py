"""Tests for NNF/prenex transformations, including property-based
semantic-equivalence checks over random formulas and structures."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import formulas as fm
from repro.logic.semantics import satisfies
from repro.logic.signature import Signature
from repro.logic.sorts import Sort
from repro.logic.structures import Structure
from repro.logic.terms import Var
from repro.logic.transformations import (
    is_nnf,
    is_prenex,
    to_nnf,
    to_prenex,
)

THING = Sort("thing")


def _signature():
    sig = Signature(sorts=[THING])
    sig.add_predicate("p", [THING], db=True)
    sig.add_predicate("q", [THING, THING], db=True)
    return sig


SIG = _signature()
X = Var("x", THING)
Y = Var("y", THING)
P_X = fm.Atom(SIG.predicate("p"), (X,))
Q_XY = fm.Atom(SIG.predicate("q"), (X, Y))


def formula_strategy():
    atoms = st.sampled_from(
        [P_X, Q_XY, fm.Equals(X, Y), fm.TRUE, fm.FALSE]
    )

    def extend(children):
        return st.one_of(
            st.builds(fm.Not, children),
            st.builds(fm.And, children, children),
            st.builds(fm.Or, children, children),
            st.builds(fm.Implies, children, children),
            st.builds(fm.Iff, children, children),
            st.builds(lambda b: fm.Forall(X, b), children),
            st.builds(lambda b: fm.Exists(Y, b), children),
        )

    return st.recursive(atoms, extend, max_leaves=8)


def structure_strategy():
    values = ("a", "b")
    return st.builds(
        lambda p_rows, q_rows: Structure(
            SIG,
            {THING: values},
            relations={"p": p_rows, "q": q_rows},
        ),
        st.sets(st.sampled_from([("a",), ("b",)])),
        st.sets(
            st.sampled_from(
                [("a", "a"), ("a", "b"), ("b", "a"), ("b", "b")]
            )
        ),
    )


VALUATIONS = st.fixed_dictionaries(
    {X: st.sampled_from(("a", "b")), Y: st.sampled_from(("a", "b"))}
)


class TestNNF:
    def test_implication_expanded(self):
        result = to_nnf(fm.Implies(P_X, Q_XY))
        assert result == fm.Or(fm.Not(P_X), Q_XY)

    def test_negated_forall_flips(self):
        result = to_nnf(fm.Not(fm.Forall(X, P_X)))
        assert result == fm.Exists(X, fm.Not(P_X))

    def test_double_negation_removed(self):
        assert to_nnf(fm.Not(fm.Not(P_X))) == P_X

    def test_de_morgan(self):
        result = to_nnf(fm.Not(fm.And(P_X, Q_XY)))
        assert result == fm.Or(fm.Not(P_X), fm.Not(Q_XY))

    @settings(max_examples=100, deadline=None)
    @given(formula_strategy())
    def test_output_is_nnf(self, formula):
        assert is_nnf(to_nnf(formula))

    @settings(max_examples=100, deadline=None)
    @given(formula_strategy(), structure_strategy(), VALUATIONS)
    def test_nnf_preserves_semantics(self, formula, structure, valuation):
        assert satisfies(structure, formula, dict(valuation)) == satisfies(
            structure, to_nnf(formula), dict(valuation)
        )


class TestPrenex:
    def test_simple_pull(self):
        formula = fm.And(fm.Forall(X, P_X), fm.TRUE)
        result = to_prenex(formula)
        assert isinstance(result, fm.Forall)

    def test_colliding_binders_renamed(self):
        # (forall x. p(x)) & (exists x. p(x)): the second binder must
        # be renamed, not merged.
        formula = fm.And(fm.Forall(X, P_X), fm.Exists(X, P_X))
        result = to_prenex(formula)
        assert is_prenex(result)
        binders = []
        node = result
        while isinstance(node, (fm.Forall, fm.Exists)):
            binders.append(node.var.name)
            node = node.body
        assert len(binders) == len(set(binders)) == 2

    @settings(max_examples=100, deadline=None)
    @given(formula_strategy())
    def test_output_is_prenex(self, formula):
        assert is_prenex(to_prenex(formula))

    @settings(max_examples=100, deadline=None)
    @given(formula_strategy(), structure_strategy(), VALUATIONS)
    def test_prenex_preserves_semantics(
        self, formula, structure, valuation
    ):
        assert satisfies(structure, formula, dict(valuation)) == satisfies(
            structure, to_prenex(formula), dict(valuation)
        )

    def test_free_variables_preserved(self):
        formula = fm.And(fm.Exists(Y, Q_XY), P_X)
        result = to_prenex(formula)
        assert result.free_vars() == formula.free_vars()

    def test_regression_binder_does_not_capture_sibling_free_var(self):
        # (forall x. p(x)) | p(x_free): pulling the binder over the
        # right disjunct must rename it, not capture the free x.
        formula = fm.Or(fm.Forall(X, P_X), P_X)
        result = to_prenex(formula)
        structure = Structure(
            SIG, {THING: ["a", "b"]}, relations={"p": {("a",)}}
        )
        assert satisfies(structure, formula, {X: "a"})
        assert satisfies(structure, result, {X: "a"})
        assert X in result.free_vars()

"""Tests for repro.logic.sorts."""

import pytest

from repro.errors import SortError
from repro.logic.sorts import BOOLEAN, STATE, Sort, check_same_sort


class TestSort:
    def test_equality_by_name(self):
        assert Sort("student") == Sort("student")

    def test_inequality(self):
        assert Sort("student") != Sort("course")

    def test_hashable(self):
        assert len({Sort("a"), Sort("a"), Sort("b")}) == 2

    def test_str(self):
        assert str(Sort("student")) == "student"

    def test_ordering_by_name(self):
        assert Sort("a") < Sort("b")

    def test_underscore_names_allowed(self):
        assert Sort("my_sort").name == "my_sort"

    def test_empty_name_rejected(self):
        with pytest.raises(SortError):
            Sort("")

    def test_name_with_spaces_rejected(self):
        with pytest.raises(SortError):
            Sort("two words")


class TestDistinguishedSorts:
    def test_boolean_name(self):
        assert BOOLEAN.name == "Boolean"

    def test_state_name(self):
        assert STATE.name == "state"

    def test_distinct(self):
        assert BOOLEAN != STATE


class TestCheckSameSort:
    def test_match_is_silent(self):
        check_same_sort(BOOLEAN, BOOLEAN, "ctx")

    def test_mismatch_raises_with_context(self):
        with pytest.raises(SortError, match="ctx"):
            check_same_sort(BOOLEAN, STATE, "ctx")

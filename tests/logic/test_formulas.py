"""Tests for repro.logic.formulas."""

import pytest

from repro.errors import SortError
from repro.logic import formulas as fm
from repro.logic.signature import PredicateSymbol
from repro.logic.sorts import Sort
from repro.logic.terms import Var

STUDENT = Sort("student")
COURSE = Sort("course")
TAKES = PredicateSymbol("takes", (STUDENT, COURSE))

S = Var("s", STUDENT)
C = Var("c", COURSE)
ATOM = fm.Atom(TAKES, (S, C))


class TestAtoms:
    def test_wrong_arity_rejected(self):
        with pytest.raises(SortError):
            fm.Atom(TAKES, (S,))

    def test_wrong_sort_rejected(self):
        with pytest.raises(SortError):
            fm.Atom(TAKES, (C, S))

    def test_free_vars(self):
        assert ATOM.free_vars() == frozenset({S, C})

    def test_equals_same_sort_required(self):
        with pytest.raises(SortError):
            fm.Equals(S, C)

    def test_equals_free_vars(self):
        s2 = Var("s2", STUDENT)
        assert fm.Equals(S, s2).free_vars() == frozenset({S, s2})


class TestConnectives:
    def test_not_free_vars(self):
        assert fm.Not(ATOM).free_vars() == frozenset({S, C})

    def test_and_or_differ(self):
        assert fm.And(ATOM, ATOM) != fm.Or(ATOM, ATOM)

    def test_subformulas_preorder(self):
        formula = fm.And(fm.Not(ATOM), fm.TRUE)
        kinds = [type(sub).__name__ for sub in formula.subformulas()]
        assert kinds == ["And", "Not", "Atom", "TrueF"]

    def test_atoms_iterator(self):
        formula = fm.Implies(ATOM, fm.Equals(S, S))
        assert len(list(formula.atoms())) == 2

    def test_terms_iterator(self):
        formula = fm.Implies(ATOM, fm.Equals(S, S))
        assert S in list(formula.terms())


class TestQuantifiers:
    def test_binding_removes_free_var(self):
        assert fm.Forall(S, ATOM).free_vars() == frozenset({C})

    def test_closed_detection(self):
        closed = fm.Forall(S, fm.Exists(C, ATOM))
        assert closed.is_closed

    def test_forall_exists_differ(self):
        assert fm.Forall(S, ATOM) != fm.Exists(S, ATOM)


class TestHelpers:
    def test_conjunction_empty_is_true(self):
        assert fm.conjunction([]) == fm.TRUE

    def test_conjunction_singleton(self):
        assert fm.conjunction([ATOM]) == ATOM

    def test_conjunction_right_associated(self):
        result = fm.conjunction([fm.TRUE, fm.FALSE, ATOM])
        assert result == fm.And(fm.TRUE, fm.And(fm.FALSE, ATOM))

    def test_disjunction_empty_is_false(self):
        assert fm.disjunction([]) == fm.FALSE

    def test_disjunction_two(self):
        assert fm.disjunction([fm.TRUE, ATOM]) == fm.Or(fm.TRUE, ATOM)


class TestPrinting:
    def test_atom(self):
        assert str(ATOM) == "takes(s, c)"

    def test_quantifier(self):
        text = str(fm.Forall(S, ATOM))
        assert text.startswith("forall s:student.")

    def test_binary_parenthesised(self):
        assert str(fm.And(fm.TRUE, fm.FALSE)) == "(true & false)"

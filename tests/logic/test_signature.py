"""Tests for repro.logic.signature."""

import pytest

from repro.errors import SignatureError
from repro.logic.signature import FunctionSymbol, PredicateSymbol, Signature
from repro.logic.sorts import BOOLEAN, Sort

STUDENT = Sort("student")
COURSE = Sort("course")


class TestSymbols:
    def test_function_arity(self):
        f = FunctionSymbol("f", (STUDENT, COURSE), BOOLEAN)
        assert f.arity == 2

    def test_constant(self):
        c = FunctionSymbol("c", (), STUDENT)
        assert c.is_constant
        assert c.arity == 0

    def test_predicate_db_flag_default(self):
        assert PredicateSymbol("p", (STUDENT,)).db is False

    def test_empty_function_name_rejected(self):
        with pytest.raises(SignatureError):
            FunctionSymbol("", (), STUDENT)

    def test_empty_predicate_name_rejected(self):
        with pytest.raises(SignatureError):
            PredicateSymbol("", ())


class TestSignature:
    def _signature(self):
        return Signature(sorts=[STUDENT, COURSE, BOOLEAN])

    def test_add_and_lookup_function(self):
        sig = self._signature()
        sig.add_function("f", [STUDENT], COURSE)
        assert sig.function("f").result_sort == COURSE

    def test_add_and_lookup_predicate(self):
        sig = self._signature()
        sig.add_predicate("takes", [STUDENT, COURSE], db=True)
        assert sig.predicate("takes").db

    def test_duplicate_function_rejected(self):
        sig = self._signature()
        sig.add_function("f", [STUDENT], COURSE)
        with pytest.raises(SignatureError):
            sig.add_function("f", [COURSE], STUDENT)

    def test_identical_redeclaration_is_noop(self):
        sig = self._signature()
        first = sig.add_function("f", [STUDENT], COURSE)
        second = sig.add_function("f", [STUDENT], COURSE)
        assert first == second

    def test_function_predicate_name_clash_rejected(self):
        sig = self._signature()
        sig.add_function("x", [], STUDENT)
        with pytest.raises(SignatureError):
            sig.add_predicate("x", [STUDENT])

    def test_undeclared_sort_rejected(self):
        sig = Signature(sorts=[STUDENT])
        with pytest.raises(SignatureError):
            sig.add_function("f", [COURSE], STUDENT)

    def test_undeclared_lookup_raises(self):
        sig = self._signature()
        with pytest.raises(SignatureError):
            sig.function("missing")
        with pytest.raises(SignatureError):
            sig.predicate("missing")
        with pytest.raises(SignatureError):
            sig.sort("missing")

    def test_db_predicates_filter(self):
        sig = self._signature()
        sig.add_predicate("takes", [STUDENT, COURSE], db=True)
        sig.add_predicate("lt", [COURSE, COURSE])
        assert [p.name for p in sig.db_predicates] == ["takes"]

    def test_constants_of_sort(self):
        sig = self._signature()
        sig.add_constant("s1", STUDENT)
        sig.add_constant("c1", COURSE)
        names = [f.name for f in sig.constants_of_sort(STUDENT)]
        assert names == ["s1"]

    def test_copy_is_independent(self):
        sig = self._signature()
        clone = sig.copy()
        clone.add_predicate("p", [STUDENT])
        assert not sig.has_predicate("p")

    def test_extended_adds_symbols(self):
        sig = self._signature()
        new = sig.extended(
            predicates=[PredicateSymbol("F", (STUDENT, STUDENT))]
        )
        assert new.has_predicate("F")
        assert not sig.has_predicate("F")

    def test_iter_yields_all_symbols(self):
        sig = self._signature()
        sig.add_constant("s1", STUDENT)
        sig.add_predicate("p", [STUDENT])
        kinds = {type(symbol).__name__ for symbol in sig}
        assert kinds == {"FunctionSymbol", "PredicateSymbol"}

    def test_conflicting_sort_redeclaration_ok_for_same(self):
        sig = self._signature()
        assert sig.add_sort(STUDENT) == STUDENT

"""Tests for repro.logic.substitution, including property-based tests
for composition and matching."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SortError
from repro.logic import formulas as fm
from repro.logic.signature import FunctionSymbol, PredicateSymbol
from repro.logic.sorts import Sort
from repro.logic.substitution import Substitution, apply_to_term, match
from repro.logic.terms import App, Var, const

STUDENT = Sort("student")
COURSE = Sort("course")
PAIR = FunctionSymbol("pair", (STUDENT, STUDENT), STUDENT)
S1 = FunctionSymbol("s1", (), STUDENT)
S2 = FunctionSymbol("s2", (), STUDENT)
TAKES = PredicateSymbol("takes", (STUDENT, COURSE))

X = Var("x", STUDENT)
Y = Var("y", STUDENT)
Z = Var("z", STUDENT)
C = Var("c", COURSE)


# -- strategies --------------------------------------------------------
def term_strategy(max_depth=3):
    base = st.sampled_from([X, Y, Z, const(S1), const(S2)])
    return st.recursive(
        base,
        lambda children: st.builds(
            lambda a, b: App(PAIR, (a, b)), children, children
        ),
        max_leaves=2 ** max_depth,
    )


def substitution_strategy():
    return st.dictionaries(
        st.sampled_from([X, Y, Z]), term_strategy(2), max_size=3
    ).map(Substitution)


class TestSubstitution:
    def test_sort_mismatch_rejected(self):
        with pytest.raises(SortError):
            Substitution({C: const(S1)})

    def test_identity_on_unbound(self):
        sub = Substitution({X: const(S1)})
        assert sub.apply(Y) == Y

    def test_apply_nested(self):
        sub = Substitution({X: const(S1)})
        term = App(PAIR, (X, Y))
        assert sub.apply(term) == App(PAIR, (const(S1), Y))

    def test_apply_preserves_unchanged_object(self):
        sub = Substitution({X: const(S1)})
        term = App(PAIR, (Y, Z))
        assert sub.apply(term) is term

    def test_bind_conflict_rejected(self):
        sub = Substitution({X: const(S1)})
        with pytest.raises(SortError):
            sub.bind(X, const(S2))

    def test_bind_same_is_ok(self):
        sub = Substitution({X: const(S1)})
        assert sub.bind(X, const(S1))[X] == const(S1)

    def test_restrict(self):
        sub = Substitution({X: const(S1), Y: const(S2)})
        restricted = sub.restrict(frozenset({X}))
        assert X in restricted and Y not in restricted

    @given(substitution_strategy(), substitution_strategy(), term_strategy())
    def test_composition_law(self, outer, inner, term):
        composed = outer.compose(inner)
        assert composed.apply(term) == outer.apply(inner.apply(term))


class TestFormulaSubstitution:
    def test_atom_substitution(self):
        sub = Substitution({X: const(S1)})
        atom = fm.Atom(TAKES, (X, C))
        assert sub.apply_formula(atom) == fm.Atom(TAKES, (const(S1), C))

    def test_bound_variable_shielded(self):
        sub = Substitution({X: const(S1)})
        formula = fm.Forall(X, fm.Equals(X, Y))
        assert sub.apply_formula(formula) == formula

    def test_capture_avoided(self):
        # Substituting y := x under a binder for x must rename the
        # binder, not capture the incoming x.
        sub = Substitution({Y: X})
        formula = fm.Forall(X, fm.Equals(X, Y))
        result = sub.apply_formula(formula)
        assert isinstance(result, fm.Forall)
        assert result.var != X
        assert isinstance(result.body, fm.Equals)
        assert result.body.lhs == result.var
        assert result.body.rhs == X

    def test_quantifier_body_substituted(self):
        sub = Substitution({Y: const(S1)})
        formula = fm.Exists(X, fm.Equals(X, Y))
        result = sub.apply_formula(formula)
        assert result == fm.Exists(X, fm.Equals(X, const(S1)))


class TestMatch:
    def test_match_variable(self):
        result = match(X, const(S1))
        assert result is not None and result[X] == const(S1)

    def test_match_nested(self):
        pattern = App(PAIR, (X, Y))
        target = App(PAIR, (const(S1), const(S2)))
        result = match(pattern, target)
        assert result[X] == const(S1)
        assert result[Y] == const(S2)

    def test_nonlinear_pattern_consistent(self):
        pattern = App(PAIR, (X, X))
        assert match(pattern, App(PAIR, (const(S1), const(S1)))) is not None
        assert match(pattern, App(PAIR, (const(S1), const(S2)))) is None

    def test_symbol_mismatch(self):
        assert match(const(S1), const(S2)) is None

    def test_sort_mismatch(self):
        assert match(Var("v", COURSE), const(S1)) is None

    @given(term_strategy())
    def test_match_roundtrip(self, target):
        # Matching a pattern against its own instance recovers an
        # instantiating substitution.
        pattern = App(PAIR, (X, Y))
        instance = App(PAIR, (target, const(S1)))
        result = match(pattern, instance)
        assert result is not None
        assert apply_to_term(result, pattern) == instance

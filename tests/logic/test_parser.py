"""Tests for the formula/term parser, including the printer round-trip
property."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ParseError
from repro.logic import formulas as fm
from repro.logic.parser import parse_formula, parse_term, tokenize
from repro.logic.printer import format_formula
from repro.logic.signature import Signature
from repro.logic.sorts import Sort
from repro.logic.terms import App, Var

STUDENT = Sort("student")
COURSE = Sort("course")


@pytest.fixture()
def signature():
    sig = Signature(sorts=[STUDENT, COURSE])
    sig.add_predicate("takes", [STUDENT, COURSE], db=True)
    sig.add_predicate("offered", [COURSE], db=True)
    sig.add_constant("c1", COURSE)
    sig.add_constant("s1", STUDENT)
    sig.add_function("best", [COURSE], STUDENT)
    return sig


class TestTokenizer:
    def test_operators(self):
        kinds = [t.text for t in tokenize("-> <-> <> [] != = ~ & |")[:-1]]
        assert kinds == ["->", "<->", "<>", "[]", "!=", "=", "~", "&", "|"]

    def test_keywords_versus_idents(self):
        tokens = tokenize("forall x exists")
        assert [t.kind for t in tokens[:-1]] == [
            "keyword",
            "ident",
            "keyword",
        ]

    def test_bad_character(self):
        with pytest.raises(ParseError):
            tokenize("a $ b")


class TestTermParsing:
    def test_constant(self, signature):
        term = parse_term("c1", signature)
        assert isinstance(term, App) and term.symbol.name == "c1"

    def test_application(self, signature):
        term = parse_term("best(c1)", signature)
        assert term.symbol.name == "best"

    def test_free_variable_with_sort_context(self, signature):
        term = parse_term("x", signature, variables={"x": COURSE})
        assert term == Var("x", COURSE)

    def test_unknown_identifier(self, signature):
        with pytest.raises(ParseError):
            parse_term("mystery", signature)

    def test_function_without_args_rejected(self, signature):
        with pytest.raises(ParseError):
            parse_term("best", signature)


class TestFormulaParsing:
    def test_atom(self, signature):
        formula = parse_formula("offered(c1)", signature)
        assert isinstance(formula, fm.Atom)

    def test_precedence_and_binds_tighter_than_or(self, signature):
        formula = parse_formula(
            "offered(c1) | offered(c1) & ~offered(c1)", signature
        )
        assert isinstance(formula, fm.Or)
        assert isinstance(formula.rhs, fm.And)

    def test_implication_right_associative(self, signature):
        formula = parse_formula(
            "offered(c1) -> offered(c1) -> offered(c1)", signature
        )
        assert isinstance(formula, fm.Implies)
        assert isinstance(formula.rhs, fm.Implies)

    def test_quantifier_with_multiple_binders(self, signature):
        formula = parse_formula(
            "exists s:student, c:course. takes(s, c)", signature
        )
        assert isinstance(formula, fm.Exists)
        assert isinstance(formula.body, fm.Exists)

    def test_quantifier_scope_restored(self, signature):
        # After the quantifier closes, 'c' is unknown again.
        with pytest.raises(ParseError):
            parse_formula(
                "(exists c:course. offered(c)) & offered(c)", signature
            )

    def test_equality_and_disequality(self, signature):
        eq = parse_formula("c1 = c1", signature)
        assert isinstance(eq, fm.Equals)
        neq = parse_formula("c1 != c1", signature)
        assert isinstance(neq, fm.Not)

    def test_true_false(self, signature):
        assert parse_formula("true", signature) == fm.TRUE
        assert parse_formula("false", signature) == fm.FALSE

    def test_modal_rejected_without_flag(self, signature):
        with pytest.raises(ParseError):
            parse_formula("<>offered(c1)", signature)

    def test_modal_accepted_with_flag(self, signature):
        from repro.temporal.formulas import Necessarily, Possibly

        diamond = parse_formula(
            "<>offered(c1)", signature, allow_modal=True
        )
        assert isinstance(diamond, Possibly)
        box = parse_formula("[]offered(c1)", signature, allow_modal=True)
        assert isinstance(box, Necessarily)

    def test_trailing_input_rejected(self, signature):
        with pytest.raises(ParseError):
            parse_formula("offered(c1) offered(c1)", signature)

    def test_error_position_reported(self, signature):
        with pytest.raises(ParseError) as err:
            parse_formula("offered(c1", signature)
        assert err.value.position is not None


# -- round-trip property ----------------------------------------------
def formula_strategy(signature):
    s = Var("s", STUDENT)
    c = Var("c", COURSE)
    takes = signature.predicate("takes")
    offered = signature.predicate("offered")
    atoms = st.sampled_from(
        [
            fm.Atom(takes, (s, c)),
            fm.Atom(offered, (c,)),
            fm.Equals(c, c),
            fm.TRUE,
            fm.FALSE,
        ]
    )

    def extend(children):
        return st.one_of(
            st.builds(fm.Not, children),
            st.builds(fm.And, children, children),
            st.builds(fm.Or, children, children),
            st.builds(fm.Implies, children, children),
            st.builds(fm.Iff, children, children),
        )

    open_formulas = st.recursive(atoms, extend, max_leaves=8)
    return open_formulas.map(lambda body: fm.Forall(s, fm.Exists(c, body)))


class TestRoundTrip:
    @given(st.data())
    @pytest.mark.slow
    def test_parse_of_print_is_identity(self, data):
        sig = Signature(sorts=[STUDENT, COURSE])
        sig.add_predicate("takes", [STUDENT, COURSE], db=True)
        sig.add_predicate("offered", [COURSE], db=True)
        formula = data.draw(formula_strategy(sig))
        text = format_formula(formula)
        assert parse_formula(text, sig) == formula

"""Tests for repro.logic.terms."""

import pytest

from repro.errors import SortError
from repro.logic.signature import FunctionSymbol
from repro.logic.sorts import Sort
from repro.logic.terms import App, Var, const

STUDENT = Sort("student")
COURSE = Sort("course")

F = FunctionSymbol("f", (STUDENT, COURSE), COURSE)
C1 = FunctionSymbol("c1", (), COURSE)
S1 = FunctionSymbol("s1", (), STUDENT)


def app(symbol, *args):
    return App(symbol, tuple(args))


class TestVar:
    def test_sort(self):
        assert Var("x", STUDENT).sort == STUDENT

    def test_free_vars_is_self(self):
        x = Var("x", STUDENT)
        assert x.free_vars() == frozenset({x})

    def test_not_ground(self):
        assert not Var("x", STUDENT).is_ground

    def test_vars_differ_by_sort(self):
        assert Var("x", STUDENT) != Var("x", COURSE)

    def test_metrics(self):
        x = Var("x", STUDENT)
        assert x.depth() == 1
        assert x.size() == 1


class TestApp:
    def test_result_sort(self):
        term = app(F, Var("s", STUDENT), const(C1))
        assert term.sort == COURSE

    def test_wrong_arity_rejected(self):
        with pytest.raises(SortError):
            app(F, const(C1))

    def test_wrong_sort_rejected(self):
        with pytest.raises(SortError):
            app(F, const(C1), const(C1))

    def test_ground_detection(self):
        assert app(F, const(S1), const(C1)).is_ground
        assert not app(F, Var("s", STUDENT), const(C1)).is_ground

    def test_free_vars_union(self):
        s = Var("s", STUDENT)
        term = app(F, s, const(C1))
        assert term.free_vars() == frozenset({s})

    def test_subterms_preorder(self):
        s = Var("s", STUDENT)
        term = app(F, s, const(C1))
        subs = list(term.subterms())
        assert subs[0] is term
        assert s in subs

    def test_depth_and_size(self):
        term = app(F, const(S1), const(C1))
        assert term.depth() == 2
        assert term.size() == 3

    def test_str_constant(self):
        assert str(const(C1)) == "c1"

    def test_str_application(self):
        assert str(app(F, const(S1), const(C1))) == "f(s1, c1)"

    def test_hashable_and_equal(self):
        a = app(F, const(S1), const(C1))
        b = app(F, const(S1), const(C1))
        assert a == b
        assert hash(a) == hash(b)


class TestConst:
    def test_builds_zeroary_app(self):
        assert const(C1).args == ()

    def test_rejects_nonconstant(self):
        with pytest.raises(SortError):
            const(F)

"""Invariants of the hash-consed term kernel.

Structural equality must imply object identity for live terms, hashes
must be stable and precomputed, pickling must re-intern on load (so
terms survive the trip into and out of forked
:class:`~repro.parallel.executor.ParallelExecutor` workers), and the
intern table must release terms once nothing else keeps them alive.
"""

import gc
import pickle

import pytest

from repro.errors import SortError
from repro.logic.signature import FunctionSymbol
from repro.logic.sorts import BOOLEAN, STATE, Sort
from repro.logic.substitution import apply_to_term
from repro.logic.terms import (
    App,
    Var,
    const,
    intern_stats,
    intern_table_size,
)

ITEM = Sort("item")
ITEM_A = FunctionSymbol("a", (), ITEM)
ITEM_B = FunctionSymbol("b", (), ITEM)
PAIR = FunctionSymbol("pair", (ITEM, ITEM), ITEM)
INITIATE = FunctionSymbol("initiate", (), STATE)
PUSH = FunctionSymbol("push", (ITEM, STATE), STATE)
ON_TOP = FunctionSymbol("on_top", (ITEM, STATE), BOOLEAN)


def _deep_trace(depth: int) -> App:
    trace = const(INITIATE)
    for index in range(depth):
        item = const(ITEM_A if index % 2 == 0 else ITEM_B)
        trace = App(PUSH, (item, trace))
    return trace


class TestStructuralEqualityIsIdentity:
    def test_vars_intern(self):
        assert Var("x", ITEM) is Var("x", ITEM)

    def test_vars_distinguish_name_and_sort(self):
        assert Var("x", ITEM) is not Var("y", ITEM)
        assert Var("x", ITEM) is not Var("x", BOOLEAN)

    def test_apps_intern(self):
        left = App(PAIR, (const(ITEM_A), const(ITEM_B)))
        right = App(PAIR, (const(ITEM_A), const(ITEM_B)))
        assert left is right

    def test_deep_terms_intern(self):
        assert _deep_trace(30) is _deep_trace(30)

    def test_interned_terms_share_subterms(self):
        outer = App(PAIR, (const(ITEM_A), const(ITEM_A)))
        assert outer.args[0] is outer.args[1]
        assert outer.args[0] is const(ITEM_A)

    def test_equality_still_structural(self):
        term = App(PAIR, (const(ITEM_A), const(ITEM_B)))
        assert term == App(PAIR, (const(ITEM_A), const(ITEM_B)))
        assert term != App(PAIR, (const(ITEM_B), const(ITEM_A)))
        assert term != const(ITEM_A)

    def test_terms_are_immutable(self):
        term = const(ITEM_A)
        with pytest.raises(AttributeError):
            term.symbol = ITEM_B
        with pytest.raises(AttributeError):
            del term.args
        var = Var("x", ITEM)
        with pytest.raises(AttributeError):
            var.name = "y"

    def test_sort_checks_still_raise(self):
        with pytest.raises(SortError):
            App(PAIR, (const(ITEM_A),))
        with pytest.raises(SortError):
            App(PUSH, (const(INITIATE), const(INITIATE)))


class TestHashStability:
    def test_hash_is_precomputed(self):
        term = _deep_trace(10)
        assert hash(term) == term._hash

    def test_hash_agrees_across_rebuilds(self):
        first = hash(_deep_trace(8))
        assert hash(_deep_trace(8)) == first

    def test_hash_survives_pickle(self):
        term = _deep_trace(8)
        clone = pickle.loads(pickle.dumps(term))
        assert hash(clone) == hash(term)

    def test_var_hash_matches_key(self):
        var = Var("x", ITEM)
        assert hash(var) == hash(("x", ITEM))


class TestPickleReinterns:
    def test_round_trip_returns_the_live_object(self):
        term = _deep_trace(12)
        clone = pickle.loads(pickle.dumps(term))
        assert clone is term

    def test_round_trip_reinterns_subterms(self):
        term = App(PAIR, (const(ITEM_A), const(ITEM_B)))
        clone = pickle.loads(pickle.dumps(term))
        assert clone.args[0] is const(ITEM_A)

    def test_var_round_trip(self):
        var = Var("x", ITEM)
        assert pickle.loads(pickle.dumps(var)) is var

    def test_snapshot_round_trip(self):
        from repro.algebraic.algebra import Snapshot

        snapshot = Snapshot(((("on_top", ("a",)), True),))
        assert pickle.loads(pickle.dumps(snapshot)) is snapshot


def _build_term_chunk(context, depth):
    """Worker chunk: build a trace in the worker and ship it back."""
    return _deep_trace(depth), {"items": 1}


class TestForkedWorkers:
    def test_terms_survive_worker_round_trip(self):
        from repro.parallel.executor import ParallelExecutor

        with ParallelExecutor(2, context=None) as executor:
            results = executor.map(_build_term_chunk, [6, 6, 9])
        # Results were pickled back from the workers; unpickling must
        # have re-interned them into this process's table.
        assert results[0] is results[1]
        assert results[0] is _deep_trace(6)
        assert results[2] is _deep_trace(9)

    def test_parallel_explore_uses_interned_snapshots(self):
        from repro.algebraic.algebra import TraceAlgebra
        from repro.applications import courses

        algebra = TraceAlgebra(courses.courses_algebraic())
        serial = algebra.explore()
        algebra.engine.clear_cache()
        parallel = algebra.explore(workers=2)
        # Snapshots computed in forked workers intern on arrival: the
        # parallel graph's states are identical objects to the serial
        # ones, not merely equal.
        for snapshot in parallel.states:
            assert any(snapshot is other for other in serial.states)


class TestInternTableLifecycle:
    def test_intern_stats_counts_kinds(self):
        var = Var("lifecycle_var", ITEM)
        app = _deep_trace(3)
        stats = intern_stats()
        assert stats["vars"] >= 1
        assert stats["apps"] >= 4
        assert intern_table_size() == stats["vars"] + stats["apps"]
        del var, app

    def test_dead_terms_leave_the_table(self):
        gc.collect()
        before = intern_table_size()
        terms = [_deep_trace(40)]
        assert intern_table_size() > before
        terms.clear()
        gc.collect()
        assert intern_table_size() <= before + 2

    def test_clear_cache_releases_engine_references(self):
        # Test-unique symbol names, so no other suite can pin the
        # terms this engine interns.
        from repro.algebraic.equations import ConditionalEquation
        from repro.algebraic.rewriting import RewriteEngine
        from repro.algebraic.signature import AlgebraicSignature
        from repro.algebraic.spec import AlgebraicSpec

        signature = AlgebraicSignature()
        widget = signature.add_parameter_sort("ik_widget")
        signature.add_parameter_values(widget, ["ik_a", "ik_b"])
        signature.add_query("ik_q", [widget])
        signature.add_initial()
        signature.add_update("ik_touch", [widget])
        c = Var("ik_c", widget)
        c2 = Var("ik_c2", widget)
        u = Var("ik_U", STATE)
        touched = signature.apply_update("ik_touch", c2, u)
        spec = AlgebraicSpec(
            signature,
            (
                ConditionalEquation(
                    signature.apply_query(
                        "ik_q", c, signature.initial_term()
                    ),
                    signature.false(),
                ),
                ConditionalEquation(
                    signature.apply_query("ik_q", c, touched),
                    signature.apply_query("ik_q", c, u),
                ),
            ),
        )
        engine = RewriteEngine(spec)
        gc.collect()
        base = intern_table_size()
        trace = signature.initial_term()
        for index in range(30):
            value = signature.value(widget, "ik_a" if index % 2 else "ik_b")
            trace = signature.apply_update("ik_touch", value, trace)
        engine.evaluate(
            signature.apply_query(
                "ik_q", signature.value(widget, "ik_a"), trace
            )
        )
        assert engine.cache_size > 0
        grown = intern_table_size()
        assert grown > base
        del trace
        engine.clear_cache()
        assert engine.cache_size == 0
        gc.collect()
        # With the memo dropped and the trace dead, the evaluation's
        # terms leave the intern table (the spec's equation terms and
        # the two parameter values are all that can remain).
        assert intern_table_size() < grown
        assert intern_table_size() <= base + 4

    def test_reinterning_after_collection(self):
        gc.collect()
        first_id = id(_deep_trace(25))
        gc.collect()
        # The first trace died; rebuilding re-interns a fresh object
        # that again satisfies the identity invariant.
        rebuilt = _deep_trace(25)
        assert rebuilt is _deep_trace(25)
        assert isinstance(first_id, int)


class TestSubstitutionFastPath:
    def test_ground_terms_pass_through_unallocated(self):
        term = _deep_trace(20)
        assert apply_to_term({Var("x", ITEM): const(ITEM_A)}, term) is term

    def test_disjoint_substitution_is_identity(self):
        x = Var("x", ITEM)
        y = Var("y", ITEM)
        term = App(PAIR, (x, x))
        assert apply_to_term({y: const(ITEM_A)}, term) is term

    def test_relevant_substitution_still_applies(self):
        x = Var("x", ITEM)
        term = App(PAIR, (x, const(ITEM_B)))
        result = apply_to_term({x: const(ITEM_A)}, term)
        assert result is App(PAIR, (const(ITEM_A), const(ITEM_B)))

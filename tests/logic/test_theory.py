"""Tests for repro.logic.theory."""

import pytest

from repro.errors import SpecificationError
from repro.logic.parser import parse_formula
from repro.logic.signature import Signature
from repro.logic.sorts import Sort
from repro.logic.structures import Structure
from repro.logic.theory import Theory

COURSE = Sort("course")


@pytest.fixture()
def signature():
    sig = Signature(sorts=[COURSE])
    sig.add_predicate("offered", [COURSE], db=True)
    sig.add_constant("c1", COURSE)
    return sig


def theory(signature, *texts):
    return Theory(
        signature,
        tuple(parse_formula(t, signature) for t in texts),
    )


class TestTheory:
    def test_open_axiom_rejected(self, signature):
        open_axiom = parse_formula(
            "offered(c)", signature, variables={"c": COURSE}
        )
        with pytest.raises(SpecificationError):
            Theory(signature, (open_axiom,))

    def test_is_model(self, signature):
        t = theory(signature, "offered(c1)")
        good = Structure(
            signature, {COURSE: ["c1"]}, relations={"offered": {("c1",)}}
        )
        bad = Structure(signature, {COURSE: ["c1"]})
        assert t.is_model(good)
        assert not t.is_model(bad)

    def test_violated_axioms(self, signature):
        t = theory(signature, "offered(c1)", "c1 = c1")
        bad = Structure(signature, {COURSE: ["c1"]})
        violated = t.violated_axioms(bad)
        assert len(violated) == 1

    def test_with_axioms(self, signature):
        t = theory(signature, "c1 = c1")
        extended = t.with_axioms([parse_formula("offered(c1)", signature)])
        assert len(extended.axioms) == 2
        assert len(t.axioms) == 1

    def test_str_renders_numbered_axioms(self, signature):
        t = theory(signature, "offered(c1)")
        assert "(1)" in str(t)

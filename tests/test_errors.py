"""Tests for the exception hierarchy: every library error is a
ReproError, so callers can catch library failures uniformly."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.SortError,
    errors.SignatureError,
    errors.EvaluationError,
    errors.ParseError,
    errors.SpecificationError,
    errors.RewriteError,
    errors.NonTerminationError,
    errors.IncompletenessError,
    errors.RefinementError,
    errors.WGrammarError,
    errors.ExecutionError,
]


@pytest.mark.parametrize("cls", ALL_ERRORS)
def test_every_error_is_a_repro_error(cls):
    assert issubclass(cls, errors.ReproError)


def test_rewrite_error_specializations():
    assert issubclass(errors.NonTerminationError, errors.RewriteError)
    assert issubclass(errors.IncompletenessError, errors.RewriteError)


def test_parse_error_carries_position():
    error = errors.ParseError("bad", position=7)
    assert error.position == 7
    assert "bad" in str(error)


def test_parse_error_position_optional():
    assert errors.ParseError("bad").position is None


def test_top_level_export():
    import repro

    assert repro.ReproError is errors.ReproError

"""Tests for the dynamic-logic refinement obligations (the syntactic
2nd->3rd refinement of Section 5.3, realized)."""

import pytest

from repro.applications.bank import (
    bank_algebraic,
    bank_representation_map,
    bank_schema_source,
)
from repro.applications.courses import (
    courses_algebraic,
    courses_schema_source,
)
from repro.dynamic.formulas import Box
from repro.dynamic.obligations import (
    check_obligations,
    obligation_for_equation,
    obligations_for_spec,
)
from repro.refinement.second_third import RepresentationMap
from repro.rpr.parser import parse_schema


@pytest.fixture(scope="module")
def spec():
    return courses_algebraic()


@pytest.fixture(scope="module")
def schema():
    return parse_schema(courses_schema_source())


@pytest.fixture(scope="module")
def rep_map(spec, schema):
    return RepresentationMap.homonym(spec.signature, schema)


class TestGeneration:
    def test_every_registrar_equation_translatable(self, spec, rep_map):
        pairs = obligations_for_spec(spec, rep_map)
        assert len(pairs) == len(spec.q_equations) == 16

    def test_obligation_shape_eq3(self, spec, rep_map):
        eq3 = next(e for e in spec.equations if e.label == "eq3")
        obligation = obligation_for_equation(
            eq3, spec.signature, rep_map
        )
        # forall c. true <-> [offer(c)] OFFERED(c)
        text = str(obligation)
        assert "forall c:Courses" in text
        assert "[offer(c)]OFFERED(c)" in text

    def test_obligation_closed(self, spec, rep_map):
        for equation in spec.q_equations:
            obligation = obligation_for_equation(
                equation, spec.signature, rep_map
            )
            assert obligation.is_closed, equation.label

    def test_condition_translated(self, spec, rep_map):
        eq6a = next(e for e in spec.equations if e.label == "eq6a")
        obligation = obligation_for_equation(
            eq6a, spec.signature, rep_map
        )
        text = str(obligation)
        assert "exists s2:Students" in text
        assert "[cancel(c)]" in text

    def test_modality_present_in_all(self, spec, rep_map):
        for equation, obligation in obligations_for_spec(spec, rep_map):
            boxes = [
                sub
                for sub in obligation.subformulas()
                if isinstance(sub, Box)
            ]
            assert boxes, equation.label


class TestChecking:
    def test_registrar_obligations_hold(self, spec, schema):
        report = check_obligations(spec, schema)
        assert report.ok
        assert report.obligations == 16
        assert report.skipped == 0
        assert "hold" in str(report)

    def test_broken_schema_fails_named_equation(self, spec):
        broken = parse_schema(
            courses_schema_source().replace(
                "if ~exists s: Students. TAKES(s, c)\n"
                "    then delete OFFERED(c)",
                "delete OFFERED(c)",
            )
        )
        report = check_obligations(spec, broken)
        assert not report.ok
        labels = {label for label, _ in report.failures}
        assert any("eq6" in label for label in labels)


class TestNonBooleanAndInterpreted:
    def test_bank_obligations(self):
        spec = bank_algebraic()
        schema = parse_schema(bank_schema_source())
        rep_map = bank_representation_map(spec.signature, schema)
        report = check_obligations(spec, schema, rep_map)
        # Equations whose rhs uses inc/dec have no syntactic L3 image
        # and are skipped (covered by the semantic check); everything
        # translatable must hold.
        assert report.ok
        assert report.skipped > 0
        assert report.obligations > 0

    def test_balance_equalities_translate(self):
        spec = bank_algebraic()
        schema = parse_schema(bank_schema_source())
        rep_map = bank_representation_map(spec.signature, schema)
        pairs = obligations_for_spec(spec, rep_map)
        texts = [str(ob) for _, ob in pairs]
        # The functional realization appears as BALANCE(x, v) atoms.
        assert any("BALANCE" in text for text in texts)

"""Tests for dynamic-logic satisfaction over RPR states."""

import pytest

from repro.dynamic.formulas import Box, Diamond, ProcCall
from repro.dynamic.semantics import (
    counterexample,
    satisfies_dynamic,
    valid_in_schema,
)
from repro.logic import formulas as fm
from repro.logic.signature import PredicateSymbol
from repro.logic.sorts import Sort
from repro.logic.terms import Var
from repro.rpr.ast import Insert, Skip, Union, ValueLiteral
from repro.rpr.semantics import initial_state

COURSES = Sort("Courses")
STUDENTS = Sort("Students")
DOMAINS = {STUDENTS: ("s1", "s2"), COURSES: ("c1", "c2")}

OFFERED = PredicateSymbol("OFFERED", (COURSES,))
TAKES = PredicateSymbol("TAKES", (STUDENTS, COURSES))


def lit(value, sort=COURSES):
    return ValueLiteral(value, sort)


def offered(term):
    return fm.Atom(OFFERED, (term,))


@pytest.fixture()
def empty(courses_schema):
    return initial_state(courses_schema)


class TestModalities:
    def test_box_after_proc(self, courses_schema, empty):
        formula = Box(ProcCall("offer", (lit("c1"),)), offered(lit("c1")))
        assert satisfies_dynamic(formula, empty, courses_schema, DOMAINS)

    def test_box_false_when_some_run_fails(self, courses_schema, empty):
        program = Union(Insert("OFFERED", (lit("c1"),)), Skip())
        formula = Box(program, offered(lit("c1")))
        assert not satisfies_dynamic(
            formula, empty, courses_schema, DOMAINS
        )

    def test_diamond_true_when_some_run_succeeds(
        self, courses_schema, empty
    ):
        program = Union(Insert("OFFERED", (lit("c1"),)), Skip())
        formula = Diamond(program, offered(lit("c1")))
        assert satisfies_dynamic(formula, empty, courses_schema, DOMAINS)

    def test_box_diamond_duality(self, courses_schema, empty):
        program = Union(Insert("OFFERED", (lit("c1"),)), Skip())
        post = offered(lit("c1"))
        box = satisfies_dynamic(
            Box(program, post), empty, courses_schema, DOMAINS
        )
        dual = not satisfies_dynamic(
            Diamond(program, fm.Not(post)), empty, courses_schema, DOMAINS
        )
        assert box == dual

    def test_proc_call_with_variable_args(self, courses_schema, empty):
        c = Var("c", COURSES)
        formula = fm.Forall(
            c, Box(ProcCall("offer", (c,)), offered(c))
        )
        assert satisfies_dynamic(formula, empty, courses_schema, DOMAINS)

    def test_nested_modalities(self, courses_schema, empty):
        formula = Box(
            ProcCall("offer", (lit("c1"),)),
            Box(
                ProcCall("enroll", (lit("s1", STUDENTS), lit("c1"))),
                fm.Atom(TAKES, (lit("s1", STUDENTS), lit("c1"))),
            ),
        )
        assert satisfies_dynamic(formula, empty, courses_schema, DOMAINS)

    def test_blocked_guard_semantics(self, courses_schema, empty):
        # enroll into an unoffered course is a no-op: TAKES stays empty.
        formula = Box(
            ProcCall("enroll", (lit("s1", STUDENTS), lit("c1"))),
            fm.Not(fm.Atom(TAKES, (lit("s1", STUDENTS), lit("c1")))),
        )
        assert satisfies_dynamic(formula, empty, courses_schema, DOMAINS)


class TestValidity:
    def test_valid_over_all_states(self, courses_schema):
        # After offer(c), c is offered — at EVERY state.
        c = Var("c", COURSES)
        formula = fm.Forall(c, Box(ProcCall("offer", (c,)), offered(c)))
        assert valid_in_schema(formula, courses_schema, DOMAINS)

    def test_invalid_formula_has_counterexample(self, courses_schema):
        # "c1 is offered" is not valid; the empty state refutes it.
        formula = offered(lit("c1"))
        state = counterexample(formula, courses_schema, DOMAINS)
        assert state is not None
        assert ("c1",) not in state.relation("OFFERED")

    def test_cancel_guard_as_dynamic_sentence(self, courses_schema):
        # The paper's equation 6a, stated in dynamic logic: if someone
        # takes c, cancel(c) leaves it offered — valid over states
        # satisfying the static constraint; over ALL states it is also
        # valid because the guard blocks precisely then.
        c = Var("c", COURSES)
        s = Var("s", STUDENTS)
        someone = fm.Exists(s, fm.Atom(TAKES, (s, c)))
        formula = fm.Forall(
            c,
            fm.Implies(
                someone, Box(ProcCall("cancel", (c,)), offered(c))
            ),
        )
        # Not valid over arbitrary states: cancel blocks, but c may
        # never have been offered.
        state = counterexample(formula, courses_schema, DOMAINS)
        assert state is not None
        # Valid over states where takes -> offered holds:
        from repro.rpr.semantics import all_states

        consistent = [
            st
            for st in all_states(courses_schema, DOMAINS)
            if all(
                (course,) in st.relation("OFFERED")
                for _, course in st.relation("TAKES")
            )
        ]
        assert valid_in_schema(
            formula, courses_schema, DOMAINS, states=consistent
        )

"""Tests for U-equations (state-sorted axioms, Section 4.1) used as
trace-normalization rules."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NonTerminationError, SpecificationError
from repro.algebraic.algebra import TraceAlgebra
from repro.algebraic.equations import ConditionalEquation
from repro.algebraic.rewriting import RewriteEngine
from repro.algebraic.spec import AlgebraicSpec
from repro.applications.courses import (
    courses_equations,
    courses_signature,
)
from repro.logic import formulas as fm
from repro.logic.sorts import STATE
from repro.logic.terms import Var


def spec_with_u_equations() -> AlgebraicSpec:
    """The registrar plus two sound U-equations:

    * idempotence:  offer(c, offer(c, U)) = offer(c, U)
    * cancellation: cancel(c, offer(c, U)) = U, provided c was not
      offered in U and nobody takes it there.
    """
    signature = courses_signature()
    course = signature.logic.sort("course")
    student = signature.logic.sort("student")
    c = Var("c", course)
    s = Var("s", student)
    u = Var("U", STATE)
    offer = lambda ct, st_: signature.apply_update("offer", ct, st_)
    cancel = lambda ct, st_: signature.apply_update("cancel", ct, st_)
    idempotence = ConditionalEquation(
        offer(c, offer(c, u)), offer(c, u), None, "u-idem"
    )
    cancellation = ConditionalEquation(
        cancel(c, offer(c, u)),
        u,
        fm.And(
            fm.Equals(
                signature.apply_query("offered", c, u),
                signature.false(),
            ),
            fm.Not(
                fm.Exists(
                    s,
                    fm.Equals(
                        signature.apply_query("takes", s, c, u),
                        signature.true(),
                    ),
                )
            ),
        ),
        "u-cancel-offer",
    )
    return AlgebraicSpec(
        signature,
        tuple(courses_equations(signature)) + (idempotence, cancellation),
        name="courses + U-equations",
    )


class TestIndexingAndValidation:
    def test_u_equations_indexed_by_constructor(self):
        spec = spec_with_u_equations()
        assert len(spec.u_equations) == 2
        assert len(spec.u_equations_for("offer")) == 1
        assert len(spec.u_equations_for("cancel")) == 1
        assert spec.u_equations_for("enroll") == ()

    def test_u_equation_lhs_must_be_update_application(self):
        signature = courses_signature()
        u = Var("U", STATE)
        bad = ConditionalEquation(u, u, None)  # lhs a bare variable
        with pytest.raises(SpecificationError):
            AlgebraicSpec(signature, (bad,))


class TestNormalization:
    def test_idempotence_collapses(self):
        spec = spec_with_u_equations()
        engine = RewriteEngine(spec)
        algebra = TraceAlgebra(spec)
        t = algebra.apply(
            "offer",
            "c1",
            trace=algebra.apply(
                "offer", "c1", trace=algebra.initial_trace()
            ),
        )
        normalized = engine.normalize_state(t)
        assert str(normalized) == "offer(c1, initiate)"

    def test_conditional_cancellation(self):
        spec = spec_with_u_equations()
        engine = RewriteEngine(spec)
        algebra = TraceAlgebra(spec)
        t0 = algebra.initial_trace()
        round_trip = algebra.apply(
            "cancel", "c1", trace=algebra.apply("offer", "c1", trace=t0)
        )
        assert engine.normalize_state(round_trip) == t0

    def test_condition_blocks_unsound_collapse(self):
        spec = spec_with_u_equations()
        engine = RewriteEngine(spec)
        algebra = TraceAlgebra(spec)
        # c1 offered and taken underneath: cancel(c1, offer(c1, U))
        # is NOT observationally U, and the guard must block the rule.
        base = algebra.apply(
            "enroll",
            "s1",
            "c1",
            trace=algebra.apply(
                "offer", "c1", trace=algebra.initial_trace()
            ),
        )
        t = algebra.apply(
            "cancel", "c1", trace=algebra.apply("offer", "c1", trace=base)
        )
        normalized = engine.normalize_state(t)
        assert str(normalized) == (
            "cancel(c1, offer(c1, enroll(s1, c1, offer(c1, initiate))))"
        )

    def test_inner_redexes_normalized(self):
        spec = spec_with_u_equations()
        engine = RewriteEngine(spec)
        algebra = TraceAlgebra(spec)
        t = algebra.initial_trace()
        t = algebra.apply("offer", "c1", trace=t)
        t = algebra.apply("offer", "c1", trace=t)
        t = algebra.apply("enroll", "s1", "c1", trace=t)
        normalized = engine.normalize_state(t)
        assert str(normalized) == "enroll(s1, c1, offer(c1, initiate))"

    def test_specs_without_u_equations_are_untouched(self):
        signature = courses_signature()
        spec = AlgebraicSpec(
            signature, tuple(courses_equations(signature))
        )
        engine = RewriteEngine(spec)
        algebra = TraceAlgebra(spec)
        t = algebra.apply(
            "offer",
            "c1",
            trace=algebra.apply(
                "offer", "c1", trace=algebra.initial_trace()
            ),
        )
        assert engine.normalize_state(t) is t

    def test_nonterminating_rules_detected(self):
        signature = courses_signature()
        course = signature.logic.sort("course")
        c = Var("c", course)
        c2 = Var("c2", course)
        u = Var("U", STATE)
        offer = lambda ct, st_: signature.apply_update("offer", ct, st_)
        swap = ConditionalEquation(
            offer(c, offer(c2, u)), offer(c2, offer(c, u)), None, "u-swap"
        )
        spec = AlgebraicSpec(
            signature,
            tuple(courses_equations(signature)) + (swap,),
        )
        engine = RewriteEngine(spec, fuel=200)
        algebra = TraceAlgebra(spec)
        t = algebra.apply(
            "offer",
            "c1",
            trace=algebra.apply(
                "offer", "c2", trace=algebra.initial_trace()
            ),
        )
        with pytest.raises(NonTerminationError):
            engine.normalize_state(t)


WORKLOADS = st.lists(
    st.one_of(
        st.tuples(st.just("offer"), st.sampled_from(["c1", "c2"])),
        st.tuples(st.just("cancel"), st.sampled_from(["c1", "c2"])),
        st.tuples(
            st.just("enroll"),
            st.sampled_from(["s1", "s2"]),
            st.sampled_from(["c1", "c2"]),
        ),
    ),
    max_size=7,
)


class TestSoundness:
    @settings(max_examples=60, deadline=None)
    @given(WORKLOADS)
    def test_normalization_preserves_observations(self, steps):
        # The two U-equations are sound: the normalized trace is
        # observationally equal to the original on every workload.
        spec = spec_with_u_equations()
        plain = TraceAlgebra(spec)
        normalizing = TraceAlgebra(spec, normalize=True)
        t_plain = plain.initial_trace()
        t_norm = normalizing.initial_trace()
        for name, *params in steps:
            t_plain = plain.apply(name, *params, trace=t_plain)
            t_norm = normalizing.apply(name, *params, trace=t_norm)
        assert plain.snapshot(t_plain) == plain.snapshot(t_norm)

    @settings(max_examples=30, deadline=None)
    @given(WORKLOADS)
    def test_normalized_traces_never_longer(self, steps):
        spec = spec_with_u_equations()
        plain = TraceAlgebra(spec)
        normalizing = TraceAlgebra(spec, normalize=True)
        t_plain = plain.initial_trace()
        t_norm = normalizing.initial_trace()
        for name, *params in steps:
            t_plain = plain.apply(name, *params, trace=t_plain)
            t_norm = normalizing.apply(name, *params, trace=t_norm)
        assert t_norm.size() <= t_plain.size()

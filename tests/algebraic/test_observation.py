"""Tests for observability / congruence checking.

Observational equality is only a meaningful state equality when it is
a *congruence* (updates cannot separate observationally equal traces);
the negative test builds a specification whose query depends on the
second-to-last update — information no simple observation exposes —
and checks that the violation is caught.
"""

import pytest

from repro.algebraic.algebra import TraceAlgebra
from repro.algebraic.equations import ConditionalEquation
from repro.algebraic.observation import (
    check_congruence,
    observational_classes,
)
from repro.algebraic.signature import AlgebraicSignature
from repro.algebraic.spec import AlgebraicSpec
from repro.logic.sorts import STATE
from repro.logic.terms import Var


class TestObservationalClasses:
    def test_depth_zero_single_class(self, courses_algebra):
        classes = observational_classes(courses_algebra, 0)
        assert len(classes) == 1

    def test_depth_one_classes(self, courses_algebra):
        classes = observational_classes(courses_algebra, 1)
        # initiate, offer c1, offer c2 are the distinct depth-1 states.
        assert len(classes) == 3

    def test_classes_partition_traces(self, courses_algebra):
        classes = observational_classes(courses_algebra, 1)
        assert sum(len(v) for v in classes.values()) == 17


def _history_dependent_spec() -> AlgebraicSpec:
    """q is True exactly after two consecutive ``ping`` updates.

    ``ping(initiate)`` and ``pong(initiate)`` are observationally
    equal (q is False at both), yet applying ``ping`` separates them —
    observational equality is not a congruence for this spec.
    """
    signature = AlgebraicSignature()
    signature.add_query("q", [])
    signature.add_initial()
    signature.add_update("ping", [])
    signature.add_update("pong", [])
    u = Var("U", STATE)
    ping = lambda s: signature.apply_update("ping", s)
    pong = lambda s: signature.apply_update("pong", s)
    q = lambda s: signature.apply_query("q", s)
    false = signature.false()
    true = signature.true()
    initiate = signature.initial_term()
    equations = (
        ConditionalEquation(q(initiate), false, None, "init"),
        ConditionalEquation(q(ping(initiate)), false, None, "ping-init"),
        ConditionalEquation(q(pong(initiate)), false, None, "pong-init"),
        ConditionalEquation(q(ping(ping(u))), true, None, "ping-ping"),
        ConditionalEquation(q(ping(pong(u))), false, None, "ping-pong"),
        ConditionalEquation(q(pong(ping(u))), false, None, "pong-ping"),
        ConditionalEquation(q(pong(pong(u))), false, None, "pong-pong"),
    )
    return AlgebraicSpec(signature, equations, name="ping-pong")


class TestCongruence:
    def test_paper_spec_is_congruent(self, courses_algebra):
        report = check_congruence(courses_algebra, depth=2)
        assert report.ok
        assert report.classes == 8
        assert "congruence" in str(report)

    def test_history_dependent_spec_is_not_congruent(self):
        algebra = TraceAlgebra(_history_dependent_spec())
        report = check_congruence(algebra, depth=2)
        assert not report.ok
        assert report.violations
        assert "NOT a congruence" in str(report)

    def test_violation_witness_names_the_update(self):
        algebra = TraceAlgebra(_history_dependent_spec())
        report = check_congruence(algebra, depth=2)
        updates = {violation.update for violation in report.violations}
        assert "ping" in updates

    def test_representative_cap_respected(self, courses_algebra):
        # With a cap of 1 representative per class there is nothing to
        # compare, so the check trivially passes but still counts.
        report = check_congruence(
            courses_algebra, depth=1, max_pairs_per_class=1
        )
        assert report.ok
        assert report.traces_checked == 17

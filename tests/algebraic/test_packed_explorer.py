"""Differential and delta guarantees of the packed explorer.

The packed value-row BFS must be observationally indistinguishable
from the object-path BFS on every application — same snapshot
discovery order, identical witness-trace objects, equal transition
lists, same truncation — and a delta re-run after a single-equation
edit must re-visit only a small fraction of states while producing a
graph equal to a fresh full explore of the edited specification.
"""

import pytest

from repro.algebraic.algebra import TraceAlgebra
from repro.algebraic.equations import ConditionalEquation
from repro.algebraic.spec import AlgebraicSpec
from repro.applications.bank import bank_algebraic
from repro.applications.courses import courses_algebraic
from repro.applications.library import library_algebraic
from repro.applications.projects import projects_algebraic

APPS = {
    "courses": courses_algebraic,
    "projects": projects_algebraic,
    "bank": bank_algebraic,
    "library": library_algebraic,
}


def _assert_identical(spec, **explore_kwargs):
    packed = TraceAlgebra(spec).explore(**explore_kwargs)
    plain = TraceAlgebra(spec, packed=False).explore(**explore_kwargs)
    assert packed.initial == plain.initial
    # Same snapshots in the same discovery order.
    assert list(packed.states) == list(plain.states)
    # Witness traces are the *identical* interned objects.
    for snapshot, witness in packed.states.items():
        assert witness is plain.states[snapshot]
    assert packed.transitions == plain.transitions
    assert packed.truncated == plain.truncated
    assert packed == plain


class TestDifferentialByteIdentity:
    @pytest.mark.parametrize("app", ["courses", "bank", "library"])
    def test_full_graph_matches_object_path(self, app):
        _assert_identical(APPS[app]())

    @pytest.mark.slow
    def test_full_graph_matches_object_path_projects(self):
        _assert_identical(APPS["projects"]())

    @pytest.mark.parametrize("app", ["courses", "bank"])
    def test_truncated_graph_matches_object_path(self, app):
        _assert_identical(APPS[app](), max_states=7)

    @pytest.mark.parametrize("app", ["courses", "bank"])
    def test_depth_bounded_graph_matches_object_path(self, app):
        _assert_identical(APPS[app](), max_depth=2)

    def test_packed_run_emits_artifact_object_run_does_not(self):
        spec = courses_algebraic()
        packed = TraceAlgebra(spec).explore()
        plain = TraceAlgebra(spec, packed=False).explore()
        assert packed.artifact is not None
        assert packed.delta is not None
        assert plain.artifact is None


def _edit_close_account(spec):
    """Rebuild the bank spec with exactly one equation changed: the
    ``open`` observation of ``close_account`` keeps the account open
    (a semantics change confined to one (query, update) pair)."""
    victims = spec.equations_for("open", "close_account")
    assert victims
    victim = victims[0]
    edited = ConditionalEquation(
        victim.lhs,
        spec.signature.true(),
        victim.condition,
        f"{victim.label}-edited",
    )
    equations = tuple(
        edited if equation is victim else equation
        for equation in spec.equations
    )
    assert equations != spec.equations
    return AlgebraicSpec(spec.signature, equations, name=spec.name)


class TestDeltaReexploration:
    def test_unchanged_rerun_replays_everything(self):
        algebra = TraceAlgebra(bank_algebraic())
        first = algebra.explore()
        again = algebra.explore(edge_cache=first.artifact)
        assert again == first
        assert again.delta["used_cache"]
        assert again.delta["reexplored_states"] == 0
        assert again.delta["recomputed_transitions"] == 0
        assert again.delta["cached_transitions"] == len(again.transitions)

    def test_single_equation_edit_revisits_under_20_percent(self):
        spec = bank_algebraic()
        artifact = TraceAlgebra(spec).explore().artifact
        edited = _edit_close_account(spec)
        delta = TraceAlgebra(edited).explore(edge_cache=artifact)
        fresh = TraceAlgebra(edited).explore()
        # The delta run's graph is the edited spec's graph, exactly.
        assert delta == fresh
        assert list(delta.states) == list(fresh.states)
        stats = delta.delta
        assert stats["used_cache"]
        # Only states the old artifact never saw are re-explored.
        assert stats["reexplored_states"] / len(delta.states) < 0.2
        # The three untouched updates replay from the memo; only the
        # edited update's instances are recomputed.
        assert stats["cached_transitions"] > 0
        assert stats["recomputed_transitions"] > 0
        assert stats["recomputed_transitions"] < len(delta.transitions)

    def test_stale_artifact_degrades_to_full_explore(self):
        bank = TraceAlgebra(bank_algebraic())
        foreign = TraceAlgebra(courses_algebraic()).explore().artifact
        graph = bank.explore(edge_cache=foreign)
        assert graph == TraceAlgebra(bank_algebraic(), packed=False).explore()
        assert not graph.delta["used_cache"]

    def test_corrupt_artifact_degrades_to_full_explore(self):
        algebra = TraceAlgebra(bank_algebraic())
        expected = algebra.explore()
        for garbage in (
            {"format": 999},
            {"format": 1, "signature": "nope"},
            {"hello": "world"},
        ):
            graph = algebra.explore(edge_cache=garbage)
            assert graph == expected
            assert not graph.delta["used_cache"]

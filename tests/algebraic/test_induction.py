"""Tests for structural induction over abstract states — the paper's
Section 4.4b proof rule, mechanized."""

import pytest

from repro.errors import SpecificationError
from repro.algebraic.algebra import Snapshot, TraceAlgebra
from repro.algebraic.induction import (
    AbstractState,
    abstract_successor,
    all_snapshots,
    make_abstract_engine,
    prove_invariant,
)
from repro.applications.bank import bank_algebraic
from repro.applications.courses import courses_algebraic


@pytest.fixture(scope="module")
def spec():
    return courses_algebraic()


def _static_ok(snapshot: Snapshot) -> bool:
    offered = snapshot.relation("offered")
    return all(
        (course,) in offered
        for _, course in snapshot.relation("takes")
    )


class TestAbstractStates:
    def test_abstract_space_size(self, spec):
        # 6 Boolean observations -> 2^6 abstract snapshots.
        assert sum(1 for _ in all_snapshots(spec)) == 64

    def test_abstract_space_with_valued_queries(self):
        # bank: 2 Boolean (open) x 2 money-valued (balance, |money|=4).
        assert sum(1 for _ in all_snapshots(bank_algebraic())) == 64

    def test_oracle_engine_answers_from_snapshot(self, spec):
        algebra = TraceAlgebra(spec)
        trace = algebra.apply(
            "offer", "c1", trace=algebra.initial_trace()
        )
        snapshot = algebra.snapshot(trace)
        engine = make_abstract_engine(spec)
        signature = spec.signature
        course = signature.logic.sort("course")
        term = signature.apply_query(
            "offered",
            signature.value(course, "c1"),
            AbstractState(snapshot),
        )
        assert engine.evaluate(term) is True


class TestAbstractSuccessor:
    def test_matches_concrete_successor_on_reachable_states(self, spec):
        algebra = TraceAlgebra(spec)
        graph = algebra.explore()
        for snapshot, witness in list(graph.states.items())[:8]:
            for update, params in list(algebra.update_instances())[:6]:
                abstract = abstract_successor(
                    spec, snapshot, update, params
                )
                concrete = algebra.snapshot(
                    algebra.apply(update, *params, trace=witness)
                )
                assert abstract == concrete

    def test_works_on_unreachable_states(self, spec):
        # takes(s1,c1) without offered(c1): unreachable, but the
        # abstract successor is still defined by the equations.
        base = {key: False for key, _ in next(
            iter(all_snapshots(spec))
        ).entries}
        base[("takes", ("s1", "c1"))] = True
        snapshot = Snapshot(tuple(sorted(base.items())))
        successor = abstract_successor(spec, snapshot, "offer", ("c1",))
        assert successor.value("offered", ("c1",)) is True
        assert successor.value("takes", ("s1", "c1")) is True


class TestProveInvariant:
    def test_static_constraint_proved(self, spec):
        report = prove_invariant(spec, _static_ok)
        assert report.ok
        assert report.base_ok and report.step_ok
        # The step quantified over exactly the 25 V-states.
        assert report.states_examined == 25
        assert "PROVED" in str(report)

    def test_false_invariant_fails_with_witnesses(self, spec):
        report = prove_invariant(
            spec,
            lambda s: ("c1",) not in s.relation("offered"),
        )
        assert not report.ok
        assert report.base_ok  # initially nothing is offered
        assert report.counterexamples
        snapshot, update, params, successor = report.counterexamples[0]
        assert update == "offer" and params == ("c1",)
        assert "FAILED" in str(report)

    def test_base_violation_detected(self, spec):
        report = prove_invariant(
            spec, lambda s: bool(s.relation("offered"))
        )
        assert not report.base_ok
        assert not report.ok

    def test_state_bound_enforced(self, spec):
        with pytest.raises(SpecificationError):
            prove_invariant(spec, _static_ok, max_abstract_states=3)


class TestProveStaticConsistency:
    def test_courses(self):
        from repro.applications.courses import (
            courses_information,
            courses_information_carriers,
        )
        from repro.refinement.first_second import (
            prove_static_consistency,
        )

        report = prove_static_consistency(
            courses_information(),
            courses_information_carriers(),
            courses_algebraic(),
        )
        assert report.ok
        assert report.states_examined == 25

    def test_faulty_cancel_caught_inductively(self):
        from repro.applications.courses import (
            courses_descriptions,
            courses_information,
            courses_information_carriers,
            courses_signature,
        )
        from repro.algebraic.description import (
            StructuredDescription,
            initial_equations,
            synthesize_equations,
        )
        from repro.algebraic.spec import AlgebraicSpec
        from repro.refinement.first_second import (
            prove_static_consistency,
        )

        signature = courses_signature()
        descriptions = []
        for description in courses_descriptions(signature):
            if description.update == "cancel":
                description = StructuredDescription(
                    update="cancel",
                    params=description.params,
                    precondition=None,
                    effects=description.effects,
                )
            descriptions.append(description)
        equations = initial_equations(signature) + synthesize_equations(
            signature, descriptions
        )
        spec = AlgebraicSpec(signature, tuple(equations))
        report = prove_static_consistency(
            courses_information(),
            courses_information_carriers(),
            spec,
        )
        assert not report.ok
        assert report.counterexamples

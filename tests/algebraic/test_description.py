"""Tests for structured descriptions and equation synthesis — the
mechanized Section 4.2 methodology (experiment E11)."""

import itertools

import pytest

from repro.errors import SpecificationError
from repro.algebraic.algebra import TraceAlgebra
from repro.algebraic.completeness import check_sufficient_completeness
from repro.algebraic.description import (
    STATE_VAR,
    Effect,
    StructuredDescription,
    initial_equations,
    synthesize_equations,
)
from repro.algebraic.signature import AlgebraicSignature
from repro.applications.courses import (
    courses_algebraic,
    courses_descriptions,
    courses_signature,
    courses_synthesized,
)
from repro.logic import formulas as fm
from repro.logic.terms import Var


class TestValidation:
    def _signature(self):
        signature = AlgebraicSignature()
        course = signature.add_parameter_sort("course")
        signature.add_parameter_values(course, ["c1"])
        signature.add_query("offered", [course])
        signature.add_initial()
        signature.add_update("offer", [course])
        return signature, course

    def test_param_sorts_must_match_update(self):
        signature, course = self._signature()
        with pytest.raises(SpecificationError):
            synthesize_equations(
                signature,
                [
                    StructuredDescription(
                        update="offer",
                        params=(),
                        effects=(),
                    )
                ],
            )

    def test_effect_args_must_be_update_params(self):
        signature, course = self._signature()
        c = Var("c", course)
        stranger = Var("z", course)
        with pytest.raises(SpecificationError):
            synthesize_equations(
                signature,
                [
                    StructuredDescription(
                        update="offer",
                        params=(c,),
                        effects=(Effect("offered", (stranger,), True),),
                    )
                ],
            )

    def test_duplicate_description_rejected(self):
        signature, course = self._signature()
        c = Var("c", course)
        description = StructuredDescription(
            update="offer",
            params=(c,),
            effects=(Effect("offered", (c,), True),),
        )
        with pytest.raises(SpecificationError):
            synthesize_equations(signature, [description, description])

    def test_non_boolean_query_needs_initial_default(self):
        signature = AlgebraicSignature()
        course = signature.add_parameter_sort("course")
        signature.add_parameter_values(course, ["c1"])
        signature.add_query("pick", [], result_sort=course)
        signature.add_initial()
        with pytest.raises(SpecificationError):
            initial_equations(signature)
        equations = initial_equations(
            signature, defaults={"pick": signature.value(course, "c1")}
        )
        assert len(equations) == 1


class TestSynthesizedShape:
    def test_unconditional_effect_gives_one_equation(self):
        signature = courses_signature()
        equations = synthesize_equations(
            signature, courses_descriptions(signature)
        )
        offer_effects = [
            e
            for e in equations
            if e.label.startswith("synth:offered:offer:effect")
        ]
        assert len(offer_effects) == 1
        assert offer_effects[0].condition is None

    def test_guarded_effect_gives_pair(self):
        signature = courses_signature()
        equations = synthesize_equations(
            signature, courses_descriptions(signature)
        )
        cancel_effects = [
            e
            for e in equations
            if e.label.startswith("synth:offered:cancel:effect")
        ]
        assert len(cancel_effects) == 2
        conditions = {e.condition is None for e in cancel_effects}
        assert conditions == {False}

    def test_frame_equations_for_every_query_update_pair(self):
        signature = courses_signature()
        equations = synthesize_equations(
            signature, courses_descriptions(signature)
        )
        frames = [e for e in equations if e.label.endswith(":frame")]
        # 2 queries x 4 updates.
        assert len(frames) == 8

    def test_unaffected_query_frame_is_unconditional(self):
        signature = courses_signature()
        equations = synthesize_equations(
            signature, courses_descriptions(signature)
        )
        frame = next(
            e for e in equations if e.label == "synth:offered:enroll:frame"
        )
        assert frame.condition is None

    def test_affected_query_frame_is_guarded(self):
        signature = courses_signature()
        equations = synthesize_equations(
            signature, courses_descriptions(signature)
        )
        frame = next(
            e for e in equations if e.label == "synth:takes:enroll:frame"
        )
        assert frame.condition is not None


class TestE11Equivalence:
    """E11: the synthesized equations are observationally equivalent to
    the paper's hand-written ones on every trace."""

    def test_synthesized_spec_sufficiently_complete(self):
        report = check_sufficient_completeness(
            courses_synthesized(), depth=2
        )
        assert report.ok

    def test_snapshots_agree_on_all_short_traces(self):
        paper = TraceAlgebra(courses_algebraic())
        synthesized = TraceAlgebra(courses_synthesized())
        for trace in itertools.islice(paper.traces(2), 300):
            assert paper.snapshot(trace) == synthesized.snapshot(trace)

    def test_state_graphs_are_isomorphic(self):
        paper = TraceAlgebra(courses_algebraic()).explore()
        synthesized = TraceAlgebra(courses_synthesized()).explore()
        assert set(paper.states) == set(synthesized.states)
        assert {
            (t.source, t.update, t.params, t.target)
            for t in paper.transitions
        } == {
            (t.source, t.update, t.params, t.target)
            for t in synthesized.transitions
        }

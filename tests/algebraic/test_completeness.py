"""Tests for sufficient completeness (Section 4.4a), including
failure-injected specifications."""

import pytest

from repro.algebraic.completeness import (
    check_coverage,
    check_sufficient_completeness,
    check_termination,
)
from repro.algebraic.equations import ConditionalEquation
from repro.algebraic.signature import AlgebraicSignature
from repro.algebraic.spec import AlgebraicSpec
from repro.applications.courses import courses_algebraic
from repro.logic import formulas as fm
from repro.logic.sorts import STATE
from repro.logic.terms import Var


def _tiny():
    signature = AlgebraicSignature()
    course = signature.add_parameter_sort("course")
    signature.add_parameter_values(course, ["c1", "c2"])
    signature.add_query("q", [course])
    signature.add_query("r", [course])
    signature.add_initial()
    signature.add_update("touch", [course])
    course_sort = course
    c = Var("c", course_sort)
    u = Var("U", STATE)
    return signature, c, u


class TestTermination:
    def test_paper_spec_is_structural(self):
        report = check_termination(courses_algebraic())
        assert report.ok
        assert report.structural
        assert "terminating" in str(report)

    def test_circular_spec_detected(self):
        signature, c, u = _tiny()
        touched = signature.apply_update("touch", c, u)
        equations = (
            ConditionalEquation(
                signature.apply_query("q", c, signature.initial_term()),
                signature.false(),
            ),
            ConditionalEquation(
                signature.apply_query("r", c, signature.initial_term()),
                signature.false(),
            ),
            ConditionalEquation(
                signature.apply_query("q", c, touched),
                signature.apply_query("r", c, touched),
            ),
            ConditionalEquation(
                signature.apply_query("r", c, touched),
                signature.apply_query("q", c, touched),
            ),
        )
        report = check_termination(AlgebraicSpec(signature, equations))
        assert not report.ok
        assert report.cycles
        assert not report.structural
        assert "circular" in str(report)

    def test_non_decreasing_but_acyclic_is_accepted(self):
        # q on touch refers to r on the unreduced state; r always
        # reduces.  No cycle, so termination still certified.
        signature, c, u = _tiny()
        touched = signature.apply_update("touch", c, u)
        equations = (
            ConditionalEquation(
                signature.apply_query("q", c, signature.initial_term()),
                signature.false(),
            ),
            ConditionalEquation(
                signature.apply_query("r", c, signature.initial_term()),
                signature.false(),
            ),
            ConditionalEquation(
                signature.apply_query("q", c, touched),
                signature.apply_query("r", c, touched),
            ),
            ConditionalEquation(
                signature.apply_query("r", c, touched),
                signature.true(),
            ),
        )
        report = check_termination(AlgebraicSpec(signature, equations))
        assert report.ok
        assert not report.structural
        assert report.non_decreasing_calls

    def test_condition_calls_analyzed_too(self):
        signature, c, u = _tiny()
        touched = signature.apply_update("touch", c, u)
        condition = fm.Equals(
            signature.apply_query("q", c, touched), signature.true()
        )
        equations = (
            ConditionalEquation(
                signature.apply_query("q", c, touched),
                signature.true(),
                condition,
            ),
        )
        report = check_termination(AlgebraicSpec(signature, equations))
        assert not report.ok


class TestCoverage:
    def test_paper_spec_covered(self):
        report = check_coverage(courses_algebraic(), depth=2)
        assert report.ok
        assert report.traces_checked > 0

    def test_missing_constructor_reported(self):
        signature, c, u = _tiny()
        equations = (
            ConditionalEquation(
                signature.apply_query("q", c, signature.initial_term()),
                signature.false(),
            ),
            ConditionalEquation(
                signature.apply_query("r", c, signature.initial_term()),
                signature.false(),
            ),
            ConditionalEquation(
                signature.apply_query(
                    "r", c, signature.apply_update("touch", c, u)
                ),
                signature.false(),
            ),
        )
        report = check_coverage(
            AlgebraicSpec(signature, equations), depth=1
        )
        assert not report.ok
        assert ("q", "touch") in report.missing_constructors

    def test_non_exhaustive_conditions_reported(self):
        # Conditions only cover c = c1; evaluating q(c2, touch(...))
        # finds no applicable equation.
        signature, c, u = _tiny()
        course = signature.logic.sort("course")
        touched = signature.apply_update("touch", c, u)
        only_c1 = fm.Equals(c, signature.value(course, "c1"))
        equations = (
            ConditionalEquation(
                signature.apply_query("q", c, signature.initial_term()),
                signature.false(),
            ),
            ConditionalEquation(
                signature.apply_query("r", c, signature.initial_term()),
                signature.false(),
            ),
            ConditionalEquation(
                signature.apply_query("q", c, touched),
                signature.true(),
                only_c1,
            ),
            ConditionalEquation(
                signature.apply_query("r", c, touched),
                signature.false(),
            ),
        )
        report = check_coverage(
            AlgebraicSpec(signature, equations), depth=1
        )
        assert not report.ok
        assert report.uncovered
        assert "gaps" in str(report)


class TestCombined:
    def test_paper_spec_sufficiently_complete(self):
        report = check_sufficient_completeness(
            courses_algebraic(), depth=2
        )
        assert report.ok
        assert "sufficiently complete" in str(report)

    def test_combined_failure(self):
        signature, c, u = _tiny()
        equations = (
            ConditionalEquation(
                signature.apply_query("q", c, signature.initial_term()),
                signature.false(),
            ),
        )
        report = check_sufficient_completeness(
            AlgebraicSpec(signature, equations), depth=1
        )
        assert not report.ok
        assert "NOT sufficiently complete" in str(report)

"""Tests for conditional equations."""

import pytest

from repro.errors import SpecificationError
from repro.algebraic.equations import ConditionalEquation
from repro.algebraic.signature import AlgebraicSignature
from repro.logic import formulas as fm
from repro.logic.sorts import STATE
from repro.logic.terms import Var


@pytest.fixture()
def signature():
    sig = AlgebraicSignature()
    course = sig.add_parameter_sort("course")
    sig.add_parameter_values(course, ["c1"])
    sig.add_query("offered", [course])
    sig.add_initial()
    sig.add_update("offer", [course])
    return sig


def _parts(signature):
    course = signature.logic.sort("course")
    c = Var("c", course)
    u = Var("U", STATE)
    lhs = signature.apply_query(
        "offered", c, signature.apply_update("offer", c, u)
    )
    return course, c, u, lhs


class TestValidation:
    def test_sides_must_share_sort(self, signature):
        course, c, u, lhs = _parts(signature)
        with pytest.raises(SpecificationError):
            ConditionalEquation(lhs, u)

    def test_rhs_vars_must_come_from_lhs(self, signature):
        course, c, u, lhs = _parts(signature)
        stray = Var("z", course)
        with pytest.raises(SpecificationError):
            ConditionalEquation(
                lhs, signature.apply_query("offered", stray, u)
            )

    def test_condition_vars_must_come_from_lhs(self, signature):
        course, c, u, lhs = _parts(signature)
        stray = Var("z", course)
        with pytest.raises(SpecificationError):
            ConditionalEquation(
                lhs,
                signature.true(),
                fm.Equals(stray, c),
            )

    def test_condition_cannot_quantify_states(self, signature):
        course, c, u, lhs = _parts(signature)
        condition = fm.Exists(
            Var("V", STATE),
            fm.Equals(signature.true(), signature.true()),
        )
        with pytest.raises(SpecificationError):
            ConditionalEquation(lhs, signature.true(), condition)

    def test_condition_atoms_must_be_equalities(self, signature):
        course, c, u, lhs = _parts(signature)
        from repro.logic.signature import PredicateSymbol

        atom = fm.Atom(PredicateSymbol("p", (course,)), (c,))
        with pytest.raises(SpecificationError):
            ConditionalEquation(lhs, signature.true(), atom)


class TestClassification:
    def test_q_equation(self, signature):
        course, c, u, lhs = _parts(signature)
        equation = ConditionalEquation(lhs, signature.true())
        assert equation.is_q_equation
        assert not equation.is_u_equation

    def test_u_equation(self, signature):
        course, c, u, _ = _parts(signature)
        lhs = signature.apply_update("offer", c, u)
        equation = ConditionalEquation(lhs, u)
        assert equation.is_u_equation

    def test_head_query_and_constructor(self, signature):
        course, c, u, lhs = _parts(signature)
        equation = ConditionalEquation(lhs, signature.true())
        assert equation.head_query == "offered"
        assert equation.constructor == "offer"

    def test_constructor_of_initiate(self, signature):
        course, c, u, _ = _parts(signature)
        lhs = signature.apply_query(
            "offered", c, signature.initial_term()
        )
        equation = ConditionalEquation(lhs, signature.false())
        assert equation.constructor == "initiate"

    def test_str_with_and_without_condition(self, signature):
        course, c, u, lhs = _parts(signature)
        bare = ConditionalEquation(lhs, signature.true(), None, "eq3")
        assert str(bare).startswith("[eq3]")
        guarded = ConditionalEquation(
            lhs, signature.true(), fm.Not(fm.Equals(c, c))
        )
        assert "=>" in str(guarded)

"""Tests for AlgebraicSignature."""

import pytest

from repro.errors import SignatureError, SpecificationError
from repro.algebraic.signature import AlgebraicSignature
from repro.logic.sorts import BOOLEAN, STATE, Sort


@pytest.fixture()
def signature():
    sig = AlgebraicSignature("test")
    course = sig.add_parameter_sort("course")
    sig.add_parameter_values(course, ["c1", "c2"])
    sig.add_query("offered", [course])
    sig.add_initial()
    sig.add_update("offer", [course])
    return sig


class TestDeclarations:
    def test_boolean_preequipped(self, signature):
        assert signature.logic.has_function("True")
        assert signature.logic.has_function("and")
        assert signature.logic.has_function("iff")

    def test_parameter_sort_gets_equality_test(self, signature):
        eq = signature.logic.function("eq_course")
        assert eq.result_sort == BOOLEAN
        assert signature.is_equality_test(eq)

    def test_reserved_sorts_rejected(self):
        sig = AlgebraicSignature()
        with pytest.raises(SignatureError):
            sig.add_parameter_sort("Boolean")
        with pytest.raises(SignatureError):
            sig.add_parameter_sort("state")

    def test_query_appends_state_sort(self, signature):
        query = signature.query("offered")
        assert query.arg_sorts[-1] == STATE
        assert query.result_sort == BOOLEAN

    def test_query_cannot_return_state(self, signature):
        with pytest.raises(SignatureError):
            signature.add_query("bad", [], result_sort=STATE)

    def test_update_returns_state(self, signature):
        update = signature.update("offer")
        assert update.result_sort == STATE
        assert update.arg_sorts[-1] == STATE

    def test_initial_is_state_constant(self, signature):
        initial = signature.initial()
        assert initial.is_constant
        assert initial.result_sort == STATE

    def test_domain_records_values(self, signature):
        course = signature.logic.sort("course")
        assert signature.domain(course) == ("c1", "c2")

    def test_domain_of_non_parameter_sort_raises(self, signature):
        with pytest.raises(SignatureError):
            signature.domain(Sort("nope"))

    def test_parameter_function_interpretation(self):
        sig = AlgebraicSignature()
        money = sig.add_parameter_sort("money")
        sig.add_parameter_values(money, ["m0", "m1"])
        sig.add_parameter_function(
            "inc", [money], money, lambda m: "m1"
        )
        assert sig.interpretation("inc")("m0") == "m1"

    def test_parameter_function_cannot_touch_state(self):
        sig = AlgebraicSignature()
        with pytest.raises(SignatureError):
            sig.add_parameter_function(
                "bad", [STATE], BOOLEAN, lambda s: True
            )

    def test_value_of_undeclared_rejected(self, signature):
        course = signature.logic.sort("course")
        with pytest.raises(SignatureError):
            signature.value(course, "c99")


class TestTermBuilders:
    def test_boolean_constants(self, signature):
        assert str(signature.true()) == "True"
        assert str(signature.boolean(False)) == "False"

    def test_connective_builders(self, signature):
        term = signature.implies_(
            signature.not_(signature.true()),
            signature.or_(signature.false(), signature.true()),
        )
        assert term.sort == BOOLEAN

    def test_eq_builder_checks_sorts(self, signature):
        course = signature.logic.sort("course")
        c1 = signature.value(course, "c1")
        assert signature.eq(c1, c1).symbol.name == "eq_course"
        student_like = signature.state_var()
        with pytest.raises(SpecificationError):
            signature.eq(c1, student_like)

    def test_apply_query_and_update(self, signature):
        course = signature.logic.sort("course")
        c1 = signature.value(course, "c1")
        trace = signature.apply_update(
            "offer", c1, signature.initial_term()
        )
        query = signature.apply_query("offered", c1, trace)
        assert query.sort == BOOLEAN
        assert trace.sort == STATE

    def test_classifiers(self, signature):
        assert signature.is_query(signature.query("offered"))
        assert signature.is_update(signature.update("offer"))
        assert signature.is_initial(signature.initial())
        assert not signature.is_query(signature.update("offer"))

"""Tests for the conditional rewriting engine, checked against the
paper's worked examples in Section 4.2."""

import pytest

from repro.errors import (
    EvaluationError,
    IncompletenessError,
    NonTerminationError,
)
from repro.algebraic.equations import ConditionalEquation
from repro.algebraic.rewriting import RewriteEngine
from repro.algebraic.signature import AlgebraicSignature
from repro.algebraic.spec import AlgebraicSpec
from repro.applications.courses import courses_algebraic
from repro.logic import formulas as fm
from repro.logic.sorts import STATE
from repro.logic.terms import Var


@pytest.fixture(scope="module")
def engine():
    return RewriteEngine(courses_algebraic())


def trace(engine, *ops):
    """Build a trace from ("update", params...) steps."""
    signature = engine.signature
    term = signature.initial_term()
    for name, *params in ops:
        symbol = signature.update(name)
        args = [
            signature.value(sort, value)
            for sort, value in zip(symbol.arg_sorts[:-1], params)
        ]
        from repro.logic.terms import App

        term = App(symbol, (*args, term))
    return term


def offered(engine, course, state):
    signature = engine.signature
    c = signature.value(signature.logic.sort("course"), course)
    return engine.evaluate(signature.apply_query("offered", c, state))


def takes(engine, student, course, state):
    signature = engine.signature
    s = signature.value(signature.logic.sort("student"), student)
    c = signature.value(signature.logic.sort("course"), course)
    return engine.evaluate(signature.apply_query("takes", s, c, state))


class TestPaperEquations:
    """Each test exercises one of the fifteen equations of Section 4.2."""

    def test_eq1_nothing_offered_initially(self, engine):
        assert offered(engine, "c1", trace(engine)) is False

    def test_eq2_nothing_taken_initially(self, engine):
        assert takes(engine, "s1", "c1", trace(engine)) is False

    def test_eq3_offer_offers(self, engine):
        state = trace(engine, ("offer", "c1"))
        assert offered(engine, "c1", state) is True

    def test_eq4_offer_leaves_other_courses(self, engine):
        state = trace(engine, ("offer", "c1"))
        assert offered(engine, "c2", state) is False

    def test_eq5_offer_leaves_enrollment(self, engine):
        state = trace(engine, ("offer", "c1"))
        assert takes(engine, "s1", "c1", state) is False

    def test_eq6_cancel_blocked_while_taken(self, engine):
        state = trace(
            engine, ("offer", "c1"), ("enroll", "s1", "c1"), ("cancel", "c1")
        )
        assert offered(engine, "c1", state) is True

    def test_eq6_cancel_succeeds_when_free(self, engine):
        state = trace(engine, ("offer", "c1"), ("cancel", "c1"))
        assert offered(engine, "c1", state) is False

    def test_eq7_cancel_leaves_other_courses(self, engine):
        state = trace(
            engine, ("offer", "c1"), ("offer", "c2"), ("cancel", "c2")
        )
        assert offered(engine, "c1", state) is True

    def test_eq8_cancel_leaves_enrollment(self, engine):
        state = trace(
            engine, ("offer", "c1"), ("enroll", "s1", "c1"), ("cancel", "c2")
        )
        assert takes(engine, "s1", "c1", state) is True

    def test_eq9_enroll_leaves_offerings(self, engine):
        state = trace(engine, ("offer", "c1"), ("enroll", "s1", "c1"))
        assert offered(engine, "c1", state) is True

    def test_eq10_enroll_takes_iff_offered(self, engine):
        enrolled = trace(engine, ("offer", "c1"), ("enroll", "s1", "c1"))
        assert takes(engine, "s1", "c1", enrolled) is True
        blocked = trace(engine, ("enroll", "s1", "c1"))
        assert takes(engine, "s1", "c1", blocked) is False

    def test_eq11_enroll_leaves_other_enrollments(self, engine):
        state = trace(engine, ("offer", "c1"), ("enroll", "s1", "c1"))
        assert takes(engine, "s2", "c1", state) is False

    def test_eq12_transfer_leaves_offerings(self, engine):
        state = trace(
            engine,
            ("offer", "c1"),
            ("offer", "c2"),
            ("enroll", "s1", "c1"),
            ("transfer", "s1", "c1", "c2"),
        )
        assert offered(engine, "c1", state) is True
        assert offered(engine, "c2", state) is True

    def test_eq13_eq14_transfer_moves_enrollment(self, engine):
        state = trace(
            engine,
            ("offer", "c1"),
            ("offer", "c2"),
            ("enroll", "s1", "c1"),
            ("transfer", "s1", "c1", "c2"),
        )
        assert takes(engine, "s1", "c1", state) is False
        assert takes(engine, "s1", "c2", state) is True

    def test_transfer_blocked_to_unoffered_course(self, engine):
        state = trace(
            engine,
            ("offer", "c1"),
            ("enroll", "s1", "c1"),
            ("transfer", "s1", "c1", "c2"),
        )
        assert takes(engine, "s1", "c1", state) is True
        assert takes(engine, "s1", "c2", state) is False

    def test_transfer_to_same_course_is_noop(self, engine):
        state = trace(
            engine,
            ("offer", "c1"),
            ("enroll", "s1", "c1"),
            ("transfer", "s1", "c1", "c1"),
        )
        assert takes(engine, "s1", "c1", state) is True

    def test_eq15_transfer_leaves_other_students(self, engine):
        state = trace(
            engine,
            ("offer", "c1"),
            ("offer", "c2"),
            ("enroll", "s1", "c1"),
            ("enroll", "s2", "c1"),
            ("transfer", "s1", "c1", "c2"),
        )
        assert takes(engine, "s2", "c1", state) is True


class TestEngineBasics:
    def test_state_terms_not_evaluable(self, engine):
        with pytest.raises(EvaluationError):
            engine.evaluate(trace(engine, ("offer", "c1")))

    def test_non_ground_rejected(self, engine):
        signature = engine.signature
        c = Var("c", signature.logic.sort("course"))
        with pytest.raises(EvaluationError):
            engine.evaluate(
                signature.apply_query("offered", c, trace(engine))
            )

    def test_connectives(self, engine):
        signature = engine.signature
        term = signature.and_(
            signature.true(), signature.not_(signature.false())
        )
        assert engine.evaluate(term) is True

    def test_equality_test(self, engine):
        signature = engine.signature
        course = signature.logic.sort("course")
        same = signature.eq(
            signature.value(course, "c1"), signature.value(course, "c1")
        )
        different = signature.eq(
            signature.value(course, "c1"), signature.value(course, "c2")
        )
        assert engine.evaluate(same) is True
        assert engine.evaluate(different) is False

    def test_holds_quantified_condition(self, engine):
        signature = engine.signature
        student = signature.logic.sort("student")
        s = Var("s", student)
        state = trace(
            engine, ("offer", "c1"), ("enroll", "s1", "c1")
        )
        c1 = signature.value(signature.logic.sort("course"), "c1")
        condition = fm.Exists(
            s,
            fm.Equals(
                signature.apply_query("takes", s, c1, state),
                signature.true(),
            ),
        )
        assert engine.holds(condition)
        assert engine.holds(fm.Not(condition)) is False

    def test_memoization_reuses_results(self, engine):
        fresh = RewriteEngine(courses_algebraic())
        state = trace(fresh, ("offer", "c1"), ("enroll", "s1", "c1"))
        offered(fresh, "c1", state)
        size_after_first = fresh.cache_size
        offered(fresh, "c1", state)
        assert fresh.cache_size == size_after_first
        fresh.clear_cache()
        assert fresh.cache_size == 0

    def test_memoization_correct_for_false_values(self):
        # Regression guard: False must be cached and returned, not
        # confused with a cache miss.
        fresh = RewriteEngine(courses_algebraic())
        state = trace(fresh)
        assert offered(fresh, "c1", state) is False
        assert offered(fresh, "c1", state) is False


class TestFailureModes:
    def _tiny_signature(self):
        signature = AlgebraicSignature()
        course = signature.add_parameter_sort("course")
        signature.add_parameter_values(course, ["c1"])
        signature.add_query("q", [course])
        signature.add_query("r", [course])
        signature.add_initial()
        signature.add_update("touch", [course])
        return signature, course

    def test_incomplete_spec_raises(self):
        signature, course = self._tiny_signature()
        c = Var("c", course)
        u = Var("U", STATE)
        # Only q on initiate is defined; q on touch is missing.
        equations = (
            ConditionalEquation(
                signature.apply_query("q", c, signature.initial_term()),
                signature.false(),
            ),
        )
        spec = AlgebraicSpec(signature, equations)
        engine = RewriteEngine(spec)
        term = signature.apply_query(
            "q",
            signature.value(course, "c1"),
            signature.apply_update(
                "touch",
                signature.value(course, "c1"),
                signature.initial_term(),
            ),
        )
        with pytest.raises(IncompletenessError):
            engine.evaluate(term)

    def test_circular_spec_raises_nontermination(self):
        signature, course = self._tiny_signature()
        c = Var("c", course)
        u = Var("U", STATE)
        touched = signature.apply_update("touch", c, u)
        # q on touch is defined in terms of r on the SAME (unreduced)
        # state and vice versa: the circularity of Section 4.2.
        equations = (
            ConditionalEquation(
                signature.apply_query("q", c, signature.initial_term()),
                signature.false(),
            ),
            ConditionalEquation(
                signature.apply_query("r", c, signature.initial_term()),
                signature.false(),
            ),
            ConditionalEquation(
                signature.apply_query("q", c, touched),
                signature.apply_query("r", c, touched),
            ),
            ConditionalEquation(
                signature.apply_query("r", c, touched),
                signature.apply_query("q", c, touched),
            ),
        )
        spec = AlgebraicSpec(signature, equations)
        engine = RewriteEngine(spec, fuel=100)
        term = signature.apply_query(
            "q",
            signature.value(course, "c1"),
            signature.apply_update(
                "touch",
                signature.value(course, "c1"),
                signature.initial_term(),
            ),
        )
        with pytest.raises(NonTerminationError):
            engine.evaluate(term)

"""Tests for trace algebras, snapshots and state-space exploration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SpecificationError


UPDATE_STRATEGY = st.lists(
    st.one_of(
        st.tuples(st.just("offer"), st.sampled_from(["c1", "c2"])),
        st.tuples(st.just("cancel"), st.sampled_from(["c1", "c2"])),
        st.tuples(
            st.just("enroll"),
            st.sampled_from(["s1", "s2"]),
            st.sampled_from(["c1", "c2"]),
        ),
        st.tuples(
            st.just("transfer"),
            st.sampled_from(["s1", "s2"]),
            st.sampled_from(["c1", "c2"]),
            st.sampled_from(["c1", "c2"]),
        ),
    ),
    max_size=6,
)


def build(algebra, steps):
    term = algebra.initial_trace()
    for name, *params in steps:
        term = algebra.apply(name, *params, trace=term)
    return term


class TestTraceConstruction:
    def test_initial_trace(self, courses_algebra):
        assert str(courses_algebra.initial_trace()) == "initiate"

    def test_apply_builds_nested_term(self, courses_algebra):
        term = build(courses_algebra, [("offer", "c1")])
        assert str(term) == "offer(c1, initiate)"

    def test_apply_arity_checked(self, courses_algebra):
        with pytest.raises(SpecificationError):
            courses_algebra.apply(
                "offer", "c1", "c2", trace=courses_algebra.initial_trace()
            )

    def test_query_arity_checked(self, courses_algebra):
        with pytest.raises(SpecificationError):
            courses_algebra.query(
                "offered", trace=courses_algebra.initial_trace()
            )

    def test_update_instances_count(self, courses_algebra):
        # offer: 2, cancel: 2, enroll: 4, transfer: 8.
        assert len(list(courses_algebra.update_instances())) == 16

    def test_traces_bfs_counts(self, courses_algebra):
        assert len(list(courses_algebra.traces(0))) == 1
        assert len(list(courses_algebra.traces(1))) == 17


class TestObservations:
    def test_observation_count(self, courses_algebra):
        # offered: 2 instances, takes: 4.
        assert len(courses_algebra.observations) == 6

    def test_snapshot_values(self, courses_algebra):
        term = build(
            courses_algebra, [("offer", "c1"), ("enroll", "s1", "c1")]
        )
        snapshot = courses_algebra.snapshot(term)
        assert snapshot.value("offered", ("c1",)) is True
        assert snapshot.value("offered", ("c2",)) is False
        assert snapshot.value("takes", ("s1", "c1")) is True

    def test_snapshot_relation_view(self, courses_algebra):
        term = build(courses_algebra, [("offer", "c1")])
        snapshot = courses_algebra.snapshot(term)
        assert snapshot.relation("offered") == frozenset({("c1",)})

    def test_snapshot_missing_observation(self, courses_algebra):
        snapshot = courses_algebra.snapshot(
            courses_algebra.initial_trace()
        )
        with pytest.raises(KeyError):
            snapshot.value("offered", ("c99",))

    def test_observationally_equal_for_commuting_offers(
        self, courses_algebra
    ):
        left = build(courses_algebra, [("offer", "c1"), ("offer", "c2")])
        right = build(courses_algebra, [("offer", "c2"), ("offer", "c1")])
        assert courses_algebra.observationally_equal(left, right)

    def test_observationally_distinct(self, courses_algebra):
        left = build(courses_algebra, [("offer", "c1")])
        right = build(courses_algebra, [("offer", "c2")])
        assert not courses_algebra.observationally_equal(left, right)

    @settings(max_examples=30, deadline=None)
    @given(UPDATE_STRATEGY)
    def test_blocked_update_leaves_snapshot_unchanged(
        self, courses_algebra, steps
    ):
        # cancel on a taken course is the paper's canonical blocked
        # update: the state must be observationally unchanged.
        term = build(courses_algebra, steps)
        before = courses_algebra.snapshot(term)
        if before.value("takes", ("s1", "c1")):
            after = courses_algebra.snapshot(
                courses_algebra.apply("cancel", "c1", trace=term)
            )
            assert before == after


class TestExploration:
    def test_reachable_state_count_matches_valid(self, courses_algebra):
        # Hand count for 2 students x 2 courses: offered in {(), c1,
        # c2, c1c2} with takes limited to offered courses:
        # 1 + 4 + 4 + 16 = 25.
        graph = courses_algebra.explore()
        assert len(graph) == 25
        assert not graph.truncated

    def test_every_state_has_out_degree_16(self, courses_algebra):
        graph = courses_algebra.explore()
        assert len(graph.transitions) == 25 * 16

    def test_witness_traces_denote_their_snapshot(self, courses_algebra):
        graph = courses_algebra.explore()
        for snapshot, witness in list(graph.states.items())[:5]:
            assert courses_algebra.snapshot(witness) == snapshot

    def test_truncation_flag(self, courses_algebra):
        graph = courses_algebra.explore(max_states=5)
        assert graph.truncated
        assert len(graph) == 5

    def test_max_depth_limits_exploration(self, courses_algebra):
        graph = courses_algebra.explore(max_depth=1)
        # initiate plus the distinct single-update states:
        # offer c1, offer c2 (cancel/enroll/transfer are no-ops).
        assert len(graph) == 3

    def test_successors_iterator(self, courses_algebra):
        graph = courses_algebra.explore(max_depth=1)
        outgoing = list(graph.successors(graph.initial))
        assert len(outgoing) == 16

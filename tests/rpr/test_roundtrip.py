"""Round-trip: printing a parsed schema and reparsing it yields an
equivalent schema (same declarations, same procedure semantics)."""

import pytest

from repro.applications.bank import bank_schema_source
from repro.applications.courses import courses_schema_source
from repro.applications.library import library_schema_source
from repro.applications.projects import projects_schema_source
from repro.logic.sorts import Sort
from repro.rpr.parser import parse_schema
from repro.rpr.semantics import initial_state, run_proc

SOURCES = {
    "courses": courses_schema_source(),
    "library": library_schema_source(),
    "projects": projects_schema_source(),
    "bank": bank_schema_source(),
}

DOMAINS = {
    "courses": {
        Sort("Students"): ("s1", "s2"),
        Sort("Courses"): ("c1", "c2"),
    },
    "library": {
        Sort("Members"): ("m1", "m2"),
        Sort("Books"): ("b1", "b2"),
    },
    "projects": {
        Sort("Employees"): ("e1", "e2"),
        Sort("Projects"): ("p1", "p2"),
    },
    "bank": {
        Sort("Accounts"): ("a1", "a2"),
        Sort("Money"): ("m0", "m1", "m2", "m3"),
    },
}

WORKLOADS = {
    "courses": [("offer", ("c1",)), ("enroll", ("s1", "c1")),
                ("cancel", ("c1",)), ("offer", ("c2",)),
                ("transfer", ("s1", "c1", "c2"))],
    "library": [("acquire", ("b1",)), ("checkout", ("m1", "b1")),
                ("retire", ("b1",)), ("return_book", ("m1", "b1"))],
    "projects": [("open_project", ("p1",)), ("assign", ("e1", "p1")),
                 ("dissolve", ("p1",)),
                 ("reassign", ("e1", "p1", "p2"))],
    "bank": [("open_account", ("a1",)), ("deposit", ("a1",)),
             ("withdraw", ("a1",)), ("close_account", ("a1",))],
}


@pytest.mark.parametrize("name", sorted(SOURCES))
def test_print_parse_roundtrip_preserves_structure(name):
    original = parse_schema(SOURCES[name])
    reparsed = parse_schema(str(original))
    assert [r.name for r in reparsed.relations] == [
        r.name for r in original.relations
    ]
    assert [p.name for p in reparsed.procs] == [
        p.name for p in original.procs
    ]
    assert reparsed.consts == original.consts


@pytest.mark.parametrize("name", sorted(SOURCES))
def test_print_parse_roundtrip_preserves_semantics(name):
    original = parse_schema(SOURCES[name])
    reparsed = parse_schema(str(original))
    domains = DOMAINS[name]
    state_a = initial_state(original)
    state_b = initial_state(reparsed)
    for proc, args in [("initiate", ())] + WORKLOADS[name]:
        (state_a,) = run_proc(original, proc, args, state_a, domains)
        (state_b,) = run_proc(reparsed, proc, args, state_b, domains)
        assert state_a == state_b, f"{name}: diverged after {proc}"

"""Tests for the denotational semantics: the six defining clauses of
m (Section 5.1.2) plus the algebraic laws relating them, checked both
pointwise (via run) and on materialized relations."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ExecutionError
from repro.logic import formulas as fm
from repro.logic.signature import PredicateSymbol
from repro.logic.sorts import Sort
from repro.logic.terms import Var
from repro.rpr.ast import (
    Assign,
    Insert,
    ProcDecl,
    RelAssign,
    RelationalTerm,
    ScalarDecl,
    ScalarRef,
    Schema,
    Seq,
    Skip,
    Star,
    Test,
    Union,
)
from repro.rpr.semantics import (
    DatabaseState,
    all_states,
    initial_state,
    run,
    run_proc,
    statement_relation,
)

THINGS = Sort("Things")
R_DECL = PredicateSymbol("R", (THINGS,))
X = Var("x", THINGS)
R_ATOM = fm.Atom(R_DECL, (X,))
R_HAS_A = fm.Exists(X, R_ATOM)

DOMAINS = {THINGS: ("t1", "t2")}


@pytest.fixture()
def schema():
    from repro.rpr.ast import RelationDecl

    return Schema(
        (RelationDecl("R", (THINGS,)),),
        (),
        (ScalarDecl("counter", THINGS),),
    )


@pytest.fixture()
def empty(schema):
    return initial_state(schema, scalars={"counter": "t1"})


def insert_t(value):
    from repro.rpr.ast import ValueLiteral

    return Insert("R", (ValueLiteral(value, THINGS),))


class TestDatabaseState:
    def test_make_normalizes(self):
        a = DatabaseState.make({"R": [("t1",), ("t2",)]})
        b = DatabaseState.make({"R": {("t2",), ("t1",)}})
        assert a == b
        assert hash(a) == hash(b)

    def test_missing_relation_raises(self):
        state = DatabaseState.make({"R": []})
        with pytest.raises(ExecutionError):
            state.relation("S")

    def test_with_scalar(self):
        state = DatabaseState.make({}, {"x": 1})
        assert state.with_scalar("x", 2).scalar("x") == 2
        with pytest.raises(ExecutionError):
            state.with_scalar("y", 0)

    def test_initial_state_requires_scalar_values(self, schema):
        with pytest.raises(ExecutionError):
            initial_state(schema)


class TestMeaningClauses:
    def test_assign_clause(self, schema, empty):
        from repro.rpr.ast import ValueLiteral

        result = run(
            Assign("counter", ValueLiteral("t2", THINGS)),
            empty,
            schema,
            DOMAINS,
        )
        assert result == {empty.with_scalar("counter", "t2")}

    def test_relassign_clause(self, schema, empty):
        # R := {x / x = x} fills the relation with the whole domain.
        term = RelationalTerm((X,), fm.Equals(X, X))
        (result,) = run(RelAssign("R", term), empty, schema, DOMAINS)
        assert result.relation("R") == {("t1",), ("t2",)}

    def test_test_clause(self, schema, empty):
        assert run(Test(fm.TRUE), empty, schema, DOMAINS) == {empty}
        assert run(Test(R_HAS_A), empty, schema, DOMAINS) == frozenset()

    def test_union_clause(self, schema, empty):
        result = run(
            Union(insert_t("t1"), insert_t("t2")), empty, schema, DOMAINS
        )
        assert len(result) == 2

    def test_seq_clause(self, schema, empty):
        (result,) = run(
            Seq(insert_t("t1"), insert_t("t2")), empty, schema, DOMAINS
        )
        assert result.relation("R") == {("t1",), ("t2",)}

    def test_star_clause_reflexive(self, schema, empty):
        result = run(Star(insert_t("t1")), empty, schema, DOMAINS)
        assert empty in result
        assert len(result) == 2

    def test_star_reaches_fixpoint(self, schema, empty):
        body = Union(insert_t("t1"), insert_t("t2"))
        result = run(Star(body), empty, schema, DOMAINS)
        # {}, {t1}, {t2}, {t1,t2}.
        assert len(result) == 4


class TestAlgebraicLaws:
    """m(p u q) = m(p) ∪ m(q), m(p ; q) = m(p) ∘ m(q), and star as the
    reflexive-transitive closure — checked on materialized relations
    over the full universe (the paper's actual definitions)."""

    def universe(self, schema):
        return list(
            all_states(schema, DOMAINS, scalar_values={"counter": ("t1",)})
        )

    def test_union_is_set_union(self, schema):
        universe = self.universe(schema)
        p, q = insert_t("t1"), insert_t("t2")
        m_union = statement_relation(
            Union(p, q), schema, DOMAINS, universe
        )
        m_p = statement_relation(p, schema, DOMAINS, universe)
        m_q = statement_relation(q, schema, DOMAINS, universe)
        assert m_union == m_p | m_q

    def test_seq_is_composition(self, schema):
        universe = self.universe(schema)
        p, q = insert_t("t1"), insert_t("t2")
        m_seq = statement_relation(Seq(p, q), schema, DOMAINS, universe)
        m_p = statement_relation(p, schema, DOMAINS, universe)
        m_q = statement_relation(q, schema, DOMAINS, universe)
        composed = {
            (a, c) for a, b in m_p for b2, c in m_q if b == b2
        }
        assert m_seq == composed

    def test_star_is_reflexive_transitive_closure(self, schema):
        universe = self.universe(schema)
        p = insert_t("t1")
        m_star = statement_relation(Star(p), schema, DOMAINS, universe)
        m_p = statement_relation(p, schema, DOMAINS, universe)
        closure = {(a, a) for a in universe}
        changed = True
        while changed:
            changed = False
            for a, b in list(closure):
                for b2, c in m_p:
                    if b == b2 and (a, c) not in closure:
                        closure.add((a, c))
                        changed = True
        assert m_star == closure

    def test_test_is_identity_on_satisfying_states(self, schema):
        universe = self.universe(schema)
        m_test = statement_relation(
            Test(R_HAS_A), schema, DOMAINS, universe
        )
        assert all(a == b for a, b in m_test)
        assert all(("t1",) in a.relation("R") or ("t2",) in a.relation("R")
                   for a, _ in m_test)


class TestProcMeaning:
    def test_run_proc_binds_parameters(self, courses_schema):
        domains = {
            Sort("Students"): ("s1",),
            Sort("Courses"): ("c1",),
        }
        state = initial_state(courses_schema)
        (after,) = run_proc(
            courses_schema, "offer", ("c1",), state, domains
        )
        assert after.relation("OFFERED") == {("c1",)}

    def test_run_proc_arity_checked(self, courses_schema):
        domains = {Sort("Students"): ("s1",), Sort("Courses"): ("c1",)}
        state = initial_state(courses_schema)
        with pytest.raises(ExecutionError):
            run_proc(courses_schema, "offer", (), state, domains)

    def test_blocked_if_then_is_noop_not_stuck(self, courses_schema):
        domains = {Sort("Students"): ("s1",), Sort("Courses"): ("c1",)}
        state = initial_state(courses_schema)
        (after,) = run_proc(
            courses_schema, "enroll", ("s1", "c1"), state, domains
        )
        assert after == state

"""Tests for the RPR lexer and parser."""

import pytest

from repro.errors import ParseError
from repro.logic import formulas as fm
from repro.rpr.ast import (
    Delete,
    IfThen,
    IfThenElse,
    Insert,
    RelAssign,
    Seq,
    Star,
    Test,
    Union,
    ValueLiteral,
    While,
)
from repro.rpr.lexer import tokenize
from repro.rpr.parser import parse_schema


class TestLexer:
    def test_end_schema_is_one_token(self):
        tokens = tokenize("end-schema")
        assert tokens[0].kind == "end-schema"

    def test_assign_operator(self):
        tokens = tokenize("R := {}")
        assert [t.text for t in tokens[:-1]] == ["R", ":=", "{", "}"]

    def test_line_comment_skipped(self):
        tokens = tokenize("R -- a comment\n S")
        assert [t.text for t in tokens[:-1]] == ["R", "S"]

    def test_block_comment_skipped(self):
        tokens = tokenize("R /* course c is cancelled */ S")
        assert [t.text for t in tokens[:-1]] == ["R", "S"]

    def test_bad_character(self):
        with pytest.raises(ParseError):
            tokenize("R @ S")


def parse_proc(
    body, decls="R(Things); S(Things, Things);", params="x: Things"
):
    source = f"""
schema
  {decls}
  proc p({params}) = {body}
end-schema
"""
    schema = parse_schema(source)
    return schema.proc("p").body


class TestDeclarations:
    def test_relations_and_columns(self, courses_schema):
        offered = courses_schema.relation("OFFERED")
        assert [s.name for s in offered.column_sorts] == ["Courses"]
        takes = courses_schema.relation("TAKES")
        assert [s.name for s in takes.column_sorts] == [
            "Students",
            "Courses",
        ]

    def test_all_procs_present(self, courses_schema):
        names = [p.name for p in courses_schema.procs]
        assert names == [
            "initiate",
            "offer",
            "cancel",
            "enroll",
            "transfer",
        ]

    def test_scalar_declaration(self):
        schema = parse_schema(
            """
schema
  R(Things);
  var counter: Things;
  proc bump(x) = counter := x
end-schema
"""
        )
        assert schema.scalar("counter").sort.name == "Things"

    def test_const_declaration_and_use(self):
        schema = parse_schema(
            """
schema
  R(Things);
  const t0: Things;
  proc reset() = R := {(x) / x = t0}
end-schema
"""
        )
        body = schema.proc("reset").body
        assert isinstance(body, RelAssign)
        equals = body.term.formula
        assert isinstance(equals.rhs, ValueLiteral)

    def test_redeclared_relation_rejected(self):
        with pytest.raises(ParseError):
            parse_schema("schema R(Things); R(Things); end-schema")


class TestParamInference:
    def test_sorts_inferred_from_relation_use(self, courses_schema):
        enroll = courses_schema.proc("enroll")
        assert [v.var_sort.name for v in enroll.params] == [
            "Students",
            "Courses",
        ]

    def test_explicit_annotation_wins(self):
        schema = parse_schema(
            """
schema
  R(Things);
  proc p(x: Widgets) = true?
end-schema
"""
        )
        assert schema.proc("p").params[0].var_sort.name == "Widgets"

    def test_uninferable_param_rejected(self):
        with pytest.raises(ParseError, match="infer"):
            parse_schema(
                """
schema
  R(Things);
  proc p(x) = true?
end-schema
"""
            )

    def test_conflicting_inference_rejected(self):
        with pytest.raises(ParseError, match="conflicting"):
            parse_schema(
                """
schema
  R(Things);
  S(Widgets);
  proc p(x) = (insert R(x) ; insert S(x))
end-schema
"""
            )


class TestStatements:
    def test_insert_delete(self):
        body = parse_proc("(insert R(x) ; delete R(x))")
        assert isinstance(body, Seq)
        assert isinstance(body.left, Insert)
        assert isinstance(body.right, Delete)

    def test_if_then(self):
        body = parse_proc("if R(x) then insert R(x)")
        assert isinstance(body, IfThen)

    def test_if_then_else(self):
        body = parse_proc("if R(x) then insert R(x) else delete R(x)")
        assert isinstance(body, IfThenElse)

    def test_while(self):
        body = parse_proc("while R(x) do delete R(x)")
        assert isinstance(body, While)

    def test_union_and_star(self):
        body = parse_proc("(insert R(x))* | delete R(x)")
        assert isinstance(body, Union)
        assert isinstance(body.left, Star)

    def test_test_statement(self):
        body = parse_proc("R(x)?")
        assert isinstance(body, Test)

    def test_parenthesized_formula_test(self):
        body = parse_proc("(R(x) & ~S(x, x))?")
        assert isinstance(body, Test)
        assert isinstance(body.formula, fm.And)

    def test_empty_relational_assignment(self):
        body = parse_proc("R := {}")
        assert isinstance(body, RelAssign)
        assert body.term.formula == fm.FALSE

    def test_general_relational_assignment(self):
        body = parse_proc("S := {(a, b) / R(a) & R(b)}")
        assert isinstance(body, RelAssign)
        assert len(body.term.variables) == 2

    def test_relterm_arity_mismatch_rejected(self):
        with pytest.raises(ParseError):
            parse_proc("S := {(a) / R(a)}")

    def test_assignment_to_undeclared_rejected(self):
        with pytest.raises(ParseError):
            parse_proc("T := {}")

    def test_insert_into_undeclared_rejected(self):
        with pytest.raises(ParseError):
            parse_proc("insert T(x)")

    def test_insert_arity_checked(self):
        with pytest.raises(ParseError):
            parse_proc("insert S(x)")

    def test_quantified_formula(self):
        body = parse_proc("if ~exists y: Things. S(x, y) then insert R(x)")
        assert isinstance(body, IfThen)
        assert isinstance(body.condition, fm.Not)
        assert isinstance(body.condition.body, fm.Exists)

    def test_unknown_identifier_in_term_rejected(self):
        with pytest.raises(ParseError, match="mystery"):
            parse_proc("insert R(mystery)")

    def test_equality_formula(self):
        body = parse_proc("x = x?")
        assert isinstance(body, Test)
        assert isinstance(body.formula, fm.Equals)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_schema("schema R(Things); end-schema extra")

    def test_missing_end_schema_rejected(self):
        with pytest.raises(ParseError):
            parse_schema("schema R(Things);")

"""Property-based tests of the denotational semantics: the defining
laws of m hold for *randomly generated* statements, not just
hand-picked ones."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import formulas as fm
from repro.logic.signature import PredicateSymbol
from repro.logic.sorts import Sort
from repro.rpr.ast import (
    Delete,
    IfThen,
    IfThenElse,
    Insert,
    RelationDecl,
    Schema,
    Seq,
    Skip,
    Star,
    Test,
    Union,
    ValueLiteral,
    While,
    desugar,
)
from repro.rpr.semantics import DatabaseState, all_states, run

THINGS = Sort("Things")
VALUES = ("t1", "t2")
DOMAINS = {THINGS: VALUES}
R = PredicateSymbol("R", (THINGS,))
S = PredicateSymbol("S", (THINGS,))

SCHEMA = Schema(
    (RelationDecl("R", (THINGS,)), RelationDecl("S", (THINGS,))),
    (),
)


def _lit(value):
    return ValueLiteral(value, THINGS)


def _formula_strategy():
    atoms = st.sampled_from(
        [
            fm.Atom(R, (_lit("t1"),)),
            fm.Atom(R, (_lit("t2"),)),
            fm.Atom(S, (_lit("t1"),)),
            fm.TRUE,
            fm.FALSE,
        ]
    )
    return st.recursive(
        atoms,
        lambda children: st.one_of(
            st.builds(fm.Not, children),
            st.builds(fm.And, children, children),
            st.builds(fm.Or, children, children),
        ),
        max_leaves=4,
    )


def _statement_strategy(max_depth=3):
    base = st.one_of(
        st.just(Skip()),
        st.builds(Insert, st.just("R"), st.tuples(st.sampled_from(
            [_lit("t1"), _lit("t2")]))),
        st.builds(Delete, st.just("R"), st.tuples(st.sampled_from(
            [_lit("t1"), _lit("t2")]))),
        st.builds(Insert, st.just("S"), st.tuples(st.just(_lit("t1")))),
        st.builds(Test, _formula_strategy()),
    )
    return st.recursive(
        base,
        lambda children: st.one_of(
            st.builds(Seq, children, children),
            st.builds(Union, children, children),
            st.builds(IfThen, _formula_strategy(), children),
            st.builds(
                IfThenElse, _formula_strategy(), children, children
            ),
            st.builds(Star, children),
        ),
        max_leaves=2 ** max_depth,
    )


STATES = st.builds(
    lambda r, s: DatabaseState.make({"R": r, "S": s}),
    st.sets(st.sampled_from([("t1",), ("t2",)])),
    st.sets(st.sampled_from([("t1",), ("t2",)])),
)


class TestSemanticsLaws:
    @settings(max_examples=60, deadline=None)
    @given(_statement_strategy(), _statement_strategy(), STATES)
    def test_union_is_image_union(self, p, q, state):
        assert run(Union(p, q), state, SCHEMA, DOMAINS) == run(
            p, state, SCHEMA, DOMAINS
        ) | run(q, state, SCHEMA, DOMAINS)

    @settings(max_examples=60, deadline=None)
    @given(_statement_strategy(), _statement_strategy(), STATES)
    def test_seq_is_image_composition(self, p, q, state):
        composed = frozenset(
            final
            for middle in run(p, state, SCHEMA, DOMAINS)
            for final in run(q, middle, SCHEMA, DOMAINS)
        )
        assert run(Seq(p, q), state, SCHEMA, DOMAINS) == composed

    @settings(max_examples=40, deadline=None)
    @given(_statement_strategy(2), STATES)
    def test_star_contains_identity_and_is_idempotent(self, p, state):
        image = run(Star(p), state, SCHEMA, DOMAINS)
        assert state in image
        # star is a closure: iterating from any reached state stays
        # inside the image.
        again = frozenset(
            final
            for middle in image
            for final in run(Star(p), middle, SCHEMA, DOMAINS)
        )
        assert again == image

    @settings(max_examples=60, deadline=None)
    @given(_statement_strategy(), STATES)
    def test_desugaring_preserves_meaning(self, p, state):
        assert run(p, state, SCHEMA, DOMAINS) == run(
            desugar(p, SCHEMA), state, SCHEMA, DOMAINS
        )

    @settings(max_examples=60, deadline=None)
    @given(_formula_strategy(), _statement_strategy(), STATES)
    def test_if_then_else_laws(self, condition, p, state):
        # if C then p else p  ==  p
        both = IfThenElse(condition, p, p)
        assert run(both, state, SCHEMA, DOMAINS) == run(
            p, state, SCHEMA, DOMAINS
        )

    @settings(max_examples=60, deadline=None)
    @given(_formula_strategy(), STATES)
    def test_test_partitions(self, condition, state):
        # P? u (~P)?  behaves as skip.
        partitioned = Union(Test(condition), Test(fm.Not(condition)))
        assert run(partitioned, state, SCHEMA, DOMAINS) == frozenset(
            {state}
        )

    @settings(max_examples=30, deadline=None)
    @given(_formula_strategy(), _statement_strategy(2), STATES)
    def test_while_exits_with_condition_false(
        self, condition, body, state
    ):
        from repro.rpr.semantics import satisfies

        loop = While(condition, body)
        for final in run(loop, state, SCHEMA, DOMAINS):
            assert not satisfies(condition, final, DOMAINS)


class TestInsertDeleteLaws:
    @settings(max_examples=40, deadline=None)
    @given(st.sampled_from(VALUES), STATES)
    def test_insert_then_delete_removes(self, value, state):
        program = Seq(Insert("R", (_lit(value),)), Delete("R", (_lit(value),)))
        (result,) = run(program, state, SCHEMA, DOMAINS)
        assert (value,) not in result.relation("R")

    @settings(max_examples=40, deadline=None)
    @given(st.sampled_from(VALUES), STATES)
    def test_insert_idempotent(self, value, state):
        once = run(Insert("R", (_lit(value),)), state, SCHEMA, DOMAINS)
        twice = run(
            Seq(Insert("R", (_lit(value),)), Insert("R", (_lit(value),))),
            state,
            SCHEMA,
            DOMAINS,
        )
        assert once == twice

    @settings(max_examples=40, deadline=None)
    @given(st.sampled_from(VALUES), STATES)
    def test_insert_only_touches_target_relation(self, value, state):
        (result,) = run(Insert("R", (_lit(value),)), state, SCHEMA, DOMAINS)
        assert result.relation("S") == state.relation("S")

"""Tests for the RPR AST: desugaring laws and determinism analysis."""

import pytest

from repro.errors import SpecificationError
from repro.logic import formulas as fm
from repro.logic.signature import PredicateSymbol
from repro.logic.sorts import Sort
from repro.logic.terms import Var
from repro.rpr.ast import (
    Delete,
    IfThen,
    IfThenElse,
    Insert,
    ProcDecl,
    RelAssign,
    RelationalTerm,
    RelationDecl,
    Schema,
    Seq,
    Skip,
    Star,
    Test,
    Union,
    While,
    desugar,
    is_deterministic,
)

COURSES = Sort("Courses")
OFFERED = RelationDecl("OFFERED", (COURSES,))
OFFERED_PRED = PredicateSymbol("OFFERED", (COURSES,))
C = Var("c", COURSES)
ATOM = fm.Atom(OFFERED_PRED, (C,))


@pytest.fixture()
def schema():
    return Schema(
        (OFFERED,),
        (ProcDecl("offer", (C,), Insert("OFFERED", (C,))),),
    )


class TestSchema:
    def test_duplicate_relation_rejected(self):
        with pytest.raises(SpecificationError):
            Schema((OFFERED, OFFERED), ())

    def test_duplicate_proc_rejected(self):
        proc = ProcDecl("p", (), Skip())
        with pytest.raises(SpecificationError):
            Schema((OFFERED,), (proc, proc))

    def test_lookup(self, schema):
        assert schema.relation("OFFERED").arity == 1
        assert schema.proc("offer").params == (C,)
        with pytest.raises(SpecificationError):
            schema.relation("NOPE")
        with pytest.raises(SpecificationError):
            schema.proc("nope")

    def test_sorts_collected(self, schema):
        assert schema.sorts == (COURSES,)


class TestDesugar:
    def test_skip_becomes_true_test(self, schema):
        assert desugar(Skip(), schema) == Test(fm.TRUE)

    def test_if_then_union_shape(self, schema):
        result = desugar(IfThen(ATOM, Skip()), schema)
        assert isinstance(result, Union)
        assert result.left == Seq(Test(ATOM), Test(fm.TRUE))
        assert result.right == Test(fm.Not(ATOM))

    def test_if_then_else_shape(self, schema):
        result = desugar(IfThenElse(ATOM, Skip(), Skip()), schema)
        assert isinstance(result, Union)
        assert isinstance(result.left, Seq)
        assert isinstance(result.right, Seq)
        assert result.right.left == Test(fm.Not(ATOM))

    def test_while_shape(self, schema):
        result = desugar(While(ATOM, Skip()), schema)
        assert isinstance(result, Seq)
        assert isinstance(result.left, Star)
        assert result.right == Test(fm.Not(ATOM))

    def test_insert_becomes_membership_or_point(self, schema):
        result = desugar(Insert("OFFERED", (C,)), schema)
        assert isinstance(result, RelAssign)
        assert isinstance(result.term.formula, fm.Or)

    def test_delete_becomes_membership_and_not_point(self, schema):
        result = desugar(Delete("OFFERED", (C,)), schema)
        assert isinstance(result.term.formula, fm.And)

    def test_insert_wrong_arity_rejected(self, schema):
        with pytest.raises(SpecificationError):
            desugar(Insert("OFFERED", (C, C)), schema)

    def test_fresh_variables_avoid_argument_names(self, schema):
        # Inserting a term whose variable is named like the default
        # fresh names must not capture.
        rx1 = Var("rx1", COURSES)
        result = desugar(Insert("OFFERED", (rx1,)), schema)
        assert result.term.variables[0] != rx1

    def test_nested_desugar(self, schema):
        nested = Seq(IfThen(ATOM, Insert("OFFERED", (C,))), Skip())
        result = desugar(nested, schema)
        assert isinstance(result, Seq)
        assert isinstance(result.left, Union)

    def test_star_and_union_pass_through(self, schema):
        result = desugar(Star(Union(Skip(), Skip())), schema)
        assert isinstance(result, Star)
        assert isinstance(result.body, Union)


class TestDeterminism:
    def test_deterministic_constructs(self):
        assert is_deterministic(Skip())
        assert is_deterministic(Insert("OFFERED", (C,)))
        assert is_deterministic(IfThen(ATOM, Delete("OFFERED", (C,))))
        assert is_deterministic(
            Seq(Insert("OFFERED", (C,)), Delete("OFFERED", (C,)))
        )
        assert is_deterministic(While(ATOM, Delete("OFFERED", (C,))))

    def test_union_and_star_are_nondeterministic(self):
        assert not is_deterministic(Union(Skip(), Skip()))
        assert not is_deterministic(Star(Skip()))

    def test_relational_term_str(self):
        term = RelationalTerm((C,), ATOM)
        assert str(term) == "{(c) / OFFERED(c)}"

"""Tests for the Database convenience engine, replaying the paper's
registrar scenario end to end."""

import pytest

from repro.errors import ExecutionError
from repro.logic import formulas as fm
from repro.rpr.interpreter import Database
from repro.rpr.parser import parse_schema

DOMAINS = {"Students": ["s1", "s2"], "Courses": ["c1", "c2"]}


@pytest.fixture()
def db(courses_schema):
    database = Database(courses_schema, DOMAINS)
    database.call("initiate")
    return database


class TestSession:
    def test_offer_then_enroll(self, db):
        db.call("offer", "c1")
        db.call("enroll", "s1", "c1")
        assert db.holds_fact("TAKES", "s1", "c1")
        assert db.rows("OFFERED") == {("c1",)}

    def test_cancel_blocked_while_taken(self, db):
        db.call("offer", "c1")
        db.call("enroll", "s1", "c1")
        db.call("cancel", "c1")
        assert db.holds_fact("OFFERED", "c1")

    def test_transfer_scenario(self, db):
        db.call("offer", "c1")
        db.call("offer", "c2")
        db.call("enroll", "s1", "c1")
        db.call("transfer", "s1", "c1", "c2")
        assert not db.holds_fact("TAKES", "s1", "c1")
        assert db.holds_fact("TAKES", "s1", "c2")

    def test_history_records_trace(self, db):
        db.call("offer", "c1")
        assert db.history == (("initiate", ()), ("offer", ("c1",)))

    def test_reset(self, db):
        db.call("offer", "c1")
        db.reset()
        assert db.rows("OFFERED") == frozenset()
        assert db.history == ()

    def test_holds_formula(self, db, courses_schema):
        db.call("offer", "c1")
        from repro.logic.signature import PredicateSymbol
        from repro.logic.sorts import Sort
        from repro.logic.terms import Var

        c = Var("c", Sort("Courses"))
        offered = PredicateSymbol("OFFERED", (Sort("Courses"),))
        formula = fm.Exists(c, fm.Atom(offered, (c,)))
        assert db.holds(formula)

    def test_deterministic_schema(self, db):
        assert db.is_deterministic_schema()

    def test_possible_states_without_advancing(self, db):
        states = db.possible_states("offer", "c1")
        assert len(states) == 1
        assert not db.holds_fact("OFFERED", "c1")

    def test_nondeterministic_call_rejected(self):
        schema = parse_schema(
            """
schema
  R(Things);
  proc maybe(x) = (insert R(x)) | skip
end-schema
"""
        )
        database = Database(schema, {"Things": ["t1"]})
        with pytest.raises(ExecutionError, match="nondeterministic"):
            database.call("maybe", "t1")
        assert len(database.possible_states("maybe", "t1")) == 2

    def test_blocking_call_rejected(self):
        schema = parse_schema(
            """
schema
  R(Things);
  proc need(x) = (R(x)? ; delete R(x))
end-schema
"""
        )
        database = Database(schema, {"Things": ["t1"]})
        with pytest.raises(ExecutionError, match="blocks"):
            database.call("need", "t1")

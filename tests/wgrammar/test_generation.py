"""Tests for W-grammar string generation, including the generative
differential test against the parser and the arity/uniqueness context
conditions."""

import pytest

from repro.errors import ParseError, WGrammarError
from repro.rpr.parser import parse_schema
from repro.wgrammar.grammar import (
    Call,
    Hyperrule,
    LexicalMeta,
    Mark,
    MetaRef,
    RuleMeta,
    Terminal,
    WGrammar,
)
from repro.wgrammar.rpr_grammar import (
    MAX_ARITY,
    check_schema_source,
    rpr_wgrammar,
)

LEXICON = {"NAME": ["R", "S", "x"], "SORTNAME": ["Things"]}


class TestEngineGeneration:
    def test_generates_simple_language(self):
        # s -> 'a' s | 'b': the strings a^k b.
        grammar = WGrammar(
            {},
            [
                Hyperrule(
                    (Mark("s"),),
                    (Terminal(Mark("a")), Call((Mark("s"),))),
                    "step",
                ),
                Hyperrule((Mark("s"),), (Terminal(Mark("b")),), "end"),
            ],
            ("s",),
        )
        strings = grammar.generate(max_depth=4)
        assert ("b",) in strings
        assert ("a", "b") in strings
        assert ("a", "a", "b") in strings
        assert all(s[-1] == "b" for s in strings)

    def test_binding_terminal_uses_lexicon(self):
        grammar = WGrammar(
            {"X": LexicalMeta("[ab]")},
            [
                Hyperrule(
                    (Mark("s"),),
                    (
                        Terminal(MetaRef("X")),
                        Terminal(MetaRef("X")),
                    ),
                    "twice",
                )
            ],
            ("s",),
        )
        strings = grammar.generate({"X": ["a", "b"]}, max_depth=2)
        # Consistent substitution: only aa and bb.
        assert strings == frozenset({("a", "a"), ("b", "b")})

    def test_no_lexicon_generates_nothing(self):
        grammar = WGrammar(
            {"X": LexicalMeta("[ab]")},
            [
                Hyperrule(
                    (Mark("s"),), (Terminal(MetaRef("X")),), "one"
                )
            ],
            ("s",),
        )
        assert grammar.generate(max_depth=2) == frozenset()

    def test_generated_strings_are_recognized(self):
        grammar = rpr_wgrammar()
        strings = grammar.generate(
            LEXICON, max_depth=12, max_per_notion=20
        )
        assert strings
        for s in sorted(strings)[:10]:
            assert grammar.recognize(list(s)), " ".join(s)


class TestContextConditions:
    def test_duplicate_declaration_rejected(self):
        assert not check_schema_source(
            "schema R(Things); R(Things); end-schema"
        )

    def test_distinct_declarations_accepted(self):
        assert check_schema_source(
            "schema R(Things); S(Things); end-schema"
        )

    def test_arity_checked_at_use(self):
        assert not check_schema_source(
            "schema R(A, B); proc p(x) = insert R(x) end-schema"
        )
        assert check_schema_source(
            "schema R(A, B); proc p(x) = insert R(x, x) end-schema"
        )

    def test_arity_checked_in_relterm(self):
        assert not check_schema_source(
            "schema R(A, B); proc p(x: A) = R := {(a) / a = x} end-schema"
        )
        assert check_schema_source(
            "schema R(A, B);"
            " proc p(x: A) = R := {(a, b) / a = x} end-schema"
        )

    def test_arity_beyond_bound_rejected(self):
        columns = ", ".join(f"S{i}" for i in range(MAX_ARITY + 1))
        assert not check_schema_source(
            f"schema R({columns}); end-schema"
        )


class TestGenerativeDifferential:
    def test_generated_schemas_parse_or_fail_only_on_sorts(self):
        """Every grammar-generated schema must be accepted by the
        parser, except for *sort-level* rejections (parameter-sort
        inference), which are knowingly outside the grammar's scope.
        """
        grammar = rpr_wgrammar()
        strings = grammar.generate(
            LEXICON, max_depth=14, max_per_notion=48
        )
        assert strings
        syntactic_rejects = []
        for s in sorted(strings):
            source = " ".join(s)
            try:
                parse_schema(source)
            except ParseError as exc:
                if "infer" in str(exc):
                    continue  # sort inference: beyond the grammar
                syntactic_rejects.append((source, str(exc)))
        assert not syntactic_rejects, syntactic_rejects[:2]

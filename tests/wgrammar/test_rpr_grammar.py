"""Tests for the RPR W-grammar: the Section 5.4 syntactic-correctness
check, positive and negative."""

import pytest

from repro.errors import WGrammarError
from repro.applications.courses import courses_schema_source
from repro.applications.library import library_schema_source
from repro.applications.projects import projects_schema_source
from repro.wgrammar.rpr_grammar import (
    check_schema_source,
    rpr_wgrammar,
    schema_marks,
)


class TestPositive:
    def test_paper_schema_recognized(self):
        assert check_schema_source(courses_schema_source())

    def test_library_schema_recognized(self):
        assert check_schema_source(library_schema_source())

    def test_projects_schema_recognized(self):
        assert check_schema_source(projects_schema_source())

    def test_minimal_schema(self):
        assert check_schema_source(
            "schema R(Things); proc touch(x) = insert R(x) end-schema"
        )

    def test_empty_ops(self):
        assert check_schema_source("schema R(Things); end-schema")

    def test_statement_variety(self):
        source = """
schema
  R(Things);
  proc p(x) =
    (while R(x) do delete R(x) ;
     (insert R(x) | skip) ;
     (R(x)?)* ;
     R := {(y) / y = x | R(y)})
end-schema
"""
        assert check_schema_source(source)


class TestContextCondition:
    def test_undeclared_insert_rejected(self):
        source = (
            "schema R(Things); proc p(x) = insert S(x) end-schema"
        )
        # The parser would reject this too; the grammar must as well.
        assert not _grammar_accepts(source)

    def test_undeclared_atom_rejected(self):
        source = (
            "schema R(Things);"
            " proc p(x) = if S(x) then insert R(x) end-schema"
        )
        assert not _grammar_accepts(source)

    def test_undeclared_assignment_rejected(self):
        source = "schema R(Things); proc p(x) = S := {} end-schema"
        assert not _grammar_accepts(source)

    def test_declared_after_use_still_counts(self):
        # DECLS accumulates left to right, and the paper's condition is
        # about the whole SCL part; our grammar threads declarations in
        # order, so a use before its declaration is rejected.
        source = """
schema
  R(Things);
  proc p(x) = insert S(x)
"""
        # (also syntactically incomplete: declarations cannot follow
        # procs in this grammar)
        assert not _grammar_accepts(source + "end-schema")


class TestNegativeSyntax:
    def test_missing_semicolon(self):
        assert not _grammar_accepts(
            "schema R(Things) proc p(x) = insert R(x) end-schema"
        )

    def test_unbalanced_parens(self):
        assert not _grammar_accepts(
            "schema R(Things); proc p(x) = (insert R(x) end-schema"
        )

    def test_keyword_as_relation_name(self):
        assert not _grammar_accepts(
            "schema if(Things); proc p(x) = insert if(x) end-schema"
        )

    def test_scalar_declarations_unsupported(self):
        with pytest.raises(WGrammarError, match="scalar"):
            check_schema_source(
                "schema R(Things); var x: Things; end-schema"
            )


class TestAgreementWithParser:
    """The W-grammar and the recursive-descent parser must agree."""

    CASES = [
        ("schema R(Things); end-schema", True),
        (
            "schema R(Things); proc p(x) = insert R(x) end-schema",
            True,
        ),
        (
            "schema R(Things); proc p(x) = insert S(x) end-schema",
            False,
        ),
        (
            "schema R(Things); proc p(x) = insert R(x, x) end-schema",
            None,  # arity errors are beyond the grammar (sort level)
        ),
    ]

    def test_agreement(self):
        from repro.errors import ParseError
        from repro.rpr.parser import parse_schema

        for source, expected in self.CASES:
            if expected is None:
                continue
            grammar_ok = _grammar_accepts(source)
            try:
                parse_schema(source)
                parser_ok = True
            except ParseError:
                parser_ok = False
            assert grammar_ok == parser_ok == expected, source


def _grammar_accepts(source: str) -> bool:
    try:
        return check_schema_source(source)
    except WGrammarError:
        return False


class TestMarks:
    def test_schema_marks_strips_eof(self):
        marks = schema_marks("schema end-schema")
        assert marks == ["schema", "end-schema"]

    def test_grammar_constructs_once(self):
        grammar = rpr_wgrammar()
        assert grammar.start == ("program",)
        assert len(grammar.hyperrules) > 50

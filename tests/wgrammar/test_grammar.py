"""Tests for the W-grammar engine itself, independent of RPR.

The highlight is the classic demonstration that two-level grammars
exceed context-free power: the language a^n b^n c^n, expressed with a
metanotion N counting in unary and consistent substitution forcing the
three counts to agree.
"""

import pytest

from repro.errors import WGrammarError
from repro.wgrammar.grammar import (
    Call,
    Hyperrule,
    LexicalMeta,
    Mark,
    MetaRef,
    RuleMeta,
    Terminal,
    WGrammar,
)


def anbncn_grammar() -> WGrammar:
    """a^n b^n c^n via a unary-counting metanotion.

    Metarules:   N :: empty | i N.
    Hyperrules:  start : letters N of a, letters N of b, letters N of c.
                 letters i N of X : X-terminal, letters N of X.
                 letters of X : (empty).
    The single lhs match of `start` binds N once, and uniform
    replacement forces the same N (hence the same count) in all three
    calls — the context-sensitivity.
    """
    metanotions = {
        "N": RuleMeta(((), (Mark("i"), MetaRef("N")))),
        "X": LexicalMeta("[abc]"),
    }
    rules = [
        Hyperrule(
            (Mark("start"), MetaRef("N")),
            (
                Call((Mark("letters"), MetaRef("N"), Mark("of"), Mark("a"))),
                Call((Mark("letters"), MetaRef("N"), Mark("of"), Mark("b"))),
                Call((Mark("letters"), MetaRef("N"), Mark("of"), Mark("c"))),
            ),
            "start",
        ),
        Hyperrule(
            (
                Mark("letters"),
                Mark("i"),
                MetaRef("N"),
                Mark("of"),
                MetaRef("X"),
            ),
            (
                Terminal(MetaRef("X")),
                Call((Mark("letters"), MetaRef("N"), Mark("of"), MetaRef("X"))),
            ),
            "letters-step",
        ),
        Hyperrule(
            (Mark("letters"), Mark("of"), MetaRef("X")),
            (),
            "letters-end",
        ),
        # Entry point: try every count (bound by the input length).
        Hyperrule(
            (Mark("entry"),),
            (Call((Mark("start-any"),)),),
            "entry",
        ),
    ]
    # start-any delegates to start N for any N — expressed by matching
    # 'start N' against ground notions is not possible from a ground
    # 'entry', so instead the test drives 'start N' directly.
    del rules[-1]
    return WGrammar(metanotions, rules, ("start",))


class TestMetaMembership:
    def test_rule_meta_membership(self):
        grammar = anbncn_grammar()
        assert grammar.member("N", ())
        assert grammar.member("N", ("i", "i", "i"))
        assert not grammar.member("N", ("i", "x"))

    def test_lexical_meta_membership(self):
        grammar = anbncn_grammar()
        assert grammar.member("X", ("a",))
        assert not grammar.member("X", ("d",))
        assert not grammar.member("X", ("a", "b"))


class TestMatching:
    def test_match_binds_consistently(self):
        grammar = anbncn_grammar()
        pattern = (
            Mark("letters"),
            MetaRef("N"),
            Mark("of"),
            MetaRef("X"),
        )
        notion = ("letters", "i", "i", "of", "b")
        bindings = list(grammar.match_lhs(pattern, notion))
        assert len(bindings) == 1
        assert bindings[0]["N"] == ("i", "i")
        assert bindings[0]["X"] == ("b",)

    def test_nonlinear_occurrence_must_agree(self):
        grammar = WGrammar(
            {"X": LexicalMeta("[abc]")},
            [
                Hyperrule(
                    (Mark("same"), MetaRef("X"), MetaRef("X")), (), "same"
                )
            ],
            ("same",),
        )
        assert list(
            grammar.match_lhs(
                (Mark("same"), MetaRef("X"), MetaRef("X")),
                ("same", "a", "a"),
            )
        )
        assert not list(
            grammar.match_lhs(
                (Mark("same"), MetaRef("X"), MetaRef("X")),
                ("same", "a", "b"),
            )
        )

    def test_instantiate_flattens_values(self):
        grammar = anbncn_grammar()
        notion = grammar.instantiate(
            (Mark("start"), MetaRef("N")), {"N": ("i", "i")}
        )
        assert notion == ("start", "i", "i")

    def test_instantiate_unbound_raises(self):
        grammar = anbncn_grammar()
        with pytest.raises(WGrammarError):
            grammar.instantiate((MetaRef("N"),), {})


class TestContextSensitiveRecognition:
    def drive(self, tokens):
        """Recognize a^n b^n c^n by deriving from start-with-count."""
        grammar = anbncn_grammar()
        count = len(tokens) // 3
        notion = ("start", *("i",) * count)
        from repro.wgrammar.grammar import _Recognizer

        recognizer = _Recognizer(grammar, tuple(tokens), 100_000)
        return len(tokens) in recognizer.parse(notion, 0)

    def test_accepts_equal_counts(self):
        assert self.drive(list("abc"))
        assert self.drive(list("aabbcc"))
        assert self.drive(list("aaabbbccc"))
        assert self.drive([])

    def test_rejects_unequal_counts(self):
        grammar = anbncn_grammar()
        from repro.wgrammar.grammar import _Recognizer

        # No count N can derive aabbc: for every plausible N the
        # derivation fails.
        tokens = tuple("aabbc")
        for count in range(4):
            notion = ("start", *("i",) * count)
            recognizer = _Recognizer(grammar, tokens, 100_000)
            assert len(tokens) not in recognizer.parse(notion, 0)


class TestWellformedness:
    def test_undefined_metanotion_rejected(self):
        with pytest.raises(WGrammarError):
            WGrammar(
                {},
                [Hyperrule((Mark("s"), MetaRef("GHOST")), (), "bad")],
                ("s",),
            )

    def test_unbindable_call_meta_rejected(self):
        with pytest.raises(WGrammarError, match="not bound"):
            WGrammar(
                {"N": RuleMeta(((),))},
                [
                    Hyperrule(
                        (Mark("s"),),
                        (Call((Mark("t"), MetaRef("N"))),),
                        "bad",
                    )
                ],
                ("s",),
            )

    def test_binding_terminal_makes_call_legal(self):
        grammar = WGrammar(
            {"X": LexicalMeta("[ab]")},
            [
                Hyperrule(
                    (Mark("s"),),
                    (
                        Terminal(MetaRef("X")),
                        Call((Mark("t"), MetaRef("X"))),
                    ),
                    "s",
                ),
                Hyperrule(
                    (Mark("t"), MetaRef("X")),
                    (Terminal(MetaRef("X")),),
                    "t",
                ),
            ],
            ("s",),
        )
        # 'aa' and 'bb' derive; 'ab' does not (uniform replacement).
        assert grammar.recognize(["a", "a"])
        assert grammar.recognize(["b", "b"])
        assert not grammar.recognize(["a", "b"])

    def test_budget_exhaustion_raises(self):
        grammar = anbncn_grammar()
        with pytest.raises(WGrammarError, match="budget"):
            grammar.recognize(list("abc" * 20), max_steps=5)

"""Differential testing: the W-grammar and the recursive-descent
parser must agree on randomly generated schemas and on their broken
mutations."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParseError, WGrammarError
from repro.rpr.parser import parse_schema
from repro.wgrammar.rpr_grammar import check_schema_source

RELATION_NAMES = ["R", "S", "T"]
SORT_NAMES = ["Things", "Widgets"]


@st.composite
def schema_source(draw):
    """A random syntactically valid schema over unary/binary
    relations with a small statement repertoire."""
    relation_count = draw(st.integers(1, 3))
    relations = RELATION_NAMES[:relation_count]
    arities = {
        name: draw(st.integers(1, 2)) for name in relations
    }
    decl_lines = [
        f"  {name}({', '.join(SORT_NAMES[:arities[name]])});"
        for name in relations
    ]

    def atom(name, params):
        args = ", ".join(params[: arities[name]])
        return f"{name}({args})"

    proc_count = draw(st.integers(0, 3))
    proc_lines = []
    for index in range(proc_count):
        params = ["x", "y"]
        target = draw(st.sampled_from(relations))
        other = draw(st.sampled_from(relations))
        body_kind = draw(
            st.sampled_from(
                ["insert", "delete", "if", "while", "seq", "assign"]
            )
        )
        if body_kind == "insert":
            body = f"insert {atom(target, params)}"
        elif body_kind == "delete":
            body = f"delete {atom(target, params)}"
        elif body_kind == "if":
            body = (
                f"if {atom(other, params)} "
                f"then insert {atom(target, params)}"
            )
        elif body_kind == "while":
            body = (
                f"while {atom(other, params)} "
                f"do delete {atom(other, params)}"
            )
        elif body_kind == "seq":
            body = (
                f"(insert {atom(target, params)} ; "
                f"delete {atom(target, params)})"
            )
        else:
            body = f"{target} := {{}}"
        # Parameters get explicit annotations so both tools always
        # have sorts available.
        header_params = ", ".join(
            f"{param}: {sort}"
            for param, sort in zip(params, SORT_NAMES)
        )
        proc_lines.append(f"  proc p{index}({header_params}) = {body}")

    return "schema\n" + "\n".join(decl_lines + proc_lines) + "\nend-schema"


def _grammar_accepts(source):
    try:
        return check_schema_source(source)
    except WGrammarError:
        return False


def _parser_accepts(source):
    try:
        parse_schema(source)
        return True
    except ParseError:
        return False


class TestDifferential:
    @settings(max_examples=30, deadline=None)
    @given(schema_source())
    def test_generated_schemas_accepted_by_both(self, source):
        assert _parser_accepts(source), source
        assert _grammar_accepts(source), source

    @settings(max_examples=30, deadline=None)
    @given(schema_source(), st.sampled_from(["Q", "ZZ", "Unknown"]))
    def test_renamed_relation_use_rejected_by_both(
        self, source, ghost
    ):
        # Replace the first relation *use* in a proc body (not its
        # declaration) with an undeclared name.
        marker = "insert R("
        if marker not in source:
            return
        broken = source.replace(marker, f"insert {ghost}(", 1)
        assert not _parser_accepts(broken)
        assert not _grammar_accepts(broken)

    @settings(max_examples=30, deadline=None)
    @given(schema_source())
    def test_truncation_rejected_by_both(self, source):
        broken = source.replace("end-schema", "")
        assert not _parser_accepts(broken)
        assert not _grammar_accepts(broken)

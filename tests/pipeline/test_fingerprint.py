"""Fingerprint stability and invalidation granularity.

The cache's correctness rests on two properties pinned down here:
equal content always yields equal fingerprints (across fresh object
graphs, i.e. across processes), and an edit to one input invalidates
exactly the checks that declare that input.
"""

from __future__ import annotations

import dataclasses

from repro.cli import APPLICATIONS
from repro.pipeline.fingerprint import (
    combine_fingerprint,
    framework_parts,
)
from repro.pipeline.nodes import build_framework_graph


def _changed_nodes(base_parts, edited_parts, **graph_kwargs):
    """Names of graph nodes whose fingerprint differs between two
    part sets (same parameters)."""
    graph = build_framework_graph(**graph_kwargs)
    return {
        check.name
        for check in graph
        if combine_fingerprint(
            check.name, base_parts, check.inputs, check.params
        )
        != combine_fingerprint(
            check.name, edited_parts, check.inputs, check.params
        )
    }


class TestStability:
    def test_parts_stable_across_fresh_instances(self):
        assert framework_parts(APPLICATIONS["courses"]()) == (
            framework_parts(APPLICATIONS["courses"]())
        )

    def test_explicit_maps_fingerprint_stably(self):
        # The bank ships explicit (non-homonym) interpretation and
        # representation maps; their content reprs must not embed
        # object identity.
        assert framework_parts(APPLICATIONS["bank"]()) == (
            framework_parts(APPLICATIONS["bank"]())
        )

    def test_different_applications_share_no_part(self):
        courses = framework_parts(APPLICATIONS["courses"]())
        bank = framework_parts(APPLICATIONS["bank"]())
        assert all(courses[key] != bank[key] for key in courses)


class TestGranularity:
    def test_carriers_edit_changes_only_carriers_part(self):
        framework = APPLICATIONS["courses"]()
        base = framework_parts(framework)
        carriers = {
            sort: list(values)
            for sort, values in framework.carriers.items()
        }
        first = next(iter(carriers))
        carriers[first] = carriers[first] + ["extra"]
        edited = framework_parts(
            dataclasses.replace(framework, carriers=carriers)
        )
        assert {k for k in base if base[k] != edited[k]} == {"carriers"}

    def test_schema_source_edit_changes_only_schema_part(self):
        framework = APPLICATIONS["courses"]()
        base = framework_parts(framework)
        edited = framework_parts(
            dataclasses.replace(
                framework,
                schema_source=framework.schema_source + "\n",
            )
        )
        assert {k for k in base if base[k] != edited[k]} == {"schema"}

    def test_carriers_edit_invalidates_exactly_its_dependents(self):
        framework = APPLICATIONS["courses"]()
        base = framework_parts(framework)
        edited = dict(base, carriers="0" * 64)
        assert _changed_nodes(base, edited) == {
            "static",
            "inclusion",
            "transitions",
            "induction",
        }

    def test_schema_edit_invalidates_exactly_its_dependents(self):
        framework = APPLICATIONS["courses"]()
        base = framework_parts(framework)
        edited = dict(base, schema="0" * 64)
        assert _changed_nodes(base, edited) == {
            "grammar",
            "second-third",
            "agreement",
        }

    def test_algebraic_edit_invalidates_everything_but_grammar(self):
        framework = APPLICATIONS["courses"]()
        base = framework_parts(framework)
        edited = dict(base, algebraic="0" * 64)
        graph = build_framework_graph()
        assert _changed_nodes(base, edited) == (
            set(graph.names) - {"grammar"}
        )

    def test_worker_count_is_part_of_worker_dependent_params(self):
        # Per-worker stats replay would lie if a workers=1 entry could
        # hit a workers=4 run; the fan-out-only checks are
        # worker-independent and deliberately keep their entries.
        framework = APPLICATIONS["courses"]()
        parts = framework_parts(framework)
        serial = build_framework_graph(workers=1)
        fanned = build_framework_graph(workers=4)
        changed = {
            check.name
            for check in serial
            if combine_fingerprint(
                check.name, parts, check.inputs, check.params
            )
            != combine_fingerprint(
                check.name,
                parts,
                fanned[check.name].inputs,
                fanned[check.name].params,
            )
        }
        assert changed == {
            "explore",
            "completeness",
            "static",
            "inclusion",
            "transitions",
            "second-third",
        }

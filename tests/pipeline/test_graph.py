"""CheckGraph validation and --only/--skip selection closure."""

from __future__ import annotations

import pytest

from repro.errors import SpecificationError
from repro.pipeline.check import Check, CheckRun
from repro.pipeline.graph import CheckGraph
from repro.pipeline.nodes import build_framework_graph


def _noop(ctx, params):
    return CheckRun(result=True)


def _check(name, deps=()):
    return Check(name=name, title=name, run=_noop, deps=deps)


class TestValidation:
    def test_duplicate_names_are_rejected(self):
        with pytest.raises(SpecificationError, match="duplicate"):
            CheckGraph([_check("a"), _check("a")])

    def test_unknown_dependency_is_rejected(self):
        with pytest.raises(SpecificationError, match="unknown"):
            CheckGraph([_check("a", deps=("ghost",))])

    def test_dependency_declared_later_is_rejected(self):
        # Declaration order IS the schedule; a forward dependency
        # would make it non-topological.
        with pytest.raises(SpecificationError, match="declared later"):
            CheckGraph([_check("a", deps=("b",)), _check("b")])

    def test_names_preserve_declaration_order(self):
        graph = CheckGraph(
            [_check("a"), _check("b", deps=("a",)), _check("c")]
        )
        assert graph.names == ("a", "b", "c")
        assert graph.dependents("a") == ("b",)


class TestSelection:
    def test_only_pulls_in_dependencies(self):
        graph = build_framework_graph()
        assert graph.select(only=["static"]) == ("explore", "static")

    def test_only_keeps_schedule_order(self):
        graph = build_framework_graph()
        assert graph.select(
            only=["agreement", "completeness"]
        ) == ("completeness", "agreement")

    def test_skip_removes_dependents(self):
        graph = build_framework_graph()
        selection = graph.select(skip=["explore"])
        assert "explore" not in selection
        assert "static" not in selection
        assert "inclusion" not in selection
        assert "transitions" not in selection
        assert "completeness" in selection
        assert "second-third" in selection

    def test_skip_wins_over_only(self):
        graph = build_framework_graph()
        assert graph.select(
            only=["completeness", "congruence"],
            skip=["congruence"],
        ) == ("completeness",)

    def test_unknown_name_is_an_error(self):
        graph = build_framework_graph()
        with pytest.raises(SpecificationError, match="unknown check"):
            graph.select(only=["typo"])

    def test_empty_selection_is_an_error(self):
        graph = build_framework_graph()
        with pytest.raises(SpecificationError, match="no checks"):
            graph.select(only=["static"], skip=["explore"])

    def test_default_selection_is_the_whole_graph(self):
        graph = build_framework_graph()
        assert graph.select() == graph.names

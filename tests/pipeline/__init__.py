"""Tests for the declarative verification pipeline."""

"""Coverage through the pipeline: replay, merging, scoping.

Pins the tentpole determinism contract: the merged run-level coverage
payload is byte-identical across worker counts and across cold/warm
cache runs, cache entries written with coverage off never silently
drop contributions, and ``--fail-fast``/``--only``/``--skip`` leave
neither orphan spans nor out-of-scope coverage behind.
"""

import pytest

from repro.cli import APPLICATIONS
from repro.core.framework import DesignFramework
from repro.obs.coverage import (
    CoverageRecorder,
    activate_coverage,
    coverage_document,
    coverage_json,
)
from repro.obs.tracer import Tracer, activate
from repro.pipeline.cache import ResultCache
from tests.refinement.test_first_second import broken_cancel_spec


def _run(framework, recorder, **kwargs):
    with activate_coverage(recorder):
        return framework.verify_pipeline(**kwargs)


def _broken_framework() -> DesignFramework:
    from repro.applications import courses

    return DesignFramework.from_sources(
        information=courses.courses_information(),
        algebraic=broken_cancel_spec(),
        schema_source=courses.courses_schema_source(),
        carriers=courses.courses_information_carriers(),
        name="broken-cancel",
    )


# ---------------------------------------------------------------------
# worker-count invariance
# ---------------------------------------------------------------------
class TestWorkerInvariance:
    def test_merged_payload_identical_serial_vs_forked(self):
        serial, forked = CoverageRecorder(), CoverageRecorder()
        result1 = _run(APPLICATIONS["courses"](), serial, workers=1)
        result4 = _run(APPLICATIONS["courses"](), forked, workers=4)
        assert result1.ok and result4.ok
        assert serial.to_payload() == forked.to_payload()

    def test_documents_byte_identical_across_worker_counts(self):
        texts = []
        for workers in (1, 4):
            framework = APPLICATIONS["bank"]()
            recorder = CoverageRecorder()
            result = _run(framework, recorder, workers=workers)
            assert result.ok
            texts.append(
                coverage_json(
                    coverage_document(
                        recorder,
                        framework.algebraic,
                        application="bank",
                    )
                )
            )
        assert texts[0] == texts[1]


# ---------------------------------------------------------------------
# cache replay
# ---------------------------------------------------------------------
class TestCacheReplay:
    def test_cold_and_warm_payloads_identical(self, tmp_path):
        cold, warm = CoverageRecorder(), CoverageRecorder()
        cold_result = _run(
            APPLICATIONS["courses"](),
            cold,
            cache=ResultCache(tmp_path),
        )
        warm_result = _run(
            APPLICATIONS["courses"](),
            warm,
            cache=ResultCache(tmp_path),
        )
        assert cold_result.ok and warm_result.ok
        assert warm_result.cache_hits == len(warm_result.executions)
        assert cold.to_payload() == warm.to_payload()

    def test_replayed_check_coverage_matches_stored(self, tmp_path):
        cold_result = _run(
            APPLICATIONS["courses"](),
            CoverageRecorder(),
            cache=ResultCache(tmp_path),
        )
        warm_result = _run(
            APPLICATIONS["courses"](),
            CoverageRecorder(),
            cache=ResultCache(tmp_path),
        )
        for execution in warm_result.executions:
            assert execution.status == "hit"
            stored = cold_result.execution(execution.name).run.coverage
            assert execution.run.coverage == stored

    def test_cross_population_replays_identically(self, tmp_path):
        """A cache written at workers=4 still merges to the same
        run-level coverage at workers=1: worker-independent checks
        replay their stored payloads, worker-parameterized checks
        (whose fingerprints include ``workers``) re-run, and the
        merged result is identical either way."""
        forked = CoverageRecorder()
        _run(
            APPLICATIONS["courses"](),
            forked,
            cache=ResultCache(tmp_path),
            workers=4,
        )
        warm = CoverageRecorder()
        warm_result = _run(
            APPLICATIONS["courses"](),
            warm,
            cache=ResultCache(tmp_path),
            workers=1,
        )
        assert warm_result.cache_hits > 0
        assert warm_result.cache_hits < len(warm_result.executions)
        assert warm.to_payload() == forked.to_payload()

    def test_coverage_off_entries_are_misses_when_on(self, tmp_path):
        # Populate the cache with coverage disabled ...
        first = APPLICATIONS["courses"]().verify_pipeline(
            cache=ResultCache(tmp_path)
        )
        assert first.ok
        # ... then a coverage-enabled run must re-execute everything:
        # replaying those entries would silently drop contributions.
        recorder = CoverageRecorder()
        second = _run(
            APPLICATIONS["courses"](),
            recorder,
            cache=ResultCache(tmp_path),
        )
        assert second.cache_hits == 0
        assert all(e.status == "ran" for e in second.executions)
        assert not recorder.is_empty()
        # The re-run upgraded the entries: a third run hits.
        third = _run(
            APPLICATIONS["courses"](),
            CoverageRecorder(),
            cache=ResultCache(tmp_path),
        )
        assert third.cache_hits == len(third.executions)

    def test_coverage_run_entries_still_hit_with_coverage_off(
        self, tmp_path
    ):
        _run(
            APPLICATIONS["courses"](),
            CoverageRecorder(),
            cache=ResultCache(tmp_path),
        )
        plain = APPLICATIONS["courses"]().verify_pipeline(
            cache=ResultCache(tmp_path)
        )
        assert plain.ok
        assert plain.cache_hits == len(plain.executions)


# ---------------------------------------------------------------------
# selection and fail-fast scoping
# ---------------------------------------------------------------------
class TestScoping:
    def test_skip_scopes_coverage_to_remaining_subgraph(self):
        recorder = CoverageRecorder()
        result = _run(
            APPLICATIONS["courses"](), recorder, skip=["grammar"]
        )
        assert result.ok
        assert "grammar" not in result.selection
        assert not recorder.hyperrules
        assert not recorder.metanotions
        assert recorder.dispatch

    def test_only_scopes_coverage_to_selected_subgraph(self):
        recorder = CoverageRecorder()
        result = _run(
            APPLICATIONS["courses"](), recorder, only=["grammar"]
        )
        assert result.ok
        assert recorder.hyperrules
        assert not recorder.dispatch
        assert recorder.explore is None

    def test_fail_fast_leaves_no_orphan_spans(self):
        tracer = Tracer()
        recorder = CoverageRecorder()
        with activate(tracer), activate_coverage(recorder):
            result = _broken_framework().verify_pipeline(
                fail_fast=True
            )
        assert not result.ok
        aborted = [
            e for e in result.executions if e.status == "aborted"
        ]
        assert aborted
        # Every opened span was closed despite the early abort.
        assert tracer.current is None
        for span in tracer.walk():
            assert span.end is not None, f"orphan span {span.name}"

    def test_fail_fast_coverage_excludes_aborted_checks(self):
        recorder = CoverageRecorder()
        with activate_coverage(recorder):
            result = _broken_framework().verify_pipeline(
                fail_fast=True
            )
        for execution in result.executions:
            if execution.status == "aborted":
                assert execution.run is None
            else:
                assert execution.run.coverage is not None

    @pytest.mark.parametrize("workers", [1, 4])
    def test_fail_fast_payload_deterministic(self, workers):
        payloads = []
        for _ in range(2):
            recorder = CoverageRecorder()
            with activate_coverage(recorder):
                _broken_framework().verify_pipeline(
                    fail_fast=True, workers=workers
                )
            payloads.append(recorder.to_payload())
        assert payloads[0] == payloads[1]

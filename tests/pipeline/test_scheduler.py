"""Scheduler policies: run-all vs fail-fast, statuses, summaries."""

from __future__ import annotations

from repro.pipeline.check import Check, CheckRun
from repro.pipeline.graph import CheckGraph
from repro.pipeline.scheduler import PipelineContext, Scheduler

RAN = []


def _passes(ctx, params):
    RAN.append("passes")
    return CheckRun(result=True)


def _fails(ctx, params):
    RAN.append("fails")
    return CheckRun(result=False)


def _later(ctx, params):
    RAN.append("later")
    return CheckRun(result=True)


def _graph():
    return CheckGraph(
        [
            Check(name="passes", title="always ok", run=_passes),
            Check(name="fails", title="always bad", run=_fails),
            Check(name="later", title="after the failure", run=_later),
        ]
    )


def _run(fail_fast):
    del RAN[:]
    scheduler = Scheduler(_graph(), fail_fast=fail_fast)
    return scheduler.run(PipelineContext(None))


class TestPolicies:
    def test_run_all_accumulates_failures(self):
        result = _run(fail_fast=False)
        assert not result.ok
        assert RAN == ["passes", "fails", "later"]
        statuses = {e.name: e.status for e in result.executions}
        assert statuses == {
            "passes": "ran",
            "fails": "ran",
            "later": "ran",
        }

    def test_fail_fast_stops_at_first_failure(self):
        result = _run(fail_fast=True)
        assert not result.ok
        assert RAN == ["passes", "fails"]
        statuses = {e.name: e.status for e in result.executions}
        assert statuses["later"] == "aborted"

    def test_summary_labels_outcomes(self):
        summary = _run(fail_fast=True).summary()
        assert "always ok" in summary
        assert "FAILED" in summary
        assert "aborted (fail-fast)" in summary

    def test_result_lookup(self):
        result = _run(fail_fast=False)
        assert result.result_of("passes") is True
        assert result.result_of("fails") is False
        assert result.result_of("missing", default="d") == "d"
        assert result.execution("passes").ok
        assert not result.execution("fails").ok

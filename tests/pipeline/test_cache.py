"""ResultCache round-trips, and its tolerance for damaged entries.

The cache must never be a correctness hazard: anything unusual on
disk — corrupt JSON, a truncated write, a stale format version, a
fingerprint mismatch — is a miss (the check re-runs), never an error.
"""

from __future__ import annotations

import json

from repro.algebraic.completeness import (
    CompletenessReport,
    CoverageReport,
    TerminationReport,
)
from repro.algebraic.observation import ObservabilityReport
from repro.parallel.stats import VerificationStats, WorkerStats
from repro.pipeline.cache import (
    CACHE_FORMAT,
    ResultCache,
    deserialize_result,
    serialize_result,
)
from repro.refinement.first_second import (
    StaticConsistencyReport,
    TransitionConsistencyReport,
)
from repro.refinement.reachability import InclusionReport
from repro.refinement.second_third import SecondToThirdReport

FP = "ab" * 32


class TestSerializers:
    CLEAN = {
        "completeness": CompletenessReport(
            termination=TerminationReport(ok=True, structural=True),
            coverage=CoverageReport(ok=True, traces_checked=7),
        ),
        "static": StaticConsistencyReport(ok=True, states_checked=5),
        "inclusion": InclusionReport(
            reachable_subset_valid=True,
            valid_subset_reachable=True,
            valid_count=4,
            reachable_count=4,
            truncated=False,
        ),
        "transitions": TransitionConsistencyReport(
            ok=True, transitions_checked=12
        ),
        "congruence": ObservabilityReport(
            ok=True, classes=3, traces_checked=9
        ),
        "grammar": True,
        "second-third": SecondToThirdReport(
            ok=True, states_checked=8, instances_checked=16
        ),
        "agreement": SecondToThirdReport(
            ok=True, states_checked=2, instances_checked=4
        ),
    }

    def test_clean_reports_round_trip(self):
        for kind, report in self.CLEAN.items():
            payload = serialize_result(kind, report)
            assert payload is not None, kind
            rebuilt = deserialize_result(
                kind, json.loads(json.dumps(payload))
            )
            assert rebuilt == report, kind
            assert str(rebuilt) == str(report), kind

    def test_skipped_induction_round_trips_as_none(self):
        payload = serialize_result("induction", None)
        assert payload == {"skipped": True}
        assert deserialize_result("induction", payload) is None

    def test_witness_bearing_reports_are_not_serializable(self):
        dirty = StaticConsistencyReport(
            ok=False, states_checked=5, violations=(("state", "why"),)
        )
        assert serialize_result("static", dirty) is None


class TestResultCache:
    def _store(self, cache, node="static", fingerprint=FP):
        stats = VerificationStats.merge(
            node,
            1,
            [WorkerStats(worker=0, items=3, wall_time=0.1)],
            0.1,
        )
        cache.store(
            node,
            fingerprint,
            "static",
            {"ok": True, "states_checked": 3},
            stats_parts=(stats,),
            counters={"static.violations": 0},
            wall_time=0.1,
        )

    def test_store_then_load_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._store(cache)
        entry = cache.load("static", FP)
        assert entry is not None
        assert cache.hits == 1 and cache.stores == 1
        report = deserialize_result(entry["kind"], entry["report"])
        assert report == StaticConsistencyReport(
            ok=True, states_checked=3
        )
        (stats,) = ResultCache.entry_stats(entry)
        assert stats.label == "static" and stats.states_checked == 3
        assert ResultCache.entry_counters(entry) == {
            "static.violations": 0
        }

    def test_fingerprint_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._store(cache)
        assert cache.load("static", "cd" * 32) is None
        assert cache.misses == 1

    def test_corrupt_json_is_a_miss_not_fatal(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._store(cache)
        (path,) = tmp_path.glob("static-*.json")
        path.write_text("{definitely not json", encoding="utf-8")
        assert cache.load("static", FP) is None

    def test_truncated_entry_is_a_miss_not_fatal(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._store(cache)
        (path,) = tmp_path.glob("static-*.json")
        path.write_text(
            path.read_text(encoding="utf-8")[:40], encoding="utf-8"
        )
        assert cache.load("static", FP) is None

    def test_stale_format_version_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._store(cache)
        (path,) = tmp_path.glob("static-*.json")
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["format"] = CACHE_FORMAT + 1
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert cache.load("static", FP) is None

    def test_non_dict_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._store(cache)
        (path,) = tmp_path.glob("static-*.json")
        path.write_text('["a", "list"]', encoding="utf-8")
        assert cache.load("static", FP) is None

    def test_unwritable_root_is_swallowed(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory")
        cache = ResultCache(blocker / "cache")
        self._store(cache)
        assert cache.stores == 0
        assert cache.load("static", FP) is None

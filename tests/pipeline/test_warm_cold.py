"""Warm-vs-cold byte-identity and incremental invalidation.

The tentpole guarantee: a cached re-verification produces a report
and a stats bundle *byte-identical* to the cold run that populated
the cache, at any worker count — because hits replay the stored
stats and counters instead of re-measuring.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import APPLICATIONS
from repro.pipeline.cache import ResultCache


def _verify(app, workers, cache):
    framework = APPLICATIONS[app]()
    return framework.verify(
        workers=workers, collect_stats=True, cache=cache
    )


def _assert_warm_equals_cold(app, workers, tmp_path):
    cache = ResultCache(tmp_path)
    cold = _verify(app, workers, cache)
    assert cache.stores > 0 and cache.hits == 0
    warm = _verify(app, workers, cache)
    assert cache.hits > 0
    assert str(warm) == str(cold)
    assert warm.stats.to_json() == cold.stats.to_json()


class TestByteIdentity:
    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize("app", ["courses", "bank"])
    def test_warm_equals_cold(self, app, workers, tmp_path):
        _assert_warm_equals_cold(app, workers, tmp_path)

    @pytest.mark.slow
    @pytest.mark.parametrize("workers", [1, 4])
    def test_warm_equals_cold_projects(self, workers, tmp_path):
        _assert_warm_equals_cold("projects", workers, tmp_path)

    def test_cache_off_equals_cache_cold(self, tmp_path):
        plain = APPLICATIONS["courses"]().verify(collect_stats=True)
        cached = _verify("courses", 1, ResultCache(tmp_path))
        assert str(cached) == str(plain)
        parts = {p.label: p.to_dict() for p in cached.stats.parts}
        plain_parts = {
            p.label: p.to_dict() for p in plain.stats.parts
        }
        assert parts.keys() == plain_parts.keys()


class TestInvalidation:
    def test_touched_schema_reruns_exactly_its_dependents(
        self, tmp_path
    ):
        cache = ResultCache(tmp_path)
        framework = APPLICATIONS["courses"]()
        framework.verify_pipeline(cache=cache)
        edited = APPLICATIONS["courses"]()
        # Whitespace-only edit: same parse, different source text —
        # the schema fingerprint (over the text the W-grammar reads)
        # must change.
        edited.schema_source = edited.schema_source + "\n"
        result = edited.verify_pipeline(cache=cache)
        statuses = {e.name: e.status for e in result.executions}
        assert statuses == {
            "explore": "hit",
            "completeness": "hit",
            "static": "hit",
            "inclusion": "hit",
            "transitions": "hit",
            "induction": "hit",
            "congruence": "hit",
            "grammar": "ran",
            "second-third": "ran",
            "agreement": "ran",
        }

    def test_unchanged_rerun_hits_every_node(self, tmp_path):
        cache = ResultCache(tmp_path)
        APPLICATIONS["courses"]().verify_pipeline(cache=cache)
        result = APPLICATIONS["courses"]().verify_pipeline(cache=cache)
        assert all(e.status == "hit" for e in result.executions)

    def test_worker_count_change_misses_worker_dependent_nodes(
        self, tmp_path
    ):
        cache = ResultCache(tmp_path)
        APPLICATIONS["courses"]().verify_pipeline(cache=cache)
        result = APPLICATIONS["courses"]().verify_pipeline(
            cache=cache, workers=2
        )
        statuses = {e.name: e.status for e in result.executions}
        assert statuses["congruence"] == "hit"
        assert statuses["grammar"] == "hit"
        assert statuses["induction"] == "hit"
        assert statuses["agreement"] == "hit"
        assert statuses["completeness"] == "ran"
        assert statuses["second-third"] == "ran"

    def test_corrupted_cache_reruns_and_matches(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = _verify("courses", 1, cache)
        for path in tmp_path.glob("*.json"):
            path.write_text("garbage", encoding="utf-8")
        warm = _verify("courses", 1, ResultCache(tmp_path))
        assert str(warm) == str(cold)

    def test_equation_edit_gets_delta_exploration(self, tmp_path):
        """An equation edit re-verified against a warm cache re-uses
        the stored edge artifact: only never-seen states are
        re-explored, and the report is byte-identical to an uncached
        run of the edited specification at every worker count."""
        from repro.algebraic.equations import ConditionalEquation
        from repro.algebraic.exploration import delta_counters
        from repro.algebraic.spec import AlgebraicSpec
        from repro.applications import bank as app
        from repro.core.framework import DesignFramework

        cache = ResultCache(tmp_path)
        APPLICATIONS["bank"]().verify(cache=cache)
        artifacts = [
            path
            for path in tmp_path.glob("explore-edges-*.json")
        ]
        assert len(artifacts) == 1

        spec = app.bank_algebraic()
        victim = spec.equations_for("open", "close_account")[0]
        edited = ConditionalEquation(
            victim.lhs,
            spec.signature.true(),
            victim.condition,
            f"{victim.label}-edited",
        )
        equations = tuple(
            edited if equation is victim else equation
            for equation in spec.equations
        )

        def framework():
            from repro.rpr.parser import parse_schema

            algebraic = AlgebraicSpec(
                spec.signature, equations, name=spec.name
            )
            source = app.bank_schema_source()
            schema = parse_schema(source)
            return DesignFramework(
                information=app.bank_information(),
                algebraic=algebraic,
                schema=schema,
                carriers=app.bank_carriers(),
                schema_source=source,
                interpretation=app.bank_interpretation(
                    algebraic.signature
                ),
                representation=app.bank_representation_map(
                    algebraic.signature, schema
                ),
                name="edited bank",
            )

        plain = framework().verify()
        before = delta_counters()
        warm_w1 = framework().verify(cache=cache)
        after = delta_counters()
        assert after["delta_runs"] == before["delta_runs"] + 1
        reexplored = (
            after["reexplored_states"] - before["reexplored_states"]
        )
        from repro.algebraic.algebra import TraceAlgebra

        graph_size = len(
            TraceAlgebra(framework().algebraic).explore().states
        )
        assert reexplored / graph_size < 0.2
        assert str(warm_w1) == str(plain)
        warm_w2 = framework().verify(cache=cache, workers=2)
        assert str(warm_w2) == str(plain)

    def test_failing_checks_are_never_cached(self, tmp_path):
        from repro.algebraic.equations import ConditionalEquation
        from repro.algebraic.spec import AlgebraicSpec
        from repro.applications import courses as app
        from repro.core.framework import DesignFramework

        cache = ResultCache(tmp_path)
        # Negate one equation's rhs (the mutation-testing move):
        # still sufficiently complete, but the refinement checks fail
        # with witness-bearing reports that must not enter the cache.
        spec = app.courses_algebraic()
        victim = spec.equations[0]
        mutated = ConditionalEquation(
            victim.lhs,
            spec.signature.not_(victim.rhs),
            victim.condition,
            f"{victim.label}-negated",
        )
        broken = AlgebraicSpec(
            spec.signature,
            (mutated,) + tuple(spec.equations[1:]),
            name="mutant courses",
        )
        framework = DesignFramework.from_sources(
            information=app.courses_information(),
            algebraic=broken,
            schema_source=app.courses_schema_source(),
            carriers=app.courses_information_carriers(),
            name="broken courses",
        )
        report = framework.verify(cache=cache)
        assert not report.ok
        for path in tmp_path.glob("*.json"):
            entry = json.loads(path.read_text(encoding="utf-8"))
            if entry["kind"] == "artifact":
                # Edge artifacts are not check results; they carry no
                # report at all (and no witnesses: only value rows).
                assert "report" not in entry
                continue
            # Every stored result-bearing entry must be clean.
            if entry["kind"] is not None:
                assert entry["report"] is not None, entry["node"]

"""Tests for ``repro watch``: incremental re-verification on change.

The headline property: an edit that only touches the algebraic
axioms re-runs exactly the checks whose fingerprint parts it
invalidated — a strict subset of the graph — while the schema-only
grammar check replays from the cache.
"""

import io
import textwrap

import pytest

from repro.cli import main
from repro.errors import SpecificationError
from repro.pipeline.cache import ResultCache
from repro.pipeline.watch import WatchSession, resolve_target, watch

#: A spec file whose factory relabels one equation; renaming the
#: label changes the equation's printed form — and therefore the
#: algebraic fingerprint — without changing any semantics.
SPEC_TEMPLATE = textwrap.dedent(
    '''
    import dataclasses

    from repro.cli import APPLICATIONS

    LABEL = "{label}"


    def make():
        framework = APPLICATIONS["courses"]()
        equations = list(framework.algebraic.equations)
        equations[0] = dataclasses.replace(equations[0], label=LABEL)
        algebraic = dataclasses.replace(
            framework.algebraic, equations=tuple(equations)
        )
        return dataclasses.replace(framework, algebraic=algebraic)
    '''
)


def _statuses(output: str) -> dict[str, str]:
    """Parse the streamed ``  name status verdict`` check lines of
    the *last* cycle in ``output``."""
    statuses: dict[str, str] = {}
    for line in output.splitlines():
        if "changed parts:" in line or "initial verification" in line:
            statuses = {}
        elif line.startswith("  "):
            name, status, _verdict = line.split()
            statuses[name] = status
    return statuses


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "watched_spec.py"
    path.write_text(SPEC_TEMPLATE.format(label="original"))
    return path


def _session(spec_file, tmp_path, out):
    target = resolve_target(f"{spec_file}:make")
    cache = ResultCache(tmp_path / "cache")
    return WatchSession(target, cache, out=out)


class TestIncrementalCycles:
    def test_label_rename_reruns_only_the_algebraic_subgraph(
        self, spec_file, tmp_path
    ):
        out = io.StringIO()
        session = _session(spec_file, tmp_path, out)

        assert session.run_cycle() is True
        first = _statuses(out.getvalue())
        assert set(first.values()) == {"ran"}

        spec_file.write_text(SPEC_TEMPLATE.format(label="renamed"))
        assert session.poll() is True
        assert session.run_cycle() is True

        output = out.getvalue()
        assert "changed parts: algebraic" in output
        second = _statuses(output)
        hit = {n for n, s in second.items() if s == "hit"}
        ran = {n for n, s in second.items() if s == "ran"}
        # The schema-only grammar check replays from the cache; the
        # algebraic-dependent checks re-run — a strict subset of the
        # full graph re-executed.
        assert hit == {"grammar"}
        assert ran == set(first) - {"grammar"}
        assert len(ran) < len(first)

    def test_no_semantic_change_is_all_cache_hits(
        self, spec_file, tmp_path
    ):
        out = io.StringIO()
        session = _session(spec_file, tmp_path, out)
        session.run_cycle()

        # Rewrite the identical bytes: the file *changed* (mtime),
        # the fingerprints did not.
        spec_file.write_text(SPEC_TEMPLATE.format(label="original"))
        assert session.poll() is True
        assert session.run_cycle() is True

        output = out.getvalue()
        assert "changed parts: none" in output
        second = _statuses(output)
        assert set(second.values()) == {"hit"}

    def test_unchanged_files_do_not_poll_as_dirty(
        self, spec_file, tmp_path
    ):
        out = io.StringIO()
        session = _session(spec_file, tmp_path, out)
        session.run_cycle()
        assert session.poll() is False

    def test_broken_edit_fails_the_cycle_but_keeps_the_session(
        self, spec_file, tmp_path
    ):
        out = io.StringIO()
        session = _session(spec_file, tmp_path, out)
        assert session.run_cycle() is True

        spec_file.write_text("def make():\n    raise ValueError('no')\n")
        assert session.run_cycle() is False
        assert "ERROR" in out.getvalue()

        # The next (fixed) edit verifies again.
        spec_file.write_text(SPEC_TEMPLATE.format(label="original"))
        assert session.run_cycle() is True


class TestTargets:
    def test_unknown_target_rejected(self):
        with pytest.raises(SpecificationError):
            resolve_target("no-such-application")

    def test_missing_spec_file_rejected(self, tmp_path):
        with pytest.raises(SpecificationError):
            resolve_target(f"{tmp_path / 'absent.py'}:make")

    def test_spec_file_without_factory_rejected(self, tmp_path):
        path = tmp_path / "empty_spec.py"
        path.write_text("x = 1\n")
        target = resolve_target(f"{path}:make")
        with pytest.raises(SpecificationError):
            target.build()

    def test_application_target_watches_the_module_file(self):
        target = resolve_target("courses")
        assert target.label == "courses"
        assert target.paths[0].name == "courses.py"


class TestWatchEntryPoint:
    def test_once_exits_with_the_cycle_verdict(
        self, spec_file, tmp_path
    ):
        out = io.StringIO()
        code = watch(
            f"{spec_file}:make",
            cache_dir=str(tmp_path / "cache"),
            once=True,
            out=out,
        )
        assert code == 0
        assert "watching" in out.getvalue()
        assert "[cycle 1] OK" in out.getvalue()

    def test_cli_watch_once(self, spec_file, tmp_path, capsys):
        code = main(
            [
                "watch",
                f"{spec_file}:make",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--once",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "[cycle 1] OK" in captured.out

    def test_cli_watch_unknown_target_is_exit_2(self, capsys):
        code = main(["watch", "no-such-app", "--once"])
        assert code == 2
        assert "unknown watch target" in capsys.readouterr().err

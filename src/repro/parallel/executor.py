"""Process-backed chunk executor with a deterministic merge order.

The executor runs a *chunk function* over a list of chunk arguments
and returns the per-chunk results **in argument order**, so callers
can merge by concatenation and reproduce their serial iteration
exactly.

Worker processes are created with the ``fork`` start method: the
parent stashes the (arbitrarily large, possibly unpicklable) shared
*context* — specs, algebras, state graphs — in a module-level slot
right before forking, and children inherit it by copy-on-write.  Only
the chunk arguments (index ranges, small term lists) and the chunk
results travel through pickling.  Each forked child therefore carries
its own :class:`~repro.algebraic.rewriting.RewriteEngine` memo cache,
pre-warmed with whatever the parent had evaluated before the fork.

Where ``fork`` is unavailable (non-POSIX platforms) or process
creation fails, the executor degrades to an in-process loop over the
same chunks — identical results, no parallelism — so ``workers=N`` is
always safe to request.

Chunk functions must be module-level (they are sent to workers by
reference) and have the signature::

    def _my_chunk(context, arg) -> tuple[result, dict]:
        ...
        return result, {"items": n, "cache_hits": h,
                        "cache_misses": m, "rewrite_steps": r}

The counter dict may omit keys; missing counters default to zero.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Any, Callable, Sequence

from repro.obs.coverage import COV_STATE, capture_coverage
from repro.obs.tracer import OBS_STATE, Span, capture
from repro.parallel.stats import WorkerStats

__all__ = ["ParallelExecutor", "run_chunked"]

#: The shared context slot worker processes inherit through fork.
_CONTEXT: Any = None


def _get_context() -> Any:
    return _CONTEXT


def _run_chunk(payload):
    """Worker-side trampoline: time the chunk and shape its stats.

    When tracing is enabled (the flag is inherited through fork) the
    chunk runs under its own span buffer rooted at a ``chunk`` span
    carrying the chunk index as the ``worker`` attribute; the buffer
    travels back serialized on :attr:`WorkerStats.spans` and the
    chunk's counters are recorded on the chunk span, so per-worker
    rewrite activity is visible in the exported trace.
    """
    fn, index, arg = payload
    started = time.perf_counter()
    spans: tuple = ()
    coverage_payload: dict | None = None
    # merge=False: the chunk's facts travel back on the stats record
    # and the parent merges them exactly once in _absorb — merging
    # here too would double-count under the in-process fallback,
    # where this trampoline runs in the parent process.
    with capture_coverage(merge=False) as chunk_cov:
        if OBS_STATE.enabled:
            with capture("chunk", worker=index) as chunk_tracer:
                result, counters = fn(_CONTEXT, arg)
            for root in chunk_tracer.roots:
                root.record(
                    {k: v for k, v in counters.items() if isinstance(v, int)}
                )
            spans = tuple(root.to_dict() for root in chunk_tracer.roots)
        else:
            result, counters = fn(_CONTEXT, arg)
    if COV_STATE.enabled:
        coverage_payload = chunk_cov.to_payload()
    elapsed = time.perf_counter() - started
    stats = WorkerStats(
        worker=index,
        items=counters.get("items", 0),
        cache_hits=counters.get("cache_hits", 0),
        cache_misses=counters.get("cache_misses", 0),
        rewrite_steps=counters.get("rewrite_steps", 0),
        dispatch_hits=counters.get("dispatch_hits", 0),
        interned_terms=counters.get("interned_terms", 0),
        wall_time=elapsed,
        spans=spans,
        coverage=coverage_payload,
    )
    return result, stats


class ParallelExecutor:
    """A pool of workers sharing one forked context.

    Args:
        workers: requested degree of parallelism; ``1`` (or less)
            means in-process execution with no pool.
        context: the shared read-only context chunk functions receive
            as their first argument.  Inherited by workers through
            fork — it is never pickled.

    Use as a context manager::

        with ParallelExecutor(workers, context=algebra) as executor:
            results = executor.map(_snapshot_chunk, chunk_args)
        stats = executor.worker_stats

    :meth:`map` may be called repeatedly (e.g. once per BFS level);
    the pool and the workers' warm caches persist across calls.
    """

    def __init__(self, workers: int = 1, context: Any = None):
        self.workers = max(1, int(workers))
        self.context = context
        #: Per-chunk :class:`WorkerStats`, in submission order across
        #: all :meth:`map` calls.
        self.worker_stats: list[WorkerStats] = []
        self._pool = None
        self._saved_context: Any = None
        self._entered = False

    # ------------------------------------------------------------------
    def __enter__(self) -> "ParallelExecutor":
        global _CONTEXT
        self._saved_context = _CONTEXT
        _CONTEXT = self.context
        self._entered = True
        if self.workers > 1:
            try:
                mp_context = multiprocessing.get_context("fork")
                self._pool = mp_context.Pool(processes=self.workers)
            except (ValueError, OSError):
                # No fork on this platform / process creation failed:
                # fall back to the in-process loop.
                self._pool = None
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _CONTEXT
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        _CONTEXT = self._saved_context
        self._saved_context = None
        self._entered = False

    # ------------------------------------------------------------------
    def map(self, fn: Callable, args: Sequence[Any]) -> list[Any]:
        """Run ``fn(context, arg)`` for every chunk argument.

        Returns the chunk results in ``args`` order (the property the
        deterministic mergers rely on) and appends one
        :class:`WorkerStats` per chunk to :attr:`worker_stats`.
        """
        return self.map_async(fn, args).collect()

    def map_async(self, fn: Callable, args: Sequence[Any]) -> "PendingMap":
        """Submit chunks without blocking on their completion.

        The pipeline scheduler uses this to overlap a batch of
        independent serial checks with work the parent keeps running
        inline; call :meth:`PendingMap.collect` to block, absorb the
        per-chunk stats, and graft worker span buffers (still in
        submission order) under the *then-active* span.  With no pool
        (``workers=1`` or fork unavailable) the chunks run in-process
        at collect time instead — identical results, no overlap.
        """
        if not self._entered:
            raise RuntimeError(
                "ParallelExecutor.map used outside its context manager"
            )
        payloads = [(fn, index, arg) for index, arg in enumerate(args)]
        handle = None
        if self._pool is not None:
            handle = self._pool.map_async(_run_chunk, payloads)
        return PendingMap(self, payloads, handle)

    def _absorb(self, outcomes: list[tuple]) -> list[Any]:
        """Record chunk stats and graft span buffers, in chunk
        submission order (the deterministic-merge invariant)."""
        results = []
        graft = (
            OBS_STATE.tracer.graft
            if OBS_STATE.enabled and OBS_STATE.tracer is not None
            else None
        )
        recorder = (
            COV_STATE.recorder if COV_STATE.enabled else None
        )
        for result, stats in outcomes:
            self.worker_stats.append(stats)
            results.append(result)
            if graft is not None:
                # Outcomes arrive in submission (chunk) order, so the
                # grafted trace is deterministic for any worker count.
                for span_dict in stats.spans:
                    graft(Span.from_dict(span_dict))
            if recorder is not None and stats.coverage is not None:
                recorder.merge_payload(stats.coverage)
        return results


class PendingMap:
    """A submitted-but-not-collected :meth:`ParallelExecutor.map_async`
    batch.  :meth:`collect` must be called exactly once, before the
    executor's context manager exits."""

    __slots__ = ("_executor", "_payloads", "_handle", "_collected")

    def __init__(self, executor, payloads, handle):
        self._executor = executor
        self._payloads = payloads
        self._handle = handle
        self._collected = False

    def collect(self) -> list[Any]:
        """Block until every chunk finished; return results in
        submission order and absorb their stats/spans."""
        if self._collected:
            raise RuntimeError("PendingMap.collect called twice")
        self._collected = True
        if self._handle is not None:
            outcomes = self._handle.get()
        else:
            outcomes = [
                _run_chunk(payload) for payload in self._payloads
            ]
        return self._executor._absorb(outcomes)


def run_chunked(
    fn: Callable,
    context: Any,
    args: Sequence[Any],
    workers: int,
) -> tuple[list[Any], list[WorkerStats]]:
    """One-shot convenience: execute ``fn`` over ``args`` chunks.

    Returns ``(results in args order, per-chunk WorkerStats)``.
    """
    with ParallelExecutor(workers, context=context) as executor:
        results = executor.map(fn, args)
    return results, executor.worker_stats

"""Chunk executor with a deterministic merge order over pluggable
backends.

The executor runs a *chunk function* over a list of chunk arguments
and returns the per-chunk results **in argument order**, so callers
can merge by concatenation and reproduce their serial iteration
exactly.

*Where* the chunks run is delegated to an
:class:`~repro.parallel.backends.ExecutorBackend` — in-process
(``inline``), forked worker processes (``fork``, the default), or
remote ``repro worker`` processes over TCP (``socket``).  All
backends follow the same virtual-worker model: chunk ``i`` goes to
virtual worker ``i mod workers`` and each virtual worker starts from
its own unpickled copy of the shared *context* (specs, algebras,
state graphs), so both results **and** the per-chunk counter stats
are identical across backends for a given worker count.  See
:mod:`repro.parallel.backends` for the model and its two ambient
exceptions (``wall_time``, ``interned_terms``).

Where no pool can be opened (``fork`` unavailable on the platform,
process creation failed, or an unpicklable context under ``inline``)
the executor degrades to an in-process loop over the same chunks
against the live context — identical results, no parallelism — so
``workers=N`` is always safe to request.

Chunk functions must be module-level (they are sent to workers by
reference) and have the signature::

    def _my_chunk(context, arg) -> tuple[result, dict]:
        ...
        return result, {"items": n, "cache_hits": h,
                        "cache_misses": m, "rewrite_steps": r}

The counter dict may omit keys; missing counters default to zero.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Sequence

from repro.obs.coverage import COV_STATE, capture_coverage
from repro.obs.tracer import OBS_STATE, Span, capture
from repro.parallel.backends import ExecutorBackend, resolve_backend
from repro.parallel.stats import WorkerStats

__all__ = ["ParallelExecutor", "run_chunked"]

#: The shared context slot worker processes inherit through fork.
_CONTEXT: Any = None

#: Sentinel: "read the module slot" (the fork/in-process paths).
_INHERITED = object()


def _get_context() -> Any:
    return _CONTEXT


def _run_chunk(payload, context: Any = _INHERITED):
    """Worker-side trampoline: time the chunk and shape its stats.

    ``context`` defaults to the module slot (inherited through fork or
    set by the executor's context manager); backends running several
    virtual workers in one process pass each worker's own context
    explicitly instead.

    When tracing is enabled (the flag is inherited through fork, or
    activated per request by the socket worker) the chunk runs under
    its own span buffer rooted at a ``chunk`` span carrying the chunk
    index as the ``worker`` attribute; the buffer travels back
    serialized on :attr:`WorkerStats.spans` and the chunk's counters
    are recorded on the chunk span, so per-worker rewrite activity is
    visible in the exported trace.
    """
    fn, index, arg = payload
    chunk_context = _CONTEXT if context is _INHERITED else context
    started = time.perf_counter()
    spans: tuple = ()
    coverage_payload: dict | None = None
    # merge=False: the chunk's facts travel back on the stats record
    # and the parent merges them exactly once in _absorb — merging
    # here too would double-count under the in-process fallback,
    # where this trampoline runs in the parent process.
    with capture_coverage(merge=False) as chunk_cov:
        if OBS_STATE.enabled:
            with capture("chunk", worker=index) as chunk_tracer:
                result, counters = fn(chunk_context, arg)
            for root in chunk_tracer.roots:
                root.record(
                    {k: v for k, v in counters.items() if isinstance(v, int)}
                )
            spans = tuple(root.to_dict() for root in chunk_tracer.roots)
        else:
            result, counters = fn(chunk_context, arg)
    if COV_STATE.enabled:
        coverage_payload = chunk_cov.to_payload()
    elapsed = time.perf_counter() - started
    stats = WorkerStats(
        worker=index,
        items=counters.get("items", 0),
        cache_hits=counters.get("cache_hits", 0),
        cache_misses=counters.get("cache_misses", 0),
        rewrite_steps=counters.get("rewrite_steps", 0),
        dispatch_hits=counters.get("dispatch_hits", 0),
        interned_terms=counters.get("interned_terms", 0),
        wall_time=elapsed,
        spans=spans,
        coverage=coverage_payload,
    )
    return result, stats


class ParallelExecutor:
    """A pool of virtual workers sharing one context.

    Args:
        workers: requested degree of parallelism; ``1`` (or less)
            means in-process execution with no pool.
        context: the shared read-only context chunk functions receive
            as their first argument.  Backends ship it to workers as a
            pickle bundle (one cold copy per virtual worker); the fork
            backend falls back to copy-on-write inheritance when it
            does not pickle.
        backend: an :class:`~repro.parallel.backends.ExecutorBackend`,
            a backend name, or ``None`` for the scope-active backend
            (see :func:`~repro.parallel.backends.use_backend`; the
            default is ``fork``).

    Use as a context manager::

        with ParallelExecutor(workers, context=algebra) as executor:
            results = executor.map(_snapshot_chunk, chunk_args)
        stats = executor.worker_stats

    :meth:`map` may be called repeatedly (e.g. once per BFS level);
    the pool and the workers' warm caches persist across calls.  On
    exit the executor drops its context reference — a sweep must not
    pin a large spec or state graph in memory for the executor's
    lifetime.
    """

    def __init__(
        self,
        workers: int = 1,
        context: Any = None,
        backend: "ExecutorBackend | str | None" = None,
    ):
        self.workers = max(1, int(workers))
        self.context = context
        self.backend = backend
        #: Per-chunk :class:`WorkerStats`, in submission order across
        #: all :meth:`map` calls.
        self.worker_stats: list[WorkerStats] = []
        self._pool = None
        self._saved_context: Any = None
        self._entered = False

    # ------------------------------------------------------------------
    def __enter__(self) -> "ParallelExecutor":
        global _CONTEXT
        self._saved_context = _CONTEXT
        _CONTEXT = self.context
        self._entered = True
        if self.workers > 1:
            # The backend resolves at entry so a surrounding
            # use_backend() scope (the scheduler's) takes effect.
            self._pool = resolve_backend(self.backend).open_pool(
                self.workers, self.context
            )
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _CONTEXT
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        _CONTEXT = self._saved_context
        self._saved_context = None
        # Drop the context reference: the executor object routinely
        # outlives its with-block (callers read worker_stats off it),
        # and holding on would pin large specs/state graphs in parent
        # memory after the sweep.
        self.context = None
        self._entered = False

    # ------------------------------------------------------------------
    def map(self, fn: Callable, args: Sequence[Any]) -> list[Any]:
        """Run ``fn(context, arg)`` for every chunk argument.

        Returns the chunk results in ``args`` order (the property the
        deterministic mergers rely on) and appends one
        :class:`WorkerStats` per chunk to :attr:`worker_stats`.
        """
        return self.map_async(fn, args).collect()

    def map_async(self, fn: Callable, args: Sequence[Any]) -> "PendingMap":
        """Submit chunks without blocking on their completion.

        The pipeline scheduler uses this to overlap a batch of
        independent serial checks with work the parent keeps running
        inline; call :meth:`PendingMap.collect` to block, absorb the
        per-chunk stats, and graft worker span buffers (still in
        submission order) under the *then-active* span.  With no pool
        (``workers=1`` or no backend pool available) the chunks run
        in-process at collect time instead — identical results, no
        overlap.
        """
        if not self._entered:
            raise RuntimeError(
                "ParallelExecutor.map used outside its context manager"
            )
        payloads = [(fn, index, arg) for index, arg in enumerate(args)]
        handle = None
        if self._pool is not None:
            handle = self._pool.submit(payloads)
        return PendingMap(self, payloads, handle)

    def _absorb(self, outcomes: list[tuple]) -> list[Any]:
        """Record chunk stats and graft span buffers, in chunk
        submission order (the deterministic-merge invariant)."""
        results = []
        graft = (
            OBS_STATE.tracer.graft
            if OBS_STATE.enabled and OBS_STATE.tracer is not None
            else None
        )
        recorder = (
            COV_STATE.recorder if COV_STATE.enabled else None
        )
        for result, stats in outcomes:
            self.worker_stats.append(stats)
            results.append(result)
            if graft is not None:
                # Outcomes arrive in submission (chunk) order, so the
                # grafted trace is deterministic for any worker count.
                for span_dict in stats.spans:
                    graft(Span.from_dict(span_dict))
            if recorder is not None and stats.coverage is not None:
                recorder.merge_payload(stats.coverage)
        return results


class PendingMap:
    """A submitted-but-not-collected :meth:`ParallelExecutor.map_async`
    batch.  :meth:`collect` must be called exactly once, before the
    executor's context manager exits."""

    __slots__ = ("_executor", "_payloads", "_handle", "_collected")

    def __init__(self, executor, payloads, handle):
        self._executor = executor
        self._payloads = payloads
        self._handle = handle
        self._collected = False

    def collect(self) -> list[Any]:
        """Block until every chunk finished; return results in
        submission order and absorb their stats/spans."""
        if self._collected:
            raise RuntimeError("PendingMap.collect called twice")
        self._collected = True
        if self._handle is not None:
            outcomes = self._handle.wait()
        else:
            outcomes = [
                _run_chunk(payload) for payload in self._payloads
            ]
        return self._executor._absorb(outcomes)


def run_chunked(
    fn: Callable,
    context: Any,
    args: Sequence[Any],
    workers: int,
    backend: "ExecutorBackend | str | None" = None,
) -> tuple[list[Any], list[WorkerStats]]:
    """One-shot convenience: execute ``fn`` over ``args`` chunks.

    Returns ``(results in args order, per-chunk WorkerStats)``.
    ``backend=None`` dispatches through the scope-active backend, so
    deep callers (the bounded sweeps) need no signature changes when
    the scheduler selects one.
    """
    with ParallelExecutor(
        workers, context=context, backend=backend
    ) as executor:
        results = executor.map(fn, args)
    return results, executor.worker_stats

"""Pluggable executor backends behind one chunk-dispatch interface.

The :class:`~repro.parallel.executor.ParallelExecutor` owns the merge
discipline (results in submission order, stats/spans/coverage absorbed
exactly once); *where* the chunks actually run is this module's
business.  Three backends ship:

``inline``
    No processes.  Chunks run in the calling process, each against the
    virtual worker's own unpickled copy of the context, in submission
    order.
``fork``
    One forked process per virtual worker (POSIX only), each holding
    its own unpickled copy of the context.  Falls back to inheriting
    the live context by copy-on-write when the context does not
    pickle, and degrades to the in-process loop when process creation
    fails.
``socket``
    Remote ``repro worker`` processes reached over TCP with the
    length-prefixed JSON frames of :mod:`repro.parallel.wire`.  The
    context ships once per session as a fingerprint-addressed pickle
    bundle; chunk calls and their stats/span/coverage payloads travel
    per request.

**The virtual-worker determinism model.**  A pool of ``W`` virtual
workers assigns chunk ``i`` of a batch to worker ``i mod W`` —
statically, never by who finishes first.  Each virtual worker starts
from the same *bundle* (``pickle.loads(pickle.dumps(context))``), so
its rewrite-memo warmth is a pure function of the bundle and the chunk
subsequence it processes.  Chunk results were already backend-independent
(the mergers replay serial iteration order); with static assignment and
bundle-cold workers the per-chunk counters (``cache_hits``,
``cache_misses``, ``rewrite_steps``, ``dispatch_hits``) become
backend-independent too: inline, fork and socket report identical
stats for the same ``workers`` count.  Two counters stay *ambient* —
``wall_time`` (timing) and ``interned_terms`` (growth of the
process-wide intern table, which depends on what else ran in the
worker process) — and are excluded from cross-backend identity gates.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import pickle
import socket as socketlib
import threading
from typing import Any, Callable, Sequence

__all__ = [
    "ExecutorBackend",
    "InlineBackend",
    "ForkBackend",
    "SocketBackend",
    "ExecutorBackendError",
    "ChunkError",
    "BACKEND_NAMES",
    "make_backend",
    "resolve_backend",
    "active_backend",
    "use_backend",
    "bundle_context",
    "parse_address",
]

#: The CLI vocabulary of ``--backend``.
BACKEND_NAMES = ("inline", "fork", "socket")


class ExecutorBackendError(RuntimeError):
    """A backend cannot be built or cannot serve the request."""


class ChunkError(RuntimeError):
    """A chunk failed in a worker and the failure could not be
    re-raised as its original exception type."""


def bundle_context(context: Any) -> bytes | None:
    """The context's pickle bundle, or ``None`` when it does not
    pickle (lambdas, open handles); callers then choose their
    fallback — copy-on-write inheritance for ``fork``, the live
    in-process loop for ``inline``, a hard error for ``socket``."""
    try:
        return pickle.dumps(context, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return None


def bundle_fingerprint(bundle: bytes) -> str:
    """Content address of a context bundle (SHA-256 hex)."""
    return hashlib.sha256(bundle).hexdigest()


def parse_address(text: str) -> tuple[str, int]:
    """``"host:port"`` -> ``(host, port)``, with a readable error."""
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ExecutorBackendError(
            f"worker address {text!r} is not of the form host:port"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ExecutorBackendError(
            f"worker address {text!r} has a non-numeric port"
        ) from None
    return host, port


def _ship_exception(exc: BaseException) -> BaseException | str:
    """An exception in a form that survives the trip to the parent."""
    try:
        pickle.dumps(exc)
        return exc
    except Exception:
        return f"{type(exc).__name__}: {exc}"


def _raise_shipped(shipped: BaseException | str) -> None:
    if isinstance(shipped, BaseException):
        raise shipped
    raise ChunkError(shipped)


def _order_outcomes(
    slots: list, total: int
) -> list[tuple[Any, Any]]:
    """Unpack ``("ok", outcome) | ("err", shipped)`` slots in global
    submission order, re-raising the earliest failure."""
    outcomes = []
    for index in range(total):
        slot = slots[index]
        if slot is None:
            raise ChunkError(
                f"chunk {index} was never executed (its worker "
                "stopped after an earlier failure)"
            )
        tag, value = slot
        if tag != "ok":
            _raise_shipped(value)
        outcomes.append(value)
    return outcomes


# ---------------------------------------------------------------------
# the backend interface
# ---------------------------------------------------------------------
class ExecutorBackend:
    """Where chunks run.  One instance is stateless and reusable; the
    per-``ParallelExecutor`` state lives in the pool it opens."""

    name = "abstract"

    def open_pool(self, workers: int, context: Any):
        """A pool of ``workers`` virtual workers bound to ``context``,
        or ``None`` to degrade to the executor's in-process loop over
        the live context (the historical fork-unavailable path)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


# ---------------------------------------------------------------------
# inline: virtual workers in the calling process
# ---------------------------------------------------------------------
class _InlinePending:
    """Chunks queued on an inline pool; they run at :meth:`wait` time
    (matching the historical collect-time semantics of the in-process
    path, which lets callers overlap their own work first)."""

    def __init__(self, contexts: list, payloads: Sequence[tuple]):
        self._contexts = contexts
        self._payloads = payloads

    def wait(self) -> list:
        from repro.parallel.executor import _run_chunk

        count = len(self._contexts)
        return [
            _run_chunk(payload, context=self._contexts[index % count])
            for index, payload in enumerate(self._payloads)
        ]


class _InlinePool:
    """W unpickled context copies, no processes."""

    def __init__(self, workers: int, bundle: bytes):
        self._contexts = [
            pickle.loads(bundle) for _ in range(workers)
        ]

    def submit(self, payloads: Sequence[tuple]) -> _InlinePending:
        return _InlinePending(self._contexts, payloads)

    def close(self) -> None:
        self._contexts = []


class InlineBackend(ExecutorBackend):
    """Chunks run in-process, one bundle copy per virtual worker, so
    the stats match ``fork``/``socket`` at the same worker count.  An
    unpicklable context degrades to the live-context loop."""

    name = "inline"

    def open_pool(self, workers: int, context: Any):
        if workers <= 1:
            return None
        bundle = bundle_context(context)
        if bundle is None:
            return None
        return _InlinePool(workers, bundle)


# ---------------------------------------------------------------------
# fork: one long-lived forked process per virtual worker
# ---------------------------------------------------------------------
def _fork_worker_main(conn, bundle: bytes | None) -> None:
    """Forked child: serve chunk batches over the pipe until EOF.

    With a bundle, the child replaces its inherited context slot with
    its own cold unpickled copy (the determinism model); without one
    (unpicklable context) it keeps the copy-on-write inherited live
    context.
    """
    from repro.parallel import executor as executor_module

    if bundle is not None:
        executor_module._CONTEXT = pickle.loads(bundle)
    while True:
        try:
            batch = conn.recv()
        except EOFError:
            break
        if batch is None:
            break
        outcomes = []
        for payload in batch:
            try:
                outcomes.append(
                    ("ok", executor_module._run_chunk(payload))
                )
            except BaseException as exc:
                outcomes.append(("err", _ship_exception(exc)))
        try:
            conn.send(outcomes)
        except Exception as exc:
            # A result that does not pickle: report the batch as
            # failed rather than dying and stranding the parent.
            conn.send(
                [
                    ("err", f"chunk outcome not picklable: {exc}")
                    for _ in batch
                ]
            )
    conn.close()


def _spawn_fork_worker(mp_context, conn, bundle: bytes | None):
    """Create and start one worker process (module-level so tests can
    monkeypatch it to force the process-creation-failure path)."""
    process = mp_context.Process(
        target=_fork_worker_main, args=(conn, bundle), daemon=True
    )
    process.start()
    return process


class _ForkPool:
    """W forked worker processes, one duplex pipe each."""

    def __init__(self, members: list):
        self._members = members  # [(process, parent_conn)]

    def submit(self, payloads: Sequence[tuple]) -> "_ForkPending":
        count = len(self._members)
        assignment: list[list[int]] = [[] for _ in range(count)]
        for index in range(len(payloads)):
            assignment[index % count].append(index)
        for worker, indices in enumerate(assignment):
            if indices:
                _, conn = self._members[worker]
                conn.send([payloads[index] for index in indices])
        return _ForkPending(self._members, assignment, len(payloads))

    def close(self) -> None:
        for process, conn in self._members:
            try:
                conn.send(None)
            except (OSError, ValueError):
                pass
        for process, conn in self._members:
            try:
                conn.close()
            except OSError:
                pass
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=5)
        self._members = []


class _ForkPending:
    """A submitted batch awaiting its per-worker replies."""

    def __init__(self, members, assignment, total: int):
        self._members = members
        self._assignment = assignment
        self._total = total

    def wait(self) -> list:
        slots: list = [None] * self._total
        for worker, indices in enumerate(self._assignment):
            if not indices:
                continue
            process, conn = self._members[worker]
            try:
                outcomes = conn.recv()
            except EOFError:
                raise ChunkError(
                    f"fork worker {worker} died before returning its "
                    f"{len(indices)} chunk(s)"
                ) from None
            for index, outcome in zip(indices, outcomes):
                slots[index] = outcome
        return _order_outcomes(slots, self._total)


class ForkBackend(ExecutorBackend):
    """One forked process per virtual worker with a pipe each and
    static chunk assignment (chunk ``i`` -> worker ``i mod W``).

    The context travels as a pickle bundle so every worker starts
    memo-cold and deterministic; an unpicklable context falls back to
    copy-on-write inheritance of the live parent context (results
    still deterministic — only the counters then depend on the
    parent's memo warmth).  Platforms without ``fork`` or failed
    process creation degrade to ``None`` (the executor's in-process
    live-context loop).
    """

    name = "fork"

    def open_pool(self, workers: int, context: Any):
        if workers <= 1:
            return None
        try:
            mp_context = multiprocessing.get_context("fork")
        except ValueError:
            return None
        bundle = bundle_context(context)
        members: list = []
        try:
            for _ in range(workers):
                parent_conn, child_conn = mp_context.Pipe()
                process = _spawn_fork_worker(
                    mp_context, child_conn, bundle
                )
                child_conn.close()
                members.append((process, parent_conn))
        except (ValueError, OSError):
            for process, conn in members:
                try:
                    conn.close()
                except OSError:
                    pass
                process.terminate()
                process.join(timeout=5)
            return None
        return _ForkPool(members)


# ---------------------------------------------------------------------
# socket: remote `repro worker` processes over TCP
# ---------------------------------------------------------------------
class _WorkerSession:
    """One bound session on a remote worker: hello, bundle, chunks.

    Each session is its own virtual worker — the remote end unpickles
    a fresh context per session, so determinism survives sessions
    sharing one worker process.
    """

    def __init__(self, sock, rfile, wfile, address: tuple[str, int]):
        self._sock = sock
        self._rfile = rfile
        self._wfile = wfile
        self.address = address

    @classmethod
    def connect(
        cls,
        address: tuple[str, int],
        fingerprint: str,
        bundle: bytes,
        timeout: float = 30.0,
    ) -> "_WorkerSession":
        from repro.parallel import wire

        host, port = address
        try:
            sock = socketlib.create_connection(
                (host, port), timeout=timeout
            )
        except OSError as exc:
            raise ExecutorBackendError(
                f"cannot reach worker at {host}:{port}: {exc}"
            ) from exc
        # Chunks may run long; only the handshake keeps a timeout.
        rfile = sock.makefile("rb")
        wfile = sock.makefile("wb")
        session = cls(sock, rfile, wfile, address)
        try:
            reply = session._call(
                {"op": "hello", "version": wire.PROTOCOL_VERSION}
            )
            if reply.get("version") != wire.PROTOCOL_VERSION:
                raise ExecutorBackendError(
                    f"worker at {host}:{port} speaks protocol "
                    f"{reply.get('version')!r}, this client speaks "
                    f"{wire.PROTOCOL_VERSION}"
                )
            reply = session._call(
                {"op": "bind", "fingerprint": fingerprint}
            )
            if not reply.get("have"):
                session._call(
                    {
                        "op": "bundle",
                        "fingerprint": fingerprint,
                        "data": wire.encode_bytes(bundle),
                    }
                )
            sock.settimeout(None)
        except BaseException:
            session.close(polite=False)
            raise
        return session

    def _call(self, request: dict) -> dict:
        from repro.parallel import wire

        wire.send_frame(self._wfile, request)
        reply = wire.recv_frame(self._rfile)
        host, port = self.address
        if reply is None:
            raise ExecutorBackendError(
                f"worker at {host}:{port} closed the connection "
                f"during {request.get('op')!r}"
            )
        if not reply.get("ok"):
            raise ChunkError(
                f"worker at {host}:{port} rejected "
                f"{request.get('op')!r}: {reply.get('error')}"
            )
        return reply

    def run_chunk(
        self, payload: tuple, trace: bool, coverage: bool
    ) -> tuple:
        """Execute one ``(fn, index, arg)`` payload remotely."""
        from repro.parallel import wire

        fn, index, arg = payload
        reply = self._call(
            {
                "op": "chunk",
                "fn": f"{fn.__module__}:{fn.__qualname__}",
                "index": index,
                "arg": wire.encode_bytes(
                    pickle.dumps(arg, protocol=pickle.HIGHEST_PROTOCOL)
                ),
                "trace": trace,
                "coverage": coverage,
            }
        )
        return pickle.loads(wire.decode_bytes(reply["outcome"]))

    def close(self, polite: bool = True) -> None:
        from repro.parallel import wire

        if polite:
            try:
                wire.send_frame(self._wfile, {"op": "bye"})
                wire.recv_frame(self._rfile)
            except (OSError, ConnectionError):
                pass
        for closer in (self._rfile, self._wfile, self._sock):
            try:
                closer.close()
            except OSError:
                pass


class _SocketPending:
    """Per-session sender threads working through their chunk lists."""

    def __init__(self, threads: list, slots: list, total: int):
        self._threads = threads
        self._slots = slots
        self._total = total

    def wait(self) -> list:
        for thread in self._threads:
            thread.join()
        return _order_outcomes(self._slots, self._total)


class _SocketPool:
    """W sessions sharded over the configured worker addresses."""

    def __init__(self, sessions: list):
        self._sessions = sessions

    def submit(self, payloads: Sequence[tuple]) -> _SocketPending:
        from repro.obs.coverage import COV_STATE
        from repro.obs.tracer import OBS_STATE

        # The observability flags are captured at submission time and
        # shipped with every chunk request: remote workers cannot
        # inherit them the way forked children do.
        trace = OBS_STATE.enabled
        coverage = COV_STATE.enabled
        count = len(self._sessions)
        assignment: list[list[int]] = [[] for _ in range(count)]
        for index in range(len(payloads)):
            assignment[index % count].append(index)
        slots: list = [None] * len(payloads)

        def drive(session: _WorkerSession, indices: list[int]) -> None:
            for index in indices:
                try:
                    outcome = session.run_chunk(
                        payloads[index], trace, coverage
                    )
                except BaseException as exc:
                    slots[index] = ("err", _ship_exception(exc))
                    return
                slots[index] = ("ok", outcome)

        threads = []
        for session, indices in zip(self._sessions, assignment):
            if not indices:
                continue
            thread = threading.Thread(
                target=drive, args=(session, indices), daemon=True
            )
            thread.start()
            threads.append(thread)
        return _SocketPending(threads, slots, len(payloads))

    def close(self) -> None:
        for session in self._sessions:
            session.close()
        self._sessions = []


class SocketBackend(ExecutorBackend):
    """Chunks run on remote ``repro worker`` processes over TCP.

    ``W`` virtual workers over ``M`` addresses open ``W`` sessions,
    round-robin over the addresses; each session binds its own fresh
    copy of the fingerprint-addressed context bundle, so any
    worker-process topology reports the same stats as ``inline`` and
    ``fork`` at the same ``workers`` count.

    The transport pickles arguments and results: point it only at
    workers you trust, on networks you trust (the shipped worker binds
    ``127.0.0.1`` by default).
    """

    name = "socket"

    def __init__(self, addresses: Sequence[str | tuple[str, int]]):
        parsed = []
        for address in addresses:
            if isinstance(address, str):
                parsed.append(parse_address(address))
            else:
                parsed.append((address[0], int(address[1])))
        if not parsed:
            raise ExecutorBackendError(
                "socket backend needs at least one worker address"
            )
        self.addresses: tuple[tuple[str, int], ...] = tuple(parsed)

    def open_pool(self, workers: int, context: Any):
        if workers <= 1:
            return None
        bundle = bundle_context(context)
        if bundle is None:
            raise ExecutorBackendError(
                "socket backend requires a picklable context "
                "(this context cannot be shipped to remote workers)"
            )
        fingerprint = bundle_fingerprint(bundle)
        sessions: list[_WorkerSession] = []
        try:
            for index in range(workers):
                address = self.addresses[index % len(self.addresses)]
                sessions.append(
                    _WorkerSession.connect(
                        address, fingerprint, bundle
                    )
                )
        except BaseException:
            for session in sessions:
                session.close(polite=False)
            raise
        return _SocketPool(sessions)


# ---------------------------------------------------------------------
# registry and the active-backend scope
# ---------------------------------------------------------------------
_FORK = ForkBackend()
_INLINE = InlineBackend()

#: The scope-active backend (``use_backend``); ``None`` = default fork.
_ACTIVE: ExecutorBackend | None = None


def make_backend(
    name: str, addresses: Sequence[str] | None = None
) -> ExecutorBackend:
    """Build a backend from its CLI name (and worker addresses)."""
    if name == "inline":
        return _INLINE
    if name == "fork":
        return _FORK
    if name == "socket":
        if not addresses:
            raise ExecutorBackendError(
                "the socket backend needs at least one worker "
                "address (--workers-addr HOST:PORT)"
            )
        return SocketBackend(addresses)
    raise ExecutorBackendError(
        f"unknown executor backend {name!r} "
        f"(expected one of: {', '.join(BACKEND_NAMES)})"
    )


def active_backend() -> ExecutorBackend:
    """The backend chunk dispatch currently resolves to."""
    return _ACTIVE if _ACTIVE is not None else _FORK


def resolve_backend(
    spec: "ExecutorBackend | str | None" = None,
) -> ExecutorBackend:
    """``None`` -> the active backend; a name -> the registry; an
    instance -> itself."""
    if spec is None:
        return active_backend()
    if isinstance(spec, str):
        return make_backend(spec)
    return spec


class use_backend:
    """Scope the active backend: every ``run_chunked``/executor call
    under the scope that does not name a backend explicitly uses this
    one.  ``use_backend(None)`` is a no-op scope, so callers can
    thread an optional backend without branching."""

    def __init__(self, backend: "ExecutorBackend | str | None"):
        self._backend = (
            resolve_backend(backend) if backend is not None else None
        )
        self._saved: ExecutorBackend | None = None

    def __enter__(self) -> "ExecutorBackend | None":
        global _ACTIVE
        self._saved = _ACTIVE
        if self._backend is not None:
            _ACTIVE = self._backend
        return self._backend

    def __exit__(self, exc_type, exc, tb) -> None:
        global _ACTIVE
        _ACTIVE = self._saved
        self._saved = None

"""Parallel verification engine.

Every "result" of the paper is a bounded exhaustive sweep over
finitely generated state terms — sufficient completeness (Section
4.4a), static/transition consistency (Sections 4.4b/d), update
repertoire completeness (Section 4.4c), and the two refinement checks
(Sections 4.3 and 5.4).  All of them are embarrassingly parallel: the
term/state space partitions into independent chunks whose verdicts
merge deterministically.

This package provides the three pieces the verification layers share:

* :mod:`repro.parallel.partition` — deterministic contiguous chunking
  of an index space across workers;
* :mod:`repro.parallel.executor` — a fork-based process executor (with
  a transparent in-process fallback) that runs a chunk function over
  every chunk and collects per-worker counters;
* :mod:`repro.parallel.stats` — the :class:`VerificationStats` record
  (states checked, rewrite-cache hits/misses, rewrite steps, wall
  time, per-worker breakdown) that the merger aggregates and
  :meth:`repro.core.framework.DesignFramework.verify` surfaces.

The contract every parallelized check honors: ``workers=1`` runs the
original serial code path, and ``workers=N`` produces a report equal
to the serial one — partitioning and merging never change a verdict,
a witness, or their order.
"""

from repro.parallel.executor import ParallelExecutor, run_chunked
from repro.parallel.partition import chunk_ranges, chunk_sizes
from repro.parallel.stats import StatsSink, VerificationStats, WorkerStats

__all__ = [
    "ParallelExecutor",
    "run_chunked",
    "chunk_ranges",
    "chunk_sizes",
    "StatsSink",
    "VerificationStats",
    "WorkerStats",
]

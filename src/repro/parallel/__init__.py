"""Parallel verification engine.

Every "result" of the paper is a bounded exhaustive sweep over
finitely generated state terms — sufficient completeness (Section
4.4a), static/transition consistency (Sections 4.4b/d), update
repertoire completeness (Section 4.4c), and the two refinement checks
(Sections 4.3 and 5.4).  All of them are embarrassingly parallel: the
term/state space partitions into independent chunks whose verdicts
merge deterministically.

This package provides the pieces the verification layers share:

* :mod:`repro.parallel.partition` — deterministic contiguous chunking
  of an index space across workers;
* :mod:`repro.parallel.executor` — the chunk executor with the
  deterministic submission-order merge (and a transparent in-process
  fallback);
* :mod:`repro.parallel.backends` — where chunks run: ``inline``
  (in-process virtual workers), ``fork`` (one forked process per
  virtual worker, the default), or ``socket`` (remote ``repro
  worker`` processes over TCP);
* :mod:`repro.parallel.wire` — the length-prefixed JSON frame
  protocol the socket backend and the worker speak;
* :mod:`repro.parallel.worker` — the ``repro worker`` TCP server;
* :mod:`repro.parallel.stats` — the :class:`VerificationStats` record
  (states checked, rewrite-cache hits/misses, rewrite steps, wall
  time, per-worker breakdown) that the merger aggregates and
  :meth:`repro.core.framework.DesignFramework.verify` surfaces.

The contract every parallelized check honors: ``workers=1`` runs the
original serial code path, and ``workers=N`` produces a report equal
to the serial one — partitioning and merging never change a verdict,
a witness, or their order — on every backend.
"""

from repro.parallel.backends import (
    BACKEND_NAMES,
    ExecutorBackend,
    ExecutorBackendError,
    ForkBackend,
    InlineBackend,
    SocketBackend,
    make_backend,
    resolve_backend,
    use_backend,
)
from repro.parallel.executor import ParallelExecutor, run_chunked
from repro.parallel.partition import chunk_ranges, chunk_sizes
from repro.parallel.stats import StatsSink, VerificationStats, WorkerStats

__all__ = [
    "ParallelExecutor",
    "run_chunked",
    "chunk_ranges",
    "chunk_sizes",
    "StatsSink",
    "VerificationStats",
    "WorkerStats",
    "ExecutorBackend",
    "ExecutorBackendError",
    "InlineBackend",
    "ForkBackend",
    "SocketBackend",
    "BACKEND_NAMES",
    "make_backend",
    "resolve_backend",
    "use_backend",
]

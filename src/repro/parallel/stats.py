"""Verification statistics: per-worker counters and their merger.

The parallel engine gives each worker its own
:class:`~repro.algebraic.rewriting.RewriteEngine` (a forked copy of
the parent's, so the memo cache starts warm), and every chunk reports
the counters it accumulated: work items processed, rewrite-cache hits
and misses, rewrite (equation-firing) steps, and wall time.  The
merger folds them into one :class:`VerificationStats` record per
check; :meth:`repro.core.framework.DesignFramework.verify` combines
the per-check records into a single machine-readable bundle that the
benchmarks emit as JSON — the observable perf trajectory of the
verifier.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.logic.terms import intern_table_size

__all__ = [
    "WorkerStats",
    "VerificationStats",
    "StatsSink",
    "engine_counters",
    "counter_delta",
]

#: The counter keys every chunk function reports.
COUNTER_KEYS = (
    "items",
    "cache_hits",
    "cache_misses",
    "rewrite_steps",
    "dispatch_hits",
    "interned_terms",
)


def engine_counters(*engines) -> dict[str, int]:
    """Snapshot the cache/rewrite counters of rewrite-engine-like
    objects (anything exposing ``cache_hits``/``cache_misses``/
    ``rewrite_steps``/``dispatch_hits``), summed.  ``None`` entries are
    skipped.  ``interned_terms`` is the size of the process-wide term
    intern table (a gauge, recorded once per snapshot, not per
    engine); :func:`counter_delta` turns a pair of snapshots into the
    table's growth over a chunk."""
    out = {
        "cache_hits": 0,
        "cache_misses": 0,
        "rewrite_steps": 0,
        "dispatch_hits": 0,
        "interned_terms": intern_table_size(),
    }
    for engine in engines:
        if engine is None:
            continue
        out["cache_hits"] += getattr(engine, "cache_hits", 0)
        out["cache_misses"] += getattr(engine, "cache_misses", 0)
        out["rewrite_steps"] += getattr(engine, "rewrite_steps", 0)
        out["dispatch_hits"] += getattr(engine, "dispatch_hits", 0)
    return out


def counter_delta(
    before: dict[str, int], after: dict[str, int], items: int = 0
) -> dict[str, int]:
    """The per-chunk counter report: ``after - before`` plus the item
    count.  For the ``interned_terms`` gauge the delta is the number of
    terms interned during the chunk (clamped at zero: weakly referenced
    terms may have been collected in the meantime)."""
    delta = {
        key: after.get(key, 0) - before.get(key, 0)
        for key in ("cache_hits", "cache_misses", "rewrite_steps", "dispatch_hits")
    }
    delta["interned_terms"] = max(
        0, after.get("interned_terms", 0) - before.get("interned_terms", 0)
    )
    delta["items"] = items
    return delta


@dataclass(frozen=True)
class WorkerStats:
    """Counters one worker accumulated over one chunk.

    Attributes:
        worker: chunk/worker index (0-based, in partition order).
        items: work items the chunk processed (states, traces,
            structures, equation instances — whatever the check
            partitions).
        cache_hits: rewrite-engine memo hits inside the chunk.
        cache_misses: rewrite-engine memo misses inside the chunk.
        rewrite_steps: conditional-equation firings inside the chunk.
        dispatch_hits: reuses of a compiled dispatch-table entry
            (symbol classification or equation matcher) in the chunk.
        interned_terms: growth of the worker's term intern table over
            the chunk (new unique terms hash-consed).
        wall_time: seconds the chunk took, measured in the worker.
        spans: serialized :class:`repro.obs.tracer.Span` trees the
            chunk recorded (empty unless tracing was enabled); the
            executor grafts them back into the parent's trace in
            chunk submission order.
        coverage: the chunk's serialized
            :class:`repro.obs.coverage.CoverageRecorder` payload
            (``None`` unless coverage recording was enabled); the
            executor folds it into the parent's recorder — coverage
            merging is commutative, so any merge order yields the
            same facts.
    """

    worker: int
    items: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    rewrite_steps: int = 0
    dispatch_hits: int = 0
    interned_terms: int = 0
    wall_time: float = 0.0
    spans: tuple = ()
    coverage: dict | None = None

    def to_dict(self) -> dict:
        """A JSON-serializable view of the chunk record (span buffers
        and coverage payloads are part of the trace/coverage outputs,
        not the stats, and are omitted)."""
        return {
            "worker": self.worker,
            "items": self.items,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "rewrite_steps": self.rewrite_steps,
            "dispatch_hits": self.dispatch_hits,
            "interned_terms": self.interned_terms,
            "wall_time": self.wall_time,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "WorkerStats":
        """Rebuild a chunk record serialized by :meth:`to_dict` (the
        result-cache replay path)."""
        return cls(
            worker=payload.get("worker", 0),
            items=payload.get("items", 0),
            cache_hits=payload.get("cache_hits", 0),
            cache_misses=payload.get("cache_misses", 0),
            rewrite_steps=payload.get("rewrite_steps", 0),
            dispatch_hits=payload.get("dispatch_hits", 0),
            interned_terms=payload.get("interned_terms", 0),
            wall_time=payload.get("wall_time", 0.0),
        )


@dataclass(frozen=True)
class VerificationStats:
    """Aggregated statistics of one verification pass.

    Attributes:
        label: which check the record describes (e.g. ``"explore"``,
            ``"coverage"``, ``"second-third"``, or the combined
            ``"verify"``).
        workers: worker count the pass was requested with.
        states_checked: total work items examined (the merger's sum of
            per-worker ``items``, or the serial loop's count).
        cache_hits: total rewrite-cache hits.
        cache_misses: total rewrite-cache misses.
        rewrite_steps: total conditional-equation firings.
        dispatch_hits: total compiled-dispatch-table reuses.
        interned_terms: total intern-table growth (unique terms
            hash-consed during the pass, summed over workers).
        wall_time: elapsed seconds of the whole pass (not the sum of
            worker times — workers overlap).
        per_worker: the unmerged per-worker records.
        parts: sub-records when this record combines several passes
            (the framework-level bundle keeps one part per check).
    """

    label: str
    workers: int = 1
    states_checked: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    rewrite_steps: int = 0
    dispatch_hits: int = 0
    interned_terms: int = 0
    wall_time: float = 0.0
    per_worker: tuple[WorkerStats, ...] = ()
    parts: tuple["VerificationStats", ...] = ()

    @property
    def cache_hit_rate(self) -> float:
        """Hits / (hits + misses), 0.0 when the cache was untouched."""
        touched = self.cache_hits + self.cache_misses
        return self.cache_hits / touched if touched else 0.0

    @classmethod
    def merge(
        cls,
        label: str,
        workers: int,
        per_worker: list[WorkerStats],
        wall_time: float,
    ) -> "VerificationStats":
        """Fold per-worker chunk records into one pass record."""
        return cls(
            label=label,
            workers=workers,
            states_checked=sum(w.items for w in per_worker),
            cache_hits=sum(w.cache_hits for w in per_worker),
            cache_misses=sum(w.cache_misses for w in per_worker),
            rewrite_steps=sum(w.rewrite_steps for w in per_worker),
            dispatch_hits=sum(w.dispatch_hits for w in per_worker),
            interned_terms=sum(w.interned_terms for w in per_worker),
            wall_time=wall_time,
            per_worker=tuple(per_worker),
        )

    @classmethod
    def combine(
        cls, label: str, parts: list["VerificationStats"]
    ) -> "VerificationStats":
        """Combine several pass records (e.g. every check of a full
        framework verification) into one bundle."""
        return cls(
            label=label,
            workers=max((p.workers for p in parts), default=1),
            states_checked=sum(p.states_checked for p in parts),
            cache_hits=sum(p.cache_hits for p in parts),
            cache_misses=sum(p.cache_misses for p in parts),
            rewrite_steps=sum(p.rewrite_steps for p in parts),
            dispatch_hits=sum(p.dispatch_hits for p in parts),
            interned_terms=sum(p.interned_terms for p in parts),
            wall_time=sum(p.wall_time for p in parts),
            parts=tuple(parts),
        )

    def to_dict(self) -> dict:
        """A JSON-serializable view (the machine-readable emission)."""
        out = {
            "label": self.label,
            "workers": self.workers,
            "states_checked": self.states_checked,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate, 6),
            "rewrite_steps": self.rewrite_steps,
            "dispatch_hits": self.dispatch_hits,
            "interned_terms": self.interned_terms,
            "wall_time": self.wall_time,
        }
        if self.per_worker:
            out["per_worker"] = [w.to_dict() for w in self.per_worker]
        if self.parts:
            out["parts"] = [p.to_dict() for p in self.parts]
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "VerificationStats":
        """Rebuild a pass record serialized by :meth:`to_dict`.

        The inverse the result cache relies on: a cached check replays
        its stats record so warm and cold ``--stats-json`` emissions
        are byte-identical (``cache_hit_rate`` is derived, not
        stored).
        """
        return cls(
            label=payload.get("label", ""),
            workers=payload.get("workers", 1),
            states_checked=payload.get("states_checked", 0),
            cache_hits=payload.get("cache_hits", 0),
            cache_misses=payload.get("cache_misses", 0),
            rewrite_steps=payload.get("rewrite_steps", 0),
            dispatch_hits=payload.get("dispatch_hits", 0),
            interned_terms=payload.get("interned_terms", 0),
            wall_time=payload.get("wall_time", 0.0),
            per_worker=tuple(
                WorkerStats.from_dict(worker)
                for worker in payload.get("per_worker", ())
            ),
            parts=tuple(
                cls.from_dict(part) for part in payload.get("parts", ())
            ),
        )

    def to_json(self, indent: int | None = None) -> str:
        """The record as a JSON document (:meth:`to_dict` serialized)."""
        return json.dumps(self.to_dict(), indent=indent)

    def __str__(self) -> str:
        return (
            f"[{self.label}] workers={self.workers} "
            f"states={self.states_checked} "
            f"cache={self.cache_hits}h/{self.cache_misses}m "
            f"({self.cache_hit_rate:.1%}) "
            f"rewrites={self.rewrite_steps} "
            f"dispatch={self.dispatch_hits} "
            f"interned={self.interned_terms} "
            f"wall={self.wall_time:.3f}s"
        )


@dataclass
class StatsSink:
    """Mutable collector the verification layers append records to.

    Passing a sink into a check is always optional and never changes
    the check's report; the sink only observes.
    """

    records: list[VerificationStats] = field(default_factory=list)

    def add(self, record: VerificationStats) -> None:
        """Append one per-check record to the sink."""
        self.records.append(record)

    def combined(self, label: str = "verify") -> VerificationStats:
        """One bundle record over everything collected so far."""
        return VerificationStats.combine(label, list(self.records))

"""Length-prefixed JSON frames: the worker-pool wire protocol.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON::

    +----------------+----------------------------+
    | length (u32 BE)| UTF-8 JSON payload         |
    +----------------+----------------------------+

Every payload is a JSON object with an ``"op"`` key on requests and an
``"ok"`` key on replies (``{"ok": false, "error": "..."}`` reports a
failure without killing the connection).  Binary values — pickled
chunk arguments, spec bundles, chunk outcomes — travel base64-encoded
under their own keys, so a frame is always printable and the protocol
stays debuggable with a terminal.

The frame reader enforces :data:`MAX_FRAME` so a corrupt or hostile
length prefix cannot make the peer allocate unbounded memory.  The
protocol is versioned through :data:`PROTOCOL_VERSION`, exchanged in
the ``hello`` op; both sides refuse to proceed on a mismatch rather
than mis-parse each other.
"""

from __future__ import annotations

import base64
import json
import struct
from typing import BinaryIO

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME",
    "WireError",
    "send_frame",
    "recv_frame",
    "encode_bytes",
    "decode_bytes",
]

#: Bumped on incompatible frame/op changes; exchanged in ``hello``.
PROTOCOL_VERSION = 1

#: Upper bound on one frame's JSON payload (bundles for the shipped
#: applications are a few KB; 512 MiB leaves room for huge state
#: graphs while still bounding a corrupt length prefix).
MAX_FRAME = 512 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class WireError(ConnectionError):
    """A malformed frame or a violated protocol invariant."""


def send_frame(stream: BinaryIO, payload: dict) -> None:
    """Write one frame (length prefix + JSON body) and flush."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise WireError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME ({MAX_FRAME})"
        )
    stream.write(_LENGTH.pack(len(body)))
    stream.write(body)
    stream.flush()


def _read_exactly(stream: BinaryIO, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            raise WireError(
                f"connection closed mid-frame ({remaining} of {count} "
                "bytes missing)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(stream: BinaryIO) -> dict | None:
    """Read one frame; ``None`` on a clean EOF at a frame boundary."""
    prefix = stream.read(_LENGTH.size)
    if not prefix:
        return None
    if len(prefix) < _LENGTH.size:
        prefix += _read_exactly(stream, _LENGTH.size - len(prefix))
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME:
        raise WireError(
            f"peer announced a {length}-byte frame "
            f"(MAX_FRAME is {MAX_FRAME})"
        )
    body = _read_exactly(stream, length)
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise WireError("frame body must be a JSON object")
    return payload


def encode_bytes(data: bytes) -> str:
    """Binary payload -> its base64 text form for a JSON frame."""
    return base64.b64encode(data).decode("ascii")


def decode_bytes(text: str) -> bytes:
    """Base64 text from a frame -> the binary payload."""
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as exc:
        raise WireError(f"invalid base64 payload: {exc}") from exc

"""The ``repro worker`` process: serve chunk calls over TCP.

A worker is the remote half of the ``socket`` executor backend.  It
listens on a TCP port, speaks the length-prefixed JSON frames of
:mod:`repro.parallel.wire`, and serves any number of concurrent
*sessions* (one connection = one session = one virtual worker):

``hello``
    Protocol-version handshake; mismatches are refused.
``bind`` / ``bundle``
    The client names its context bundle by SHA-256 fingerprint; the
    worker answers whether it already holds the bytes (so a second
    session, or a re-verify of an unchanged spec, skips the upload).
    Either way the session unpickles a **fresh** context from the
    bytes — never shares a warmed one — because the determinism model
    (see :mod:`repro.parallel.backends`) prices every virtual worker
    from the same cold bundle.
``chunk``
    Runs one module-level chunk function, named ``"module:qualname"``
    and resolved only inside the configured module prefixes
    (``repro.`` by default), against the session's context.  The
    request carries the client's tracing/coverage flags; span buffers
    and coverage payloads travel back inside the pickled
    :class:`~repro.parallel.stats.WorkerStats`.
``telemetry``
    The worker's live telemetry snapshot (per-op and bundle-load
    latency histograms, chunk rates, bundle cache hit/miss counters,
    recent slow ops) — always on, held per worker process, so
    harnesses and ``repro top --worker`` can watch a pool member
    without touching the process-wide telemetry switch.
``bye`` / ``shutdown``
    End the session / stop the whole worker (the latter only with
    ``--allow-shutdown``, for harnesses).

Chunk arguments and outcomes are *pickled* inside the frames: a
worker executes what its clients send.  Bind workers to loopback (the
default) or to interfaces reachable only by machines you trust.
"""

from __future__ import annotations

import importlib
import pickle
import socketserver
import threading
import time
import traceback
from collections import OrderedDict
from contextlib import nullcontext
from typing import Callable

from repro.obs.telemetry import Telemetry
from repro.parallel import wire

__all__ = ["WorkerServer"]

#: Bundles cached per worker process (LRU by fingerprint); a bundle is
#: a few KB for the shipped applications, so this is generous.
DEFAULT_BUNDLE_CACHE = 8


class _BundleStore:
    """Fingerprint-addressed LRU cache of context-bundle bytes."""

    def __init__(self, capacity: int):
        self._capacity = max(1, capacity)
        self._bundles: OrderedDict[str, bytes] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, fingerprint: str) -> bytes | None:
        with self._lock:
            data = self._bundles.get(fingerprint)
            if data is not None:
                self._bundles.move_to_end(fingerprint)
            return data

    def put(self, fingerprint: str, data: bytes) -> None:
        with self._lock:
            self._bundles[fingerprint] = data
            self._bundles.move_to_end(fingerprint)
            while len(self._bundles) > self._capacity:
                self._bundles.popitem(last=False)


class _SessionHandler(socketserver.StreamRequestHandler):
    """One connection's frame loop."""

    def handle(self) -> None:  # noqa: D102 - socketserver hook
        server: "_Server" = self.server  # type: ignore[assignment]
        context = None
        bound = False
        while True:
            try:
                frame = wire.recv_frame(self.rfile)
            except wire.WireError:
                return
            if frame is None:
                return
            op = frame.get("op")
            t0 = time.perf_counter_ns()
            try:
                if op == "hello":
                    version = frame.get("version")
                    if version != wire.PROTOCOL_VERSION:
                        self._reply_error(
                            f"protocol version {version!r} not "
                            f"supported (worker speaks "
                            f"{wire.PROTOCOL_VERSION})"
                        )
                        continue
                    self._reply(
                        {
                            "ok": True,
                            "server": "repro-worker",
                            "version": wire.PROTOCOL_VERSION,
                        }
                    )
                elif op == "bind":
                    fingerprint = frame["fingerprint"]
                    data = server.bundles.get(fingerprint)
                    if data is None:
                        server.telemetry.inc("worker.bundle.misses")
                        self._reply({"ok": True, "have": False})
                    else:
                        server.telemetry.inc("worker.bundle.hits")
                        context = server.load_bundle(data)
                        bound = True
                        self._reply({"ok": True, "have": True})
                elif op == "bundle":
                    data = wire.decode_bytes(frame["data"])
                    from repro.parallel.backends import (
                        bundle_fingerprint,
                    )

                    fingerprint = frame.get("fingerprint")
                    actual = bundle_fingerprint(data)
                    if fingerprint and fingerprint != actual:
                        self._reply_error(
                            "bundle bytes do not match their "
                            "announced fingerprint"
                        )
                        continue
                    server.bundles.put(actual, data)
                    context = server.load_bundle(data)
                    bound = True
                    self._reply({"ok": True, "fingerprint": actual})
                elif op == "telemetry":
                    self._reply(
                        {
                            "ok": True,
                            "server": "repro-worker",
                            "telemetry": server.telemetry.snapshot(
                                events=frame.get("events", 32)
                            ),
                        }
                    )
                elif op == "chunk":
                    if not bound:
                        self._reply_error(
                            "no context bound (send bind/bundle first)"
                        )
                        continue
                    self._reply(
                        server.run_chunk(frame, context)
                    )
                elif op == "bye":
                    self._reply({"ok": True})
                    return
                elif op == "shutdown":
                    if not server.allow_shutdown:
                        self._reply_error(
                            "shutdown not allowed "
                            "(start with --allow-shutdown)"
                        )
                        continue
                    self._reply({"ok": True})
                    threading.Thread(
                        target=server.shutdown, daemon=True
                    ).start()
                    return
                else:
                    self._reply_error(f"unknown op {op!r}")
            except (BrokenPipeError, ConnectionResetError):
                return
            except Exception as exc:
                try:
                    self._reply_error(
                        f"{type(exc).__name__}: {exc}"
                    )
                except (OSError, wire.WireError):
                    return
            finally:
                server.telemetry.observe(
                    "worker.op."
                    + (op if isinstance(op, str) else "invalid"),
                    time.perf_counter_ns() - t0,
                )

    def _reply(self, payload: dict) -> None:
        wire.send_frame(self.wfile, payload)

    def _reply_error(self, message: str) -> None:
        self._reply({"ok": False, "error": message})


class _Server(socketserver.ThreadingTCPServer):
    """The listening socket plus per-worker shared state."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        allow_shutdown: bool,
        module_prefixes: tuple[str, ...],
        bundle_cache: int,
    ):
        super().__init__(address, _SessionHandler)
        self.allow_shutdown = allow_shutdown
        self.module_prefixes = module_prefixes
        self.bundles = _BundleStore(bundle_cache)
        # Server-local and always on: worker telemetry never touches
        # the process-wide TEL_STATE switch, so in-thread harness
        # workers cannot leak state across tests.
        self.telemetry = Telemetry()
        # Chunk execution is serialized: one worker process is one
        # compute slot, however many sessions it serves.
        self.exec_lock = threading.Lock()

    def load_bundle(self, data: bytes):
        """Unpickle a fresh context from bundle bytes, timing the
        load into the ``worker.bundle.load`` histogram."""
        t0 = time.perf_counter_ns()
        context = pickle.loads(data)
        self.telemetry.observe(
            "worker.bundle.load",
            time.perf_counter_ns() - t0,
            counter="worker.bundle.loads",
            bytes=len(data),
        )
        return context

    # ------------------------------------------------------------------
    def resolve_chunk_fn(self, spec: str) -> Callable:
        """``"module:qualname"`` -> the module-level chunk function,
        restricted to the configured module prefixes so a client
        cannot name arbitrary callables (``os:system``)."""
        module_name, sep, qualname = spec.partition(":")
        if not sep or not module_name or not qualname:
            raise ValueError(
                f"chunk fn {spec!r} is not of the form module:qualname"
            )
        allowed = any(
            module_name == prefix.rstrip(".")
            or module_name.startswith(prefix)
            for prefix in self.module_prefixes
        )
        if not allowed:
            raise ValueError(
                f"chunk fn module {module_name!r} is outside the "
                f"allowed prefixes {self.module_prefixes}"
            )
        module = importlib.import_module(module_name)
        obj = module
        for part in qualname.split("."):
            obj = getattr(obj, part)
        if not callable(obj):
            raise ValueError(f"chunk fn {spec!r} is not callable")
        return obj

    def run_chunk(self, frame: dict, context) -> dict:
        """Execute one chunk request and shape the reply frame."""
        from repro.obs.coverage import CoverageRecorder, activate_coverage
        from repro.obs.tracer import Tracer, activate
        from repro.parallel.executor import _run_chunk

        fn = self.resolve_chunk_fn(frame["fn"])
        arg = pickle.loads(wire.decode_bytes(frame["arg"]))
        index = int(frame.get("index", 0))
        # The client's observability flags arrive per request; the
        # throwaway tracer/recorder only turn the capture machinery
        # on — the chunk's own buffers travel back inside the stats.
        tracing = (
            activate(Tracer()) if frame.get("trace") else nullcontext()
        )
        covering = (
            activate_coverage(CoverageRecorder())
            if frame.get("coverage")
            else nullcontext()
        )
        try:
            t0 = time.perf_counter_ns()
            with self.exec_lock, tracing, covering:
                outcome = _run_chunk((fn, index, arg), context=context)
            self.telemetry.observe(
                "worker.chunk",
                time.perf_counter_ns() - t0,
                counter="worker.chunks",
                fn=frame["fn"],
                index=index,
            )
            payload = pickle.dumps(
                outcome, protocol=pickle.HIGHEST_PROTOCOL
            )
        except Exception as exc:
            detail = traceback.format_exception_only(type(exc), exc)
            return {
                "ok": False,
                "error": "".join(detail).strip(),
            }
        return {"ok": True, "outcome": wire.encode_bytes(payload)}


class WorkerServer:
    """A bound, ready-to-serve ``repro worker``.

    Binding happens in the constructor, so :attr:`port` is final
    before :meth:`serve_forever` is called — harnesses can start the
    loop in a thread and connect immediately.

    Args:
        host: interface to bind (default loopback; see the module
            docstring before binding wider).
        port: port to bind (``0`` picks a free one).
        allow_shutdown: honor the ``shutdown`` op (harness use).
        module_prefixes: module prefixes chunk functions may resolve
            in (tests extend this to their own modules).
        bundle_cache: fingerprint-addressed bundles kept in memory.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        allow_shutdown: bool = False,
        module_prefixes: tuple[str, ...] = ("repro.",),
        bundle_cache: int = DEFAULT_BUNDLE_CACHE,
    ):
        self._server = _Server(
            (host, port), allow_shutdown, module_prefixes, bundle_cache
        )

    @property
    def host(self) -> str:
        """The bound interface."""
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (final at construction time)."""
        return self._server.server_address[1]

    @property
    def address(self) -> str:
        """``host:port``, the form ``--workers-addr`` takes."""
        return f"{self.host}:{self.port}"

    @property
    def telemetry(self) -> Telemetry:
        """This worker's live telemetry registry (always on)."""
        return self._server.telemetry

    def serve_forever(self) -> None:
        """Serve sessions until :meth:`shutdown` (blocking)."""
        with self._server:
            self._server.serve_forever(poll_interval=0.1)

    def serve_in_thread(self) -> threading.Thread:
        """Serve from a daemon thread; returns the started thread."""
        thread = threading.Thread(
            target=self.serve_forever, daemon=True
        )
        thread.start()
        return thread

    def shutdown(self) -> None:
        """Stop :meth:`serve_forever` from another thread."""
        self._server.shutdown()

"""Deterministic work partitioning.

The verification sweeps iterate a *flat index space* (structures of V,
successor traces of a BFS level, trace/observation products, equation
x state pairs).  Partitioning that space into contiguous chunks — one
per worker, sized as evenly as possible, earlier chunks never smaller
than later ones — keeps the merged results independent of the worker
count: concatenating per-chunk results in chunk order reproduces the
serial iteration order exactly.
"""

from __future__ import annotations

__all__ = ["chunk_sizes", "chunk_ranges"]


def chunk_sizes(total: int, chunks: int) -> list[int]:
    """Sizes of ``chunks`` contiguous chunks covering ``total`` items.

    The first ``total % chunks`` chunks get one extra item, so sizes
    differ by at most one and the partition is fully determined by
    ``(total, chunks)``.  Empty chunks are dropped, so fewer than
    ``chunks`` sizes may be returned when ``total < chunks``.
    """
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if chunks < 1:
        raise ValueError(f"chunks must be positive, got {chunks}")
    base, extra = divmod(total, chunks)
    sizes = [base + (1 if index < extra else 0) for index in range(chunks)]
    return [size for size in sizes if size > 0]


def chunk_ranges(total: int, chunks: int) -> list[range]:
    """Contiguous index ranges partitioning ``range(total)``.

    ``chunk_ranges(10, 3) == [range(0, 4), range(4, 7), range(7, 10)]``.
    Concatenated in order, the ranges enumerate ``range(total)``
    exactly once — the property the deterministic mergers rely on.
    """
    ranges: list[range] = []
    start = 0
    for size in chunk_sizes(total, chunks):
        ranges.append(range(start, start + size))
        start += size
    return ranges

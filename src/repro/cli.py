"""Command-line interface: verify the shipped application designs.

Usage::

    python -m repro list
    python -m repro verify courses [--depth 2] [--quiet]
    python -m repro verify all --workers 4
    python -m repro verify courses --stats --stats-json stats.json
    python -m repro verify courses --trace trace.json   # Chrome trace
    python -m repro verify courses --trace-summary      # span tree
    python -m repro verify courses --metrics-json metrics.json
    python -m repro verify courses --cache-dir .repro-cache  # warm reruns
    python -m repro verify courses --only second-third   # one check (+deps)
    python -m repro verify courses --skip congruence --fail-fast
    python -m repro schema courses        # print the RPR schema
    python -m repro axioms courses        # print the level-1 theory
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.core.framework import DesignFramework
from repro.logic.terms import intern_stats, intern_table_size

__all__ = ["main", "APPLICATIONS"]


def _courses() -> DesignFramework:
    from repro.applications import courses

    return DesignFramework.from_sources(
        information=courses.courses_information(),
        algebraic=courses.courses_algebraic(),
        schema_source=courses.courses_schema_source(),
        carriers=courses.courses_information_carriers(),
        name="courses registrar (the paper's running example)",
    )


def _library() -> DesignFramework:
    from repro.applications.library import library_framework

    return library_framework()


def _projects() -> DesignFramework:
    from repro.applications.projects import projects_framework

    return projects_framework()


def _bank() -> DesignFramework:
    from repro.applications.bank import bank_framework

    return bank_framework()


#: The shipped application factories, keyed by CLI name.
APPLICATIONS: dict[str, Callable[[], DesignFramework]] = {
    "courses": _courses,
    "library": _library,
    "projects": _projects,
    "bank": _bank,
}


def _cmd_list(_args: argparse.Namespace) -> int:
    for name, factory in APPLICATIONS.items():
        framework = factory()
        print(f"{name:10s} {framework.name}")
    return 0


def _split_selection(values: list[str] | None) -> list[str] | None:
    """Flatten repeatable, comma-separable ``--only``/``--skip``
    values into one name list (``None`` when the flag is absent)."""
    if not values:
        return None
    names: list[str] = []
    for value in values:
        names.extend(
            part.strip() for part in value.split(",") if part.strip()
        )
    return names or None


def _cmd_verify(args: argparse.Namespace) -> int:
    names = (
        list(APPLICATIONS) if args.application == "all"
        else [args.application]
    )
    collect_stats = (
        args.stats
        or args.stats_json is not None
        or args.metrics_json is not None
    )
    want_trace = bool(
        args.trace or args.trace_jsonl or args.trace_summary
    )
    tracer = None
    if want_trace or args.metrics_json is not None:
        from repro.obs.tracer import Tracer

        tracer = Tracer()
    cache = None
    if args.cache_dir is not None:
        from pathlib import Path

        from repro.pipeline.cache import ResultCache

        # One cache for the whole invocation: fingerprints embed each
        # application's specs, so 'verify all' shares the directory
        # without collisions.
        cache = ResultCache(Path(args.cache_dir))
    only = _split_selection(args.only)
    skip = _split_selection(args.skip)
    selection_mode = bool(only or skip or args.fail_fast)
    include_stats = collect_stats or args.workers > 1
    failures = 0
    stats_bundles = []
    verified_stats = []
    for name in names:
        factory = APPLICATIONS.get(name)
        if factory is None:
            print(f"unknown application {name!r}; try 'list'",
                  file=sys.stderr)
            return 2
        framework = factory()
        started = time.perf_counter()
        if selection_mode:
            from contextlib import nullcontext

            from repro.errors import SpecificationError
            from repro.obs.tracer import activate

            activation = (
                activate(tracer) if tracer is not None else nullcontext()
            )
            try:
                with activation:
                    result = framework.verify_pipeline(
                        completeness_depth=args.depth,
                        congruence_depth=args.depth,
                        workers=args.workers,
                        cache=cache,
                        only=only,
                        skip=skip,
                        fail_fast=args.fail_fast,
                    )
            except SpecificationError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            elapsed = time.perf_counter() - started
            ok = result.ok
            verdict = "OK" if ok else "FAILED"
            print(f"[{verdict}] {framework.name}  ({elapsed:.1f}s)")
            if not args.quiet or not ok:
                print(result.summary())
                print()
            stats = (
                result.combined_stats() if include_stats else None
            )
        else:
            report = framework.verify(
                completeness_depth=args.depth,
                congruence_depth=args.depth,
                workers=args.workers,
                collect_stats=collect_stats,
                tracer=tracer,
                cache=cache,
            )
            elapsed = time.perf_counter() - started
            ok = report.ok
            verdict = "OK" if ok else "FAILED"
            print(f"[{verdict}] {framework.name}  ({elapsed:.1f}s)")
            if not args.quiet or not ok:
                print(report)
                print()
            stats = report.stats
        if stats is not None:
            if args.stats:
                for part in stats.parts:
                    print(f"  {part}")
                print(f"  {stats}")
                kernel = intern_stats()
                print(
                    f"  [kernel] intern_table={intern_table_size()} "
                    f"(vars={kernel['vars']} apps={kernel['apps']}) "
                    f"dispatch_hits={stats.dispatch_hits} "
                    f"interned_during_run={stats.interned_terms}"
                )
            stats_bundles.append(
                {"application": name, **stats.to_dict()}
            )
            verified_stats.append(stats)
        if not ok:
            failures += 1
    if args.stats_json is not None and stats_bundles:
        import json

        payload = (
            stats_bundles[0] if len(stats_bundles) == 1 else stats_bundles
        )
        if args.stats_json == "-":
            print(json.dumps(payload, indent=2))
        else:
            with open(args.stats_json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
    _write_observability(args, tracer, verified_stats)
    return 1 if failures else 0


def _write_observability(
    args: argparse.Namespace, tracer, verified_stats
) -> None:
    """Export the trace/metrics artifacts the verify flags requested."""
    if tracer is None:
        return
    from repro.obs.export import (
        format_tree,
        write_chrome_trace,
        write_jsonl,
    )
    from repro.obs.metrics import MetricsRegistry

    if args.trace is not None:
        write_chrome_trace(tracer, args.trace)
        print(f"trace written to {args.trace} "
              "(load in chrome://tracing or ui.perfetto.dev)")
    if args.trace_jsonl is not None:
        write_jsonl(tracer, args.trace_jsonl)
        print(f"flat span log written to {args.trace_jsonl}")
    if args.trace_summary:
        print(format_tree(tracer))
    if args.metrics_json is not None:
        registry = MetricsRegistry()
        for stats in verified_stats:
            registry.record_verification(stats)
        registry.merge_tracer(tracer)
        registry.record_kernel()
        if args.metrics_json == "-":
            print(registry.to_json())
        else:
            with open(
                args.metrics_json, "w", encoding="utf-8"
            ) as handle:
                handle.write(registry.to_json())
                handle.write("\n")


def _cmd_schema(args: argparse.Namespace) -> int:
    factory = APPLICATIONS.get(args.application)
    if factory is None:
        print(f"unknown application {args.application!r}",
              file=sys.stderr)
        return 2
    framework = factory()
    print(framework.schema_source or framework.schema)
    return 0


def _cmd_axioms(args: argparse.Namespace) -> int:
    factory = APPLICATIONS.get(args.application)
    if factory is None:
        print(f"unknown application {args.application!r}",
              file=sys.stderr)
        return 2
    print(factory().information)
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Three-level formal database specification "
            "(Casanova/Veloso/Furtado, PODS 1984) - verification CLI"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser(
        "list", help="list the shipped applications"
    ).set_defaults(handler=_cmd_list)

    verify = subparsers.add_parser(
        "verify", help="run every refinement check on an application"
    )
    verify.add_argument(
        "application",
        help=f"one of {', '.join(APPLICATIONS)} or 'all'",
    )
    verify.add_argument(
        "--depth", type=int, default=2,
        help="trace depth for completeness/congruence checks",
    )
    verify.add_argument(
        "--quiet", action="store_true",
        help="print only the verdict line unless a check fails",
    )
    verify.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help=(
            "fan the bounded sweeps out over N worker processes "
            "(default 1 = serial; reports are identical either way)"
        ),
    )
    verify.add_argument(
        "--stats", action="store_true",
        help="print per-check verification statistics",
    )
    verify.add_argument(
        "--stats-json", metavar="PATH", default=None,
        help=(
            "write the aggregated VerificationStats record as JSON to "
            "PATH ('-' for stdout)"
        ),
    )
    verify.add_argument(
        "--trace", metavar="FILE", default=None,
        help=(
            "record a span trace of the run and write it as a Chrome "
            "Trace Event JSON file (open in chrome://tracing or "
            "ui.perfetto.dev)"
        ),
    )
    verify.add_argument(
        "--trace-jsonl", metavar="FILE", default=None,
        help="write the span trace as a flat JSONL event log",
    )
    verify.add_argument(
        "--trace-summary", action="store_true",
        help="print the span tree with durations and counters",
    )
    verify.add_argument(
        "--metrics-json", metavar="PATH", default=None,
        help=(
            "write the aggregated metrics registry (named counters "
            "and gauges) as JSON to PATH ('-' for stdout)"
        ),
    )
    verify.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help=(
            "persist per-check results under DIR, keyed by content "
            "fingerprint; a re-verify replays unchanged checks from "
            "the cache and re-runs only what an edit invalidated "
            "(reports and stats are byte-identical, warm or cold)"
        ),
    )
    verify.add_argument(
        "--only", action="append", metavar="CHECK", default=None,
        help=(
            "run only these checks (repeatable, comma-separable); "
            "dependencies are pulled in automatically and the "
            "per-check outcome table replaces the full report"
        ),
    )
    verify.add_argument(
        "--skip", action="append", metavar="CHECK", default=None,
        help=(
            "skip these checks and everything depending on them "
            "(repeatable, comma-separable)"
        ),
    )
    verify.add_argument(
        "--fail-fast", action="store_true",
        help="stop at the first failing check",
    )
    verify.set_defaults(handler=_cmd_verify)

    schema = subparsers.add_parser(
        "schema", help="print an application's RPR schema"
    )
    schema.add_argument("application")
    schema.set_defaults(handler=_cmd_schema)

    axioms = subparsers.add_parser(
        "axioms", help="print an application's information-level theory"
    )
    axioms.add_argument("application")
    axioms.set_defaults(handler=_cmd_axioms)

    args = parser.parse_args(argv)
    return args.handler(args)

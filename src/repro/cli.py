"""Command-line interface: verify the shipped application designs.

Usage::

    python -m repro list
    python -m repro verify courses [--depth 2] [--quiet]
    python -m repro verify all --workers 4
    python -m repro verify courses --stats --stats-json stats.json
    python -m repro verify courses --trace trace.json   # Chrome trace
    python -m repro verify courses --trace-summary      # span tree
    python -m repro verify courses --metrics-json metrics.json
    python -m repro verify courses --cache-dir .repro-cache  # warm reruns
    python -m repro verify courses --only second-third   # one check (+deps)
    python -m repro verify courses --skip congruence --fail-fast
    python -m repro verify all --coverage coverage.json \
        --coverage-html coverage.html   # proof-coverage report
    python -m repro cache stats --cache-dir .repro-cache
    python -m repro cache prune --cache-dir .repro-cache [--all]
    python -m repro schema courses        # print the RPR schema
    python -m repro axioms courses        # print the level-1 theory
    python -m repro serve bank --port 7474 --data-dir /var/lib/repro
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.core.framework import DesignFramework
from repro.algebraic.exploration import delta_counters
from repro.logic.arena import arena_stats
from repro.logic.terms import intern_stats, intern_table_size

__all__ = ["main", "APPLICATIONS"]


def _courses() -> DesignFramework:
    from repro.applications import courses

    return DesignFramework.from_sources(
        information=courses.courses_information(),
        algebraic=courses.courses_algebraic(),
        schema_source=courses.courses_schema_source(),
        carriers=courses.courses_information_carriers(),
        name="courses registrar (the paper's running example)",
    )


def _library() -> DesignFramework:
    from repro.applications.library import library_framework

    return library_framework()


def _projects() -> DesignFramework:
    from repro.applications.projects import projects_framework

    return projects_framework()


def _bank() -> DesignFramework:
    from repro.applications.bank import bank_framework

    return bank_framework()


#: The shipped application factories, keyed by CLI name.
APPLICATIONS: dict[str, Callable[[], DesignFramework]] = {
    "courses": _courses,
    "library": _library,
    "projects": _projects,
    "bank": _bank,
}


def _cmd_list(_args: argparse.Namespace) -> int:
    for name, factory in APPLICATIONS.items():
        framework = factory()
        print(f"{name:10s} {framework.name}")
    return 0


def _ensure_parent(path: str) -> None:
    """Create the parent directories of an output path."""
    from pathlib import Path

    parent = Path(path).parent
    if str(parent) not in ("", "."):
        parent.mkdir(parents=True, exist_ok=True)


def _write_text_output(path: str, text: str, label: str) -> bool:
    """Write an artifact to ``path`` (``'-'`` = stdout), creating
    missing parent directories; on an unwritable path print a clear
    error instead of a traceback and return False."""
    if not text.endswith("\n"):
        text += "\n"
    if path == "-":
        sys.stdout.write(text)
        return True
    try:
        _ensure_parent(path)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    except OSError as exc:
        print(
            f"error: cannot write {label} to {path!r}: {exc}",
            file=sys.stderr,
        )
        return False
    return True


def _split_selection(values: list[str] | None) -> list[str] | None:
    """Flatten repeatable, comma-separable ``--only``/``--skip``
    values into one name list (``None`` when the flag is absent)."""
    if not values:
        return None
    names: list[str] = []
    for value in values:
        names.extend(
            part.strip() for part in value.split(",") if part.strip()
        )
    return names or None


def _classic_results(report) -> dict:
    """The per-check report map of a classic :class:`FrameworkReport`
    (the shape :func:`repro.obs.provenance.render_failures` reads)."""
    first = report.first_second
    return {
        "completeness": first.completeness,
        "static": first.static,
        "inclusion": first.inclusion,
        "transitions": first.transitions,
        "induction": report.induction,
        "congruence": report.congruence,
        "grammar": report.grammar_ok,
        "second-third": report.second_third,
        "agreement": report.agreement,
    }


def _print_failure_traces(framework, results, graph=None) -> None:
    """Print the minimal violating traces of every failing check."""
    from repro.obs.provenance import render_failures

    provider = (lambda: graph) if graph is not None else None
    text = render_failures(
        results, algebra=framework.algebra(), graph_provider=provider
    )
    if text:
        print(text)
        print()


def _coverage_document_of(
    args: argparse.Namespace, name, framework, recorder, result
) -> dict:
    """Assemble one application's coverage document, provenance
    records included."""
    from repro.obs.coverage import coverage_document
    from repro.obs.provenance import pipeline_provenance
    from repro.pipeline.nodes import build_framework_graph
    from repro.wgrammar.rpr_grammar import rpr_wgrammar

    graph = build_framework_graph(
        completeness_depth=args.depth,
        congruence_depth=args.depth,
        workers=args.workers,
    )
    labels = [
        rule.label or f"rule-{index}"
        for index, rule in enumerate(rpr_wgrammar().hyperrules)
    ]
    checks = pipeline_provenance(
        framework, result, graph, algebra=framework.algebra()
    )
    return coverage_document(
        recorder,
        framework.algebraic,
        application=name,
        params={
            "completeness_depth": args.depth,
            "congruence_depth": args.depth,
            "max_states": 100_000,
            "grammar_budget": 2_000_000,
        },
        grammar_labels=labels,
        checks=checks,
    )


def _resolve_backend_args(
    args: argparse.Namespace,
) -> tuple[str | None, list[str] | None] | None:
    """Validate ``--backend``/``--workers-addr`` into the
    ``(backend, worker_addresses)`` pair :meth:`verify` takes.
    Returns ``None`` (after printing the error) on a bad combination."""
    addresses = args.workers_addr or None
    backend = args.backend
    if addresses and backend is None:
        backend = "socket"
    if backend == "socket" and not addresses:
        print(
            "error: --backend socket needs at least one "
            "--workers-addr HOST:PORT",
            file=sys.stderr,
        )
        return None
    if backend != "socket" and addresses:
        print(
            f"error: --workers-addr only applies to the socket "
            f"backend, not {backend!r}",
            file=sys.stderr,
        )
        return None
    return backend, addresses


def _cmd_verify(args: argparse.Namespace) -> int:
    """The ``repro verify`` subcommand, with optional scoped live
    telemetry (``--telemetry-json``) around the verification run."""
    if args.telemetry_json is None:
        return _run_verify(args)
    import json

    from repro.obs.telemetry import activate_telemetry

    with activate_telemetry() as telemetry:
        code = _run_verify(args)
        payload = json.dumps(
            telemetry.snapshot(), indent=2, sort_keys=True
        )
    if not _write_text_output(
        args.telemetry_json, payload, "telemetry JSON"
    ):
        return 2
    return code


def _run_verify(args: argparse.Namespace) -> int:
    names = (
        list(APPLICATIONS) if args.application == "all"
        else [args.application]
    )
    backend_args = _resolve_backend_args(args)
    if backend_args is None:
        return 2
    backend, worker_addresses = backend_args
    collect_stats = (
        args.stats
        or args.stats_json is not None
        or args.metrics_json is not None
    )
    want_trace = bool(
        args.trace or args.trace_jsonl or args.trace_summary
    )
    want_coverage = (
        args.coverage is not None or args.coverage_html is not None
    )
    tracer = None
    if want_trace or args.metrics_json is not None:
        from repro.obs.tracer import Tracer

        tracer = Tracer()
    cache = None
    if args.cache_dir is not None:
        from pathlib import Path

        from repro.pipeline.cache import ResultCache

        # One cache for the whole invocation: fingerprints embed each
        # application's specs, so 'verify all' shares the directory
        # without collisions.
        cache = ResultCache(Path(args.cache_dir))
    only = _split_selection(args.only)
    skip = _split_selection(args.skip)
    selection_mode = bool(only or skip or args.fail_fast)
    include_stats = collect_stats or args.workers > 1
    failures = 0
    stats_bundles = []
    verified_stats = []
    coverage_documents = []
    for name in names:
        factory = APPLICATIONS.get(name)
        if factory is None:
            print(f"unknown application {name!r}; try 'list'",
                  file=sys.stderr)
            return 2
        framework = factory()
        started = time.perf_counter()
        if selection_mode or want_coverage:
            from contextlib import nullcontext

            from repro.errors import SpecificationError
            from repro.obs.tracer import activate
            from repro.parallel.backends import ExecutorBackendError

            activation = (
                activate(tracer) if tracer is not None else nullcontext()
            )
            recorder = None
            cov_scope = nullcontext()
            if want_coverage:
                from repro.obs.coverage import (
                    CoverageRecorder,
                    activate_coverage,
                )

                # One recorder per application: documents never mix
                # coverage across specs.
                recorder = CoverageRecorder()
                cov_scope = activate_coverage(recorder)
            try:
                with activation, cov_scope:
                    result = framework.verify_pipeline(
                        completeness_depth=args.depth,
                        congruence_depth=args.depth,
                        workers=args.workers,
                        cache=cache,
                        only=only,
                        skip=skip,
                        fail_fast=args.fail_fast,
                        backend=backend,
                        worker_addresses=worker_addresses,
                    )
            except (SpecificationError, ExecutorBackendError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            elapsed = time.perf_counter() - started
            ok = result.ok
            verdict = "OK" if ok else "FAILED"
            print(f"[{verdict}] {framework.name}  ({elapsed:.1f}s)")
            if selection_mode:
                if not args.quiet or not ok:
                    print(result.summary())
                    print()
            else:
                report = framework.report_of(
                    result, include_stats=include_stats
                )
                if not args.quiet or not ok:
                    print(report)
                    print()
            if not ok:
                _print_failure_traces(
                    framework,
                    {
                        check: result.result_of(check)
                        for check in result.selection
                    },
                    graph=result.result_of("explore"),
                )
            stats = (
                result.combined_stats() if include_stats else None
            )
            if want_coverage:
                coverage_documents.append(
                    _coverage_document_of(
                        args, name, framework, recorder, result
                    )
                )
        else:
            from repro.parallel.backends import ExecutorBackendError

            try:
                report = framework.verify(
                    completeness_depth=args.depth,
                    congruence_depth=args.depth,
                    workers=args.workers,
                    collect_stats=collect_stats,
                    tracer=tracer,
                    cache=cache,
                    backend=backend,
                    worker_addresses=worker_addresses,
                )
            except ExecutorBackendError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            elapsed = time.perf_counter() - started
            ok = report.ok
            verdict = "OK" if ok else "FAILED"
            print(f"[{verdict}] {framework.name}  ({elapsed:.1f}s)")
            if not args.quiet or not ok:
                print(report)
                print()
            if not ok:
                _print_failure_traces(
                    framework, _classic_results(report)
                )
            stats = report.stats
        if stats is not None:
            if args.stats:
                for part in stats.parts:
                    print(f"  {part}")
                print(f"  {stats}")
                kernel = intern_stats()
                arena = arena_stats()
                delta = delta_counters()
                print(
                    f"  [kernel] intern_table={intern_table_size()} "
                    f"(vars={kernel['vars']} apps={kernel['apps']}) "
                    f"dispatch_hits={stats.dispatch_hits} "
                    f"interned_during_run={stats.interned_terms} "
                    f"arena_terms={arena['terms']} "
                    f"arena_bytes={arena['bytes']} "
                    f"delta_reexplored_states="
                    f"{delta['reexplored_states']}"
                )
            stats_bundles.append(
                {"application": name, **stats.to_dict()}
            )
            verified_stats.append(stats)
        if not ok:
            failures += 1
    if args.stats_json is not None and stats_bundles:
        import json

        payload = (
            stats_bundles[0] if len(stats_bundles) == 1 else stats_bundles
        )
        if not _write_text_output(
            args.stats_json, json.dumps(payload, indent=2), "stats JSON"
        ):
            return 2
    if not _write_observability(args, tracer, verified_stats):
        return 2
    if want_coverage and coverage_documents:
        from repro.obs.coverage import coverage_json

        payload = (
            coverage_documents[0]
            if len(coverage_documents) == 1
            else coverage_documents
        )
        if args.coverage is not None:
            if not _write_text_output(
                args.coverage, coverage_json(payload), "coverage JSON"
            ):
                return 2
            if args.coverage != "-":
                print(f"coverage written to {args.coverage}")
        if args.coverage_html is not None:
            from repro.obs.report_html import coverage_html

            if not _write_text_output(
                args.coverage_html,
                coverage_html(payload),
                "coverage HTML",
            ):
                return 2
            if args.coverage_html != "-":
                print(
                    f"coverage report written to {args.coverage_html}"
                )
    return 1 if failures else 0


def _write_observability(
    args: argparse.Namespace, tracer, verified_stats
) -> bool:
    """Export the trace/metrics artifacts the verify flags requested.

    Returns False when an output path was unwritable (the error is
    printed here; the caller turns it into exit code 2).
    """
    if tracer is None:
        return True
    import json

    from repro.obs.export import (
        format_tree,
        iter_flat_events,
        to_chrome_json,
    )
    from repro.obs.metrics import MetricsRegistry

    if args.trace is not None:
        # Pin chunk spans to stable virtual-worker tid rows: chunk
        # spans carry the chunk index, so without the worker count
        # the socket backend's rows would grow with the chunk count.
        text = json.dumps(
            to_chrome_json(tracer, workers=args.workers)
        )
        if not _write_text_output(args.trace, text, "Chrome trace"):
            return False
        if args.trace != "-":
            print(f"trace written to {args.trace} "
                  "(load in chrome://tracing or ui.perfetto.dev)")
    if args.trace_jsonl is not None:
        text = "\n".join(
            json.dumps(event) for event in iter_flat_events(tracer)
        )
        if not _write_text_output(
            args.trace_jsonl, text, "span log"
        ):
            return False
        if args.trace_jsonl != "-":
            print(f"flat span log written to {args.trace_jsonl}")
    if args.trace_summary:
        print(format_tree(tracer))
    if args.metrics_json is not None:
        registry = MetricsRegistry()
        for stats in verified_stats:
            registry.record_verification(stats)
        registry.merge_tracer(tracer)
        registry.record_kernel()
        if not _write_text_output(
            args.metrics_json, registry.to_json(), "metrics JSON"
        ):
            return False
    return True


def _cmd_cache(args: argparse.Namespace) -> int:
    """The ``repro cache`` maintenance subcommand."""
    from pathlib import Path

    from repro.pipeline.cache import ResultCache

    cache = ResultCache(Path(args.cache_dir))
    if args.cache_command == "stats":
        summary = cache.summary()
        if args.json:
            import json

            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(f"cache directory : {summary['path']}")
            print(
                f"entries         : {summary['entries']} "
                f"({summary['total_bytes']} bytes)"
            )
            print(f"current format  : {summary['format']}")
            print(f"stale entries   : {summary['stale']}")
            print(f"with coverage   : {summary['with_coverage']}")
            for node, count in summary["by_node"].items():
                print(f"  {node:12s} {count}")
        return 0
    removed = cache.prune(everything=args.all)
    scope = "all" if args.all else "stale"
    noun = "entry" if removed == 1 else "entries"
    print(f"pruned {removed} {scope} cache {noun}")
    return 0


def _cmd_schema(args: argparse.Namespace) -> int:
    factory = APPLICATIONS.get(args.application)
    if factory is None:
        print(f"unknown application {args.application!r}",
              file=sys.stderr)
        return 2
    framework = factory()
    print(framework.schema_source or framework.schema)
    return 0


def _cmd_axioms(args: argparse.Namespace) -> int:
    factory = APPLICATIONS.get(args.application)
    if factory is None:
        print(f"unknown application {args.application!r}",
              file=sys.stderr)
        return 2
    print(factory().information)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """The ``repro serve`` subcommand: run the serving runtime."""
    from repro.errors import ServingError
    from repro.runtime.apps import available_applications, make_runtime
    from repro.runtime.server import serve

    if args.application not in available_applications():
        print(f"unknown application {args.application!r}; try 'list'",
              file=sys.stderr)
        return 2
    try:
        runtime = make_runtime(
            args.application,
            data_dir=args.data_dir,
            fsync_batch=args.fsync_batch,
            fsync=not args.no_fsync,
            compact_every=args.compact_every,
        )
    except ServingError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def _ready(server) -> None:
        # The flushed ready line lets harnesses (the CI serve smoke)
        # learn the chosen port without racing the bind.
        print(
            f"serving {args.application} on "
            f"{server.host}:{server.port}",
            flush=True,
        )
        if args.port_file is not None:
            _write_text_output(
                args.port_file, str(server.port), "port file"
            )

    # Serving always runs with live telemetry: the overhead is gated
    # at <= 5% by benchmarks/check_obs_overhead.py, and the
    # 'telemetry' op plus 'repro top' depend on it being there.
    from repro.obs.telemetry import activate_telemetry

    with activate_telemetry() as telemetry:
        code = serve(
            runtime,
            host=args.host,
            port=args.port,
            allow_shutdown=args.allow_shutdown,
            ready=_ready,
        )
        if args.telemetry_json is not None:
            import json

            if not _write_text_output(
                args.telemetry_json,
                json.dumps(
                    telemetry.snapshot(), indent=2, sort_keys=True
                ),
                "telemetry JSON",
            ):
                return 2
    return code


def _cmd_worker(args: argparse.Namespace) -> int:
    """The ``repro worker`` subcommand: serve chunk execution to
    ``verify --backend socket`` clients."""
    from repro.parallel.worker import WorkerServer

    server = WorkerServer(
        host=args.host,
        port=args.port,
        allow_shutdown=args.allow_shutdown,
    )
    # The flushed ready line lets harnesses learn the chosen port
    # without racing the bind (mirrors 'repro serve').
    print(f"worker listening on {server.host}:{server.port}", flush=True)
    if args.port_file is not None:
        if not _write_text_output(
            args.port_file, str(server.port), "port file"
        ):
            return 2
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    if args.telemetry_json is not None:
        import json

        if not _write_text_output(
            args.telemetry_json,
            json.dumps(
                server.telemetry.snapshot(), indent=2, sort_keys=True
            ),
            "telemetry JSON",
        ):
            return 2
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    """The ``repro watch`` subcommand: incremental re-verification."""
    from repro.errors import SpecificationError
    from repro.pipeline.watch import watch

    try:
        return watch(
            args.target,
            cache_dir=args.cache_dir,
            depth=args.depth,
            workers=args.workers,
            interval=args.interval,
            max_cycles=args.max_cycles,
            timeout=args.timeout,
            once=args.once,
        )
    except SpecificationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_top(args: argparse.Namespace) -> int:
    """The ``repro top`` subcommand: live telemetry of a serving
    process (runtime server or worker)."""
    from repro.errors import ServingError
    from repro.obs.top import top

    try:
        return top(
            args.address,
            worker=args.worker,
            interval=args.interval,
            once=args.once,
            as_json=args.json,
            events=args.events,
        )
    except ServingError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_compile_sql(args: argparse.Namespace) -> int:
    """The ``repro compile-sql`` subcommand: emit the relational
    realization (DDL, initial state, stored guard tables, transaction
    programs) of one application as portable SQL text."""
    from repro.errors import RelationalError
    from repro.relational import build_database
    from repro.runtime.apps import available_applications

    if args.application not in available_applications():
        print(f"unknown application {args.application!r}; try 'list'",
              file=sys.stderr)
        return 2
    try:
        database = build_database(
            args.application, with_guard=not args.no_guards
        )
        try:
            script = database.compile_sql_script(
                include_programs=not args.schema_only
            )
        finally:
            database.close()
    except RelationalError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.output is None or args.output == "-":
        print(script, end="")
        return 0
    return 0 if _write_text_output(
        args.output, script, "SQL script"
    ) else 2


def _cmd_diff_oracle(args: argparse.Namespace) -> int:
    """The ``repro diff-oracle`` subcommand: replay a seeded random
    trace through the rewrite semantics and the SQL backend and
    require identical query answers at every step."""
    import json

    from repro.errors import RelationalError
    from repro.relational import run_oracle
    from repro.runtime.apps import available_applications

    known = available_applications()
    names = (
        list(known) if args.application == "all"
        else [args.application]
    )
    for name in names:
        if name not in known:
            print(f"unknown application {name!r}; try 'list'",
                  file=sys.stderr)
            return 2
    failed = False
    for name in names:
        try:
            report = run_oracle(
                name, steps=args.steps, seed=args.seed
            )
        except RelationalError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(report.to_dict()))
        else:
            verdict = "PASS" if report.passed else "FAIL"
            print(
                f"{name}: {verdict} ({report.steps} steps, "
                f"{report.applied} applied, {report.noops} no-ops, "
                f"backend {report.backend})"
            )
            for divergence in report.divergences:
                print(f"  {divergence}")
        failed = failed or not report.passed
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Three-level formal database specification "
            "(Casanova/Veloso/Furtado, PODS 1984) - verification CLI"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser(
        "list", help="list the shipped applications"
    ).set_defaults(handler=_cmd_list)

    verify = subparsers.add_parser(
        "verify", help="run every refinement check on an application"
    )
    verify.add_argument(
        "application",
        help=f"one of {', '.join(APPLICATIONS)} or 'all'",
    )
    verify.add_argument(
        "--depth", type=int, default=2,
        help="trace depth for completeness/congruence checks",
    )
    verify.add_argument(
        "--quiet", action="store_true",
        help="print only the verdict line unless a check fails",
    )
    verify.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help=(
            "fan the bounded sweeps out over N worker processes "
            "(default 1 = serial; reports are identical either way)"
        ),
    )
    verify.add_argument(
        "--backend", choices=["inline", "fork", "socket"],
        default=None, metavar="NAME",
        help=(
            "where the fanned-out chunks execute: 'inline' "
            "(in-process), 'fork' (forked worker processes, the "
            "default), or 'socket' (running 'repro worker' "
            "processes; needs --workers-addr).  Reports are "
            "identical on every backend"
        ),
    )
    verify.add_argument(
        "--workers-addr", action="append", metavar="HOST:PORT",
        default=None,
        help=(
            "address of a running 'repro worker' process "
            "(repeatable; implies --backend socket)"
        ),
    )
    verify.add_argument(
        "--stats", action="store_true",
        help="print per-check verification statistics",
    )
    verify.add_argument(
        "--stats-json", metavar="PATH", default=None,
        help=(
            "write the aggregated VerificationStats record as JSON to "
            "PATH ('-' for stdout)"
        ),
    )
    verify.add_argument(
        "--trace", metavar="FILE", default=None,
        help=(
            "record a span trace of the run and write it as a Chrome "
            "Trace Event JSON file (open in chrome://tracing or "
            "ui.perfetto.dev)"
        ),
    )
    verify.add_argument(
        "--trace-jsonl", metavar="FILE", default=None,
        help="write the span trace as a flat JSONL event log",
    )
    verify.add_argument(
        "--trace-summary", action="store_true",
        help="print the span tree with durations and counters",
    )
    verify.add_argument(
        "--metrics-json", metavar="PATH", default=None,
        help=(
            "write the aggregated metrics registry (named counters "
            "and gauges) as JSON to PATH ('-' for stdout)"
        ),
    )
    verify.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help=(
            "persist per-check results under DIR, keyed by content "
            "fingerprint; a re-verify replays unchanged checks from "
            "the cache and re-runs only what an edit invalidated "
            "(reports and stats are byte-identical, warm or cold)"
        ),
    )
    verify.add_argument(
        "--only", action="append", metavar="CHECK", default=None,
        help=(
            "run only these checks (repeatable, comma-separable); "
            "dependencies are pulled in automatically and the "
            "per-check outcome table replaces the full report"
        ),
    )
    verify.add_argument(
        "--skip", action="append", metavar="CHECK", default=None,
        help=(
            "skip these checks and everything depending on them "
            "(repeatable, comma-separable)"
        ),
    )
    verify.add_argument(
        "--fail-fast", action="store_true",
        help="stop at the first failing check",
    )
    verify.add_argument(
        "--coverage", metavar="PATH", default=None,
        help=(
            "record proof coverage (equation dispatch cells, "
            "state-graph census, W-grammar usage, per-check "
            "provenance) and write the machine-readable document to "
            "PATH ('-' for stdout); output is byte-identical for "
            "every worker count, cold or warm cache"
        ),
    )
    verify.add_argument(
        "--coverage-html", metavar="PATH", default=None,
        help=(
            "write the self-contained HTML coverage report to PATH"
        ),
    )
    verify.add_argument(
        "--telemetry-json", metavar="PATH", default=None,
        help=(
            "run with live telemetry enabled and write the final "
            "snapshot (latency histograms, rate counters, recent "
            "events) as JSON to PATH ('-' for stdout)"
        ),
    )
    verify.set_defaults(handler=_cmd_verify)

    cache_parser = subparsers.add_parser(
        "cache",
        help="inspect or prune a verification result cache directory",
    )
    cache_sub = cache_parser.add_subparsers(
        dest="cache_command", required=True
    )
    cache_stats = cache_sub.add_parser(
        "stats", help="summarize the entries under a cache directory"
    )
    cache_stats.add_argument(
        "--cache-dir", required=True, metavar="DIR",
        help="the cache directory to inspect",
    )
    cache_stats.add_argument(
        "--json", action="store_true",
        help="emit the summary as JSON",
    )
    cache_stats.set_defaults(handler=_cmd_cache)
    cache_prune = cache_sub.add_parser(
        "prune",
        help=(
            "delete stale cache entries (unreadable or older-format "
            "files); --all deletes every entry"
        ),
    )
    cache_prune.add_argument(
        "--cache-dir", required=True, metavar="DIR",
        help="the cache directory to prune",
    )
    cache_prune.add_argument(
        "--all", action="store_true",
        help="delete every entry, not only stale ones",
    )
    cache_prune.set_defaults(handler=_cmd_cache)

    schema = subparsers.add_parser(
        "schema", help="print an application's RPR schema"
    )
    schema.add_argument("application")
    schema.set_defaults(handler=_cmd_schema)

    axioms = subparsers.add_parser(
        "axioms", help="print an application's information-level theory"
    )
    axioms.add_argument("application")
    axioms.set_defaults(handler=_cmd_axioms)

    serve = subparsers.add_parser(
        "serve",
        help=(
            "serve a verified application over the JSON-lines "
            "runtime protocol"
        ),
    )
    serve.add_argument(
        "application",
        help=f"one of {', '.join(APPLICATIONS)}",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=0,
        help="bind port (default 0 = pick a free port)",
    )
    serve.add_argument(
        "--data-dir", metavar="DIR", default=None,
        help=(
            "journal directory for durability and crash recovery "
            "(default: in-memory only)"
        ),
    )
    serve.add_argument(
        "--fsync-batch", type=int, default=64, metavar="N",
        help="group-commit: fsync the journal every N appends",
    )
    serve.add_argument(
        "--no-fsync", action="store_true",
        help="never fsync the journal (benchmarks and tests only)",
    )
    serve.add_argument(
        "--compact-every", type=int, default=None, metavar="N",
        help="auto-compact the journal every N accepted updates",
    )
    serve.add_argument(
        "--allow-shutdown", action="store_true",
        help=(
            "honor the 'shutdown' protocol operation (CI smoke runs; "
            "otherwise stop with SIGINT/SIGTERM)"
        ),
    )
    serve.add_argument(
        "--port-file", metavar="PATH", default=None,
        help="also write the chosen port to PATH once bound",
    )
    serve.add_argument(
        "--telemetry-json", metavar="PATH", default=None,
        help=(
            "write the final telemetry snapshot as JSON to PATH on "
            "shutdown (telemetry is always live while serving; "
            "query it with the 'telemetry' op or 'repro top')"
        ),
    )
    serve.set_defaults(handler=_cmd_serve)

    worker = subparsers.add_parser(
        "worker",
        help=(
            "serve chunk execution over TCP for 'verify --backend "
            "socket' (trusted networks only: chunk payloads are "
            "pickled)"
        ),
    )
    worker.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    worker.add_argument(
        "--port", type=int, default=0,
        help="bind port (default 0 = pick a free port)",
    )
    worker.add_argument(
        "--allow-shutdown", action="store_true",
        help=(
            "honor the 'shutdown' protocol operation (CI smoke runs; "
            "otherwise stop with SIGINT/SIGTERM)"
        ),
    )
    worker.add_argument(
        "--port-file", metavar="PATH", default=None,
        help="also write the chosen port to PATH once bound",
    )
    worker.add_argument(
        "--telemetry-json", metavar="PATH", default=None,
        help=(
            "write the worker's final telemetry snapshot as JSON to "
            "PATH on shutdown (also queryable live via the "
            "'telemetry' op or 'repro top --worker')"
        ),
    )
    worker.set_defaults(handler=_cmd_worker)

    watch = subparsers.add_parser(
        "watch",
        help=(
            "watch a specification for edits and re-verify "
            "incrementally: only the checks an edit invalidated "
            "re-run; the rest replay from the cache"
        ),
    )
    watch.add_argument(
        "target",
        help=(
            f"one of {', '.join(APPLICATIONS)}, or FILE.py:FACTORY "
            "naming a zero-argument DesignFramework factory in an "
            "arbitrary spec file"
        ),
    )
    watch.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help=(
            "result-cache directory (default: a private temporary "
            "directory for the watch session)"
        ),
    )
    watch.add_argument(
        "--depth", type=int, default=2,
        help="trace depth for completeness/congruence checks",
    )
    watch.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for the fanned-out sweeps",
    )
    watch.add_argument(
        "--interval", type=float, default=0.5, metavar="SECONDS",
        help="poll the watched files every SECONDS (default 0.5)",
    )
    watch.add_argument(
        "--max-cycles", type=int, default=None, metavar="N",
        help=(
            "exit after N verification cycles (harness use; "
            "default: watch until interrupted)"
        ),
    )
    watch.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="exit after SECONDS even if idle (harness use)",
    )
    watch.add_argument(
        "--once", action="store_true",
        help="verify once and exit (equivalent to --max-cycles 1)",
    )
    watch.set_defaults(handler=_cmd_watch)

    top = subparsers.add_parser(
        "top",
        help=(
            "live telemetry view of a running 'repro serve' or "
            "'repro worker' process: rates, latency percentiles, "
            "guard rejection breakdown, recent slow ops"
        ),
    )
    top.add_argument(
        "address", metavar="HOST:PORT",
        help="address of the serving process to poll",
    )
    top.add_argument(
        "--worker", action="store_true",
        help=(
            "poll a 'repro worker' (frame protocol) instead of a "
            "runtime server (JSON lines)"
        ),
    )
    top.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="refresh every SECONDS (default 2.0)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="render a single screen and exit",
    )
    top.add_argument(
        "--json", action="store_true",
        help=(
            "with --once, print the raw telemetry snapshot document "
            "instead of the rendered screen (scripting and CI)"
        ),
    )
    top.add_argument(
        "--events", type=int, default=32, metavar="N",
        help="recent events to request per poll (default 32)",
    )
    top.set_defaults(handler=_cmd_top)

    compile_sql = subparsers.add_parser(
        "compile-sql",
        help=(
            "compile an application's specification to its "
            "relational realization (schema DDL + transaction "
            "programs) as portable SQL text"
        ),
    )
    compile_sql.add_argument(
        "application",
        help=f"one of {', '.join(APPLICATIONS)}",
    )
    compile_sql.add_argument(
        "--output", metavar="PATH", default=None,
        help="write the SQL script to PATH ('-' = stdout, default)",
    )
    compile_sql.add_argument(
        "--schema-only", action="store_true",
        help=(
            "emit only the schema and initial state, not the "
            "per-instance transaction programs"
        ),
    )
    compile_sql.add_argument(
        "--no-guards", action="store_true",
        help=(
            "skip the stored admission decision tables and their "
            "audit queries"
        ),
    )
    compile_sql.set_defaults(handler=_cmd_compile_sql)

    diff_oracle = subparsers.add_parser(
        "diff-oracle",
        help=(
            "replay a random trace through the rewrite semantics "
            "and the SQLite backend, requiring identical query "
            "answers at every step"
        ),
    )
    diff_oracle.add_argument(
        "application",
        help=f"one of {', '.join(APPLICATIONS)} or 'all'",
    )
    diff_oracle.add_argument(
        "--steps", type=int, default=60, metavar="N",
        help="trace length per application (default 60)",
    )
    diff_oracle.add_argument(
        "--seed", type=int, default=0,
        help="random seed for the trace generator",
    )
    diff_oracle.add_argument(
        "--json", action="store_true",
        help="emit one JSON report line per application",
    )
    diff_oracle.set_defaults(handler=_cmd_diff_oracle)

    args = parser.parse_args(argv)
    return args.handler(args)

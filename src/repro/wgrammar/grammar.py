"""Two-level (van Wijngaarden) grammars.

Paper, Section 5.1.1: "The formal definition of the syntax of data
base schemas is given (...) using W-grammars.  W-grammars (...) go
beyond BNF in that they can express context-sensitive restrictions
(e.g., that all relational program variables in the OPL part of a
schema have been declared in the SCL part)."

A W-grammar has two levels:

* **Metarules** define, for each *metanotion* (conventionally written
  in upper case), a context-free language of *protonotions* (sequences
  of marks).  This implementation also admits *lexical* metanotions
  whose language is given by a regular expression over single marks —
  a pragmatic shortcut for identifier-shaped metanotions that avoids
  spelling names out letter by letter (uniform replacement and
  consistent substitution are unaffected).

* **Hyperrules** are production schemata over *hypernotions* (mixed
  sequences of marks and metanotion references).  *Uniform
  replacement* — substituting each metanotion consistently throughout
  a hyperrule by one value of its language — yields an ordinary
  production; the (generally infinite) set of all such productions is
  the grammar the W-grammar denotes.

Recognition is implemented as a memoized top-down search over ground
*notions*: a nonterminal occurrence must instantiate to a ground
notion by the time it is expanded (metanotions become bound by
matching the rule's left-hand side and by *binding terminals*, which
bind a metanotion to the input mark they consume).  Hyperrules with an
empty right-hand side act as *predicates*: they consume no input and
succeed iff their left-hand side matches — the classical W-grammar
device for context conditions such as ``where NAME in DECLS``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.errors import WGrammarError
from repro.obs.coverage import COV_STATE as _COV
from repro.obs.tracer import OBS_STATE as _OBS

__all__ = [
    "Mark",
    "MetaRef",
    "Terminal",
    "Call",
    "Hyperrule",
    "LexicalMeta",
    "RuleMeta",
    "WGrammar",
]

#: A ground notion: a sequence of marks (atomic strings).
Notion = tuple[str, ...]


@dataclass(frozen=True)
class Mark:
    """A literal mark inside a hypernotion or metarule alternative."""

    text: str

    def __str__(self) -> str:
        return self.text


@dataclass(frozen=True)
class MetaRef:
    """A reference to a metanotion inside a hypernotion."""

    name: str

    def __str__(self) -> str:
        return self.name


#: One symbol of a pattern: a literal mark or a metanotion reference.
Sym = Mark | MetaRef

#: A hypernotion: a sequence of pattern symbols.
Hypernotion = tuple[Sym, ...]


@dataclass(frozen=True)
class Terminal:
    """A right-hand-side item that consumes one input mark.

    If ``sym`` is a :class:`Mark` the input mark must equal it; if it
    is a :class:`MetaRef` the input mark must belong to the
    metanotion's language and is bound to it (a *binding terminal* —
    how identifier names flow from the input into metanotions).
    """

    sym: Sym


@dataclass(frozen=True)
class Call:
    """A right-hand-side item that derives a nested notion.

    The hypernotion must be ground after substituting the bindings
    accumulated so far (left-to-right).
    """

    hypernotion: Hypernotion


RHSItem = Terminal | Call


@dataclass(frozen=True)
class Hyperrule:
    """One hyperrule ``lhs : rhs .`` of the grammar.

    An empty ``rhs`` makes the rule a predicate (derives the empty
    terminal string).

    Attributes:
        distinct: pairs of metanotion names whose bound values must
            *differ* for the rule to apply — a side condition in the
            style of affix grammars.  (Pure W-grammars express
            inequality by spelling values out mark-by-mark; this
            device keeps the engine's lexical-metanotion shortcut
            consistent, e.g. for the uniqueness half of declaration
            checking.)
    """

    lhs: Hypernotion
    rhs: tuple[RHSItem, ...]
    label: str = ""
    distinct: tuple[tuple[str, str], ...] = ()

    def bindings_admissible(self, bindings: Mapping[str, "Notion"]) -> bool:
        """True iff the side conditions hold under ``bindings``."""
        return all(
            bindings.get(left) != bindings.get(right)
            for left, right in self.distinct
        )

    def __str__(self) -> str:
        lhs = " ".join(str(s) for s in self.lhs)
        parts = []
        for item in self.rhs:
            if isinstance(item, Terminal):
                parts.append(f"'{item.sym}'")
            else:
                parts.append(
                    " ".join(str(s) for s in item.hypernotion)
                )
        return f"{lhs} : {', '.join(parts) or 'EMPTY'} ."


@dataclass(frozen=True)
class LexicalMeta:
    """A metanotion whose values are single marks matching a regex."""

    pattern: str

    def matches_mark(self, mark: str) -> bool:
        """True iff the single mark belongs to the language."""
        return re.fullmatch(self.pattern, mark) is not None


@dataclass(frozen=True)
class RuleMeta:
    """A metanotion defined by context-free metarules.

    Attributes:
        alternatives: each alternative is a sequence of
            :class:`Mark`/:class:`MetaRef` symbols; the empty
            alternative is the empty tuple.
        enumeration: optional explicit candidate values.  A metanotion
            with a non-empty enumeration may appear *unbound* in a
            right-hand-side call: the engine searches over these
            values (bounded nondeterminism — how the RPR grammar
            guesses a declaration's arity before checking it).
    """

    alternatives: tuple[tuple[Sym, ...], ...]
    enumeration: tuple[Notion, ...] = ()


MetaDef = LexicalMeta | RuleMeta


class WGrammar:
    """A W-grammar: metanotion definitions, hyperrules, start notion.

    Args:
        metanotions: definition per metanotion name.
        hyperrules: the hyperrules.
        start: the ground start notion.

    Raises:
        WGrammarError: if a hyperrule references an undefined
            metanotion, or a :class:`Call`'s metanotions cannot all be
            bound by the rule's lhs and earlier binding terminals.
    """

    def __init__(
        self,
        metanotions: Mapping[str, MetaDef],
        hyperrules: list[Hyperrule],
        start: Notion,
    ):
        self.metanotions = dict(metanotions)
        self.hyperrules = list(hyperrules)
        self.start = tuple(start)
        self._check_wellformed()
        self._membership_cache: dict[tuple[str, Notion], bool] = {}

    def _check_wellformed(self) -> None:
        for rule in self.hyperrules:
            bound = {
                sym.name for sym in rule.lhs if isinstance(sym, MetaRef)
            }
            for left, right in rule.distinct:
                if left not in bound or right not in bound:
                    raise WGrammarError(
                        f"rule {rule.label or rule}: 'distinct' side "
                        "conditions may only name metanotions bound by "
                        "the lhs"
                    )
            for sym in rule.lhs:
                if isinstance(sym, MetaRef):
                    self._require_meta(sym.name, rule)
            for item in rule.rhs:
                if isinstance(item, Terminal):
                    if isinstance(item.sym, MetaRef):
                        self._require_meta(item.sym.name, rule)
                        bound.add(item.sym.name)
                else:
                    for sym in item.hypernotion:
                        if isinstance(sym, MetaRef):
                            self._require_meta(sym.name, rule)
                            if sym.name not in bound:
                                definition = self.metanotions[sym.name]
                                enumerable = (
                                    isinstance(definition, RuleMeta)
                                    and definition.enumeration
                                )
                                if not enumerable:
                                    raise WGrammarError(
                                        f"rule {rule.label or rule}: "
                                        f"metanotion {sym.name} in a call "
                                        "is not bound by the lhs, an "
                                        "earlier binding terminal, or an "
                                        "enumeration"
                                    )
                                # An enumerated guess binds the
                                # metanotion for the rest of the rule.
                                bound.add(sym.name)

    def _require_meta(self, name: str, rule: Hyperrule) -> None:
        if name not in self.metanotions:
            raise WGrammarError(
                f"rule {rule.label or rule}: undefined metanotion {name}"
            )

    # ------------------------------------------------------------------
    # metanotion language membership
    # ------------------------------------------------------------------
    def member(self, meta: str, segment: Notion) -> bool:
        """Decide whether a mark sequence belongs to the metanotion's
        language."""
        key = (meta, segment)
        cached = self._membership_cache.get(key)
        if cached is not None:
            return cached
        # Occurs-check: while deciding (meta, segment), a recursive
        # query of the very same pair is assumed false (the final
        # answer is a least fixpoint, so this is sound for the
        # monotone membership recursion).
        self._membership_cache[key] = False
        definition = self.metanotions[meta]
        if isinstance(definition, LexicalMeta):
            result = len(segment) == 1 and definition.matches_mark(
                segment[0]
            )
        else:
            result = any(
                self._match_alternative(alternative, segment)
                for alternative in definition.alternatives
            )
        self._membership_cache[key] = result
        return result

    def _match_alternative(
        self, alternative: tuple[Sym, ...], segment: Notion
    ) -> bool:
        if not alternative:
            return not segment
        head, *rest = alternative
        rest = tuple(rest)
        if isinstance(head, Mark):
            return bool(segment) and segment[0] == head.text and (
                self._match_alternative(rest, segment[1:])
            )
        # MetaRef: try every split.
        for cut in range(len(segment) + 1):
            if self.member(head.name, segment[:cut]) and (
                self._match_alternative(rest, segment[cut:])
            ):
                return True
        return False

    # ------------------------------------------------------------------
    # hypernotion matching and instantiation
    # ------------------------------------------------------------------
    def match_lhs(
        self,
        pattern: Hypernotion,
        notion: Notion,
        bindings: dict[str, Notion] | None = None,
    ) -> Iterator[dict[str, Notion]]:
        """Yield every consistent binding with which ``pattern``
        instantiates exactly to ``notion``."""
        yield from self._match(pattern, notion, dict(bindings or {}))

    def _match(
        self,
        pattern: Hypernotion,
        notion: Notion,
        bindings: dict[str, Notion],
    ) -> Iterator[dict[str, Notion]]:
        if not pattern:
            if not notion:
                yield bindings
            return
        head = pattern[0]
        rest = pattern[1:]
        if isinstance(head, Mark):
            if notion and notion[0] == head.text:
                yield from self._match(rest, notion[1:], bindings)
            return
        bound = bindings.get(head.name)
        if bound is not None:
            if notion[: len(bound)] == bound:
                yield from self._match(
                    rest, notion[len(bound):], bindings
                )
            return
        for cut in range(len(notion) + 1):
            segment = notion[:cut]
            if _COV.enabled:
                # Usage is recorded at the matcher's membership call
                # sites, never inside member()'s memoized recursion:
                # counts then do not depend on cache warmth.
                _COV.recorder.record_metanotion(head.name)
            if self.member(head.name, segment):
                child = dict(bindings)
                child[head.name] = segment
                yield from self._match(rest, notion[cut:], child)

    def instantiate(
        self, hypernotion: Hypernotion, bindings: Mapping[str, Notion]
    ) -> Notion:
        """Apply uniform replacement, producing a ground notion.

        Raises:
            WGrammarError: if a metanotion is unbound.
        """
        out: list[str] = []
        for sym in hypernotion:
            if isinstance(sym, Mark):
                out.append(sym.text)
            else:
                value = bindings.get(sym.name)
                if value is None:
                    raise WGrammarError(
                        f"metanotion {sym.name} unbound during "
                        "instantiation"
                    )
                out.extend(value)
        return tuple(out)

    # ------------------------------------------------------------------
    # recognition
    # ------------------------------------------------------------------
    def recognize(
        self,
        tokens: list[str],
        max_steps: int = 2_000_000,
        counters: dict | None = None,
    ) -> bool:
        """Decide whether the token (mark) sequence is derivable from
        the start notion.

        Args:
            tokens: the input, one mark per token.
            max_steps: abort (raising :class:`WGrammarError`) after
                this many rule expansions — W-grammar recognition is
                undecidable in general, so a budget is mandatory.
            counters: optional dict receiving the recognizer's work
                counters (``steps``, ``memo_entries``, ``memo_hits``)
                so callers can route them into a stats sink even when
                tracing is disabled.
        """
        recognizer = _Recognizer(self, tuple(tokens), max_steps)
        accepted = len(tokens) in recognizer.parse(self.start, 0)
        if _OBS.enabled:
            _OBS.tracer.count("wgrammar.steps", recognizer.steps_used)
            _OBS.tracer.count(
                "wgrammar.memo_entries", len(recognizer._memo)
            )
        if counters is not None:
            counters["steps"] = recognizer.steps_used
            counters["memo_entries"] = len(recognizer._memo)
            counters["memo_hits"] = recognizer.memo_hits
        return accepted

    def derive_prefix(
        self, tokens: list[str], max_steps: int = 2_000_000
    ) -> set[int]:
        """All input positions up to which a derivation of the start
        notion can consume the tokens (diagnostic helper)."""
        recognizer = _Recognizer(self, tuple(tokens), max_steps)
        return recognizer.parse(self.start, 0)

    def generate(
        self,
        lexicon: Mapping[str, list[str]] | None = None,
        max_depth: int = 12,
        max_per_notion: int = 64,
    ) -> frozenset[tuple[str, ...]]:
        """Enumerate terminal strings derivable from the start notion.

        The generative reading of the grammar (bounded): each
        :class:`Call` costs one unit of ``max_depth``; at most
        ``max_per_notion`` distinct strings are kept per derivation
        node, so the result is a *sample* of the language, suitable
        for differential testing against a recognizer or parser.

        Args:
            lexicon: candidate marks for *unbound* binding terminals,
                keyed by metanotion name (e.g. a few identifier names
                for ``NAME``).  Bound binding terminals use their
                bound value; an unbound one with no lexicon entry
                generates nothing.
        """
        generator = _Generator(
            self, dict(lexicon or {}), max_per_notion
        )
        return frozenset(generator.notion(self.start, max_depth))


class _Generator:
    """Bounded breadth enumeration of derivable terminal strings."""

    def __init__(
        self,
        grammar: "WGrammar",
        lexicon: dict[str, list[str]],
        max_per_notion: int,
    ):
        self._grammar = grammar
        self._lexicon = lexicon
        self._cap = max_per_notion
        self._memo: dict[tuple[Notion, int], frozenset] = {}
        self._active: set[tuple[Notion, int]] = set()

    def notion(self, notion: Notion, depth: int) -> frozenset:
        if depth < 0:
            return frozenset()
        key = (notion, depth)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if key in self._active:
            return frozenset()
        self._active.add(key)
        out: set[tuple[str, ...]] = set()
        for rule in self._grammar.hyperrules:
            for bindings in self._grammar.match_lhs(rule.lhs, notion):
                if not rule.bindings_admissible(bindings):
                    continue
                out |= self._sequence(
                    rule.rhs, 0, dict(bindings), depth - 1
                )
                if len(out) >= self._cap:
                    break
            if len(out) >= self._cap:
                break
        self._active.discard(key)
        result = frozenset(itertools_islice_set(out, self._cap))
        self._memo[key] = result
        return result

    def _sequence(
        self,
        items: tuple[RHSItem, ...],
        index: int,
        bindings: dict[str, Notion],
        depth: int,
    ) -> set:
        if index == len(items):
            return {()}
        item = items[index]
        if isinstance(item, Terminal):
            if isinstance(item.sym, Mark):
                heads = [item.sym.text]
                tails = self._sequence(
                    items, index + 1, bindings, depth
                )
                return {
                    (head, *tail) for head in heads for tail in tails
                }
            bound = bindings.get(item.sym.name)
            if bound is not None:
                if len(bound) != 1:
                    return set()
                tails = self._sequence(
                    items, index + 1, bindings, depth
                )
                return {(bound[0], *tail) for tail in tails}
            out: set = set()
            for candidate in self._lexicon.get(item.sym.name, ()):
                if not self._grammar.member(
                    item.sym.name, (candidate,)
                ):
                    continue
                child = dict(bindings)
                child[item.sym.name] = (candidate,)
                out |= {
                    (candidate, *tail)
                    for tail in self._sequence(
                        items, index + 1, child, depth
                    )
                }
                if len(out) >= self._cap:
                    break
            return out
        out = set()
        for extended in _enumerate_unbound(
            self._grammar, item.hypernotion, bindings
        ):
            child_notion = self._grammar.instantiate(
                item.hypernotion, extended
            )
            heads = self.notion(child_notion, depth)
            if not heads:
                continue
            tails = self._sequence(items, index + 1, extended, depth)
            for head in heads:
                for tail in tails:
                    out.add((*head, *tail))
                    if len(out) >= self._cap:
                        return out
        return out


def itertools_islice_set(values: set, cap: int):
    """First ``cap`` elements of a set, deterministically ordered."""
    return sorted(values)[:cap]


def _enumerate_unbound(
    grammar: WGrammar,
    hypernotion: Hypernotion,
    bindings: dict[str, Notion],
):
    """Yield binding extensions covering every combination of
    enumerated values for the hypernotion's unbound metanotions.

    Yields ``bindings`` itself (unchanged object) when everything is
    already bound.
    """
    unbound = []
    seen = set()
    for sym in hypernotion:
        if (
            isinstance(sym, MetaRef)
            and sym.name not in bindings
            and sym.name not in seen
        ):
            seen.add(sym.name)
            unbound.append(sym.name)
    if not unbound:
        yield bindings
        return
    spaces = []
    for name in unbound:
        definition = grammar.metanotions[name]
        if not isinstance(definition, RuleMeta) or not (
            definition.enumeration
        ):
            raise WGrammarError(
                f"metanotion {name} is unbound in a call and has no "
                "enumeration"
            )
        spaces.append(definition.enumeration)
    import itertools as _itertools

    for combination in _itertools.product(*spaces):
        extended = dict(bindings)
        extended.update(zip(unbound, combination))
        yield extended


class _Recognizer:
    """Memoized top-down recognizer over ground notions."""

    def __init__(self, grammar: WGrammar, tokens: Notion, max_steps: int):
        self._grammar = grammar
        self._tokens = tokens
        self._max_steps = max_steps
        self._budget = max_steps
        self._memo: dict[tuple[Notion, int], set[int]] = {}
        self._active: set[tuple[Notion, int]] = set()
        #: Lookups answered from the memo table.
        self.memo_hits = 0

    @property
    def steps_used(self) -> int:
        """Rule expansions consumed so far out of the initial budget."""
        return self._max_steps - self._budget

    def parse(self, notion: Notion, pos: int) -> set[int]:
        key = (notion, pos)
        cached = self._memo.get(key)
        if cached is not None:
            self.memo_hits += 1
            return cached
        if key in self._active:
            # Left-recursive re-entry: cut the loop (grammars used
            # with this engine must be right-recursive).
            return set()
        self._active.add(key)
        results: set[int] = set()
        for rule_index, rule in enumerate(self._grammar.hyperrules):
            self._budget -= 1
            if self._budget < 0:
                raise WGrammarError(
                    "derivation search budget exhausted; the grammar "
                    "or input is too ambiguous"
                )
            for bindings in self._grammar.match_lhs(rule.lhs, notion):
                if not rule.bindings_admissible(bindings):
                    continue
                if _COV.enabled:
                    _COV.recorder.record_hyperrule(
                        rule.label or f"rule-{rule_index}"
                    )
                results |= self._sequence(rule.rhs, 0, dict(bindings), pos)
        self._active.discard(key)
        self._memo[key] = results
        return results

    def _sequence(
        self,
        items: tuple[RHSItem, ...],
        index: int,
        bindings: dict[str, Notion],
        pos: int,
    ) -> set[int]:
        if index == len(items):
            return {pos}
        item = items[index]
        if isinstance(item, Terminal):
            if pos >= len(self._tokens):
                return set()
            mark = self._tokens[pos]
            if isinstance(item.sym, Mark):
                if mark != item.sym.text:
                    return set()
                return self._sequence(items, index + 1, bindings, pos + 1)
            bound = bindings.get(item.sym.name)
            if bound is not None:
                if bound != (mark,):
                    return set()
                return self._sequence(items, index + 1, bindings, pos + 1)
            if _COV.enabled:
                _COV.recorder.record_metanotion(item.sym.name)
            if not self._grammar.member(item.sym.name, (mark,)):
                return set()
            child = dict(bindings)
            child[item.sym.name] = (mark,)
            return self._sequence(items, index + 1, child, pos + 1)
        out: set[int] = set()
        for extended in _enumerate_unbound(
            self._grammar, item.hypernotion, bindings
        ):
            notion = self._grammar.instantiate(
                item.hypernotion, extended
            )
            for middle in self.parse(notion, pos):
                out |= self._sequence(items, index + 1, extended, middle)
        return out

"""Two-level (van Wijngaarden) grammars and the W-grammar for RPR
schemas (paper, Section 5.1.1)."""

from repro.wgrammar.grammar import (
    Call,
    Hyperrule,
    LexicalMeta,
    Mark,
    MetaRef,
    RuleMeta,
    Terminal,
    WGrammar,
)
from repro.wgrammar.rpr_grammar import (
    check_schema_source,
    rpr_wgrammar,
    schema_marks,
)

__all__ = [
    "WGrammar",
    "Hyperrule",
    "Mark",
    "MetaRef",
    "Terminal",
    "Call",
    "LexicalMeta",
    "RuleMeta",
    "rpr_wgrammar",
    "schema_marks",
    "check_schema_source",
]

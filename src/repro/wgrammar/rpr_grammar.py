"""The W-grammar for RPR data base schemas.

This is the executable counterpart of the paper's (unpublished) formal
syntax definition: a two-level grammar whose hyperrules thread two
accumulator metanotions through the schema, so that the
*context-sensitive* conditions are enforced grammatically:

* ``DECLS`` — the list of declared relation names *with their arities
  in unary notation* — flows through the OPL part.  The predicate
  hyperrule ``where NAME has COUNT in DECLSA decl NAME COUNT DECLSB :
  .`` derives the empty string exactly when the name occurs in the
  declaration list with that arity, enforcing **declared-before-use**
  (the condition the paper names: "all relational program variables in
  the OPL part of a schema have been declared in the SCL part") and
  **arity agreement** at every use; **declaration uniqueness** is the
  predicate ``where NAME notin ...`` with a disequality side
  condition.

* ``VARS`` — the list of individual variables in scope — accumulates
  procedure parameters, quantifier bindings, and relational-term tuple
  variables, and flows into every term position.  The predicate
  ``where NAME isin VARSA var NAME VARSB : .`` admits exactly the
  in-scope names, so a generated term can never be an undeclared
  identifier.  (An equality's *left* term must additionally satisfy
  ``where NAME notin DECLS``: the parser routes relation-named
  identifiers down the atom path, so the grammar may not offer them as
  equation sides.)

Arity is "guessed" by bounded nondeterminism: the ``COUNT``
metanotion (unary: ``i``, ``ii``, ...) carries an enumeration up to
:data:`MAX_ARITY`, so calls may leave it unbound and the engine
searches — the W-grammar idiom for synthesized information.

The grammar recognizes the token stream produced by
:mod:`repro.rpr.lexer` (each token's text is one mark).  Scalar and
constant declarations are not covered (the paper's example has
neither); :func:`check_schema_source` reports them as unsupported.
"""

from __future__ import annotations

from repro.errors import WGrammarError
from repro.obs.tracer import span as _span
from repro.rpr.lexer import tokenize
from repro.wgrammar.grammar import (
    Call,
    Hyperrule,
    LexicalMeta,
    Mark,
    MetaRef,
    RuleMeta,
    Terminal,
    WGrammar,
)

__all__ = ["MAX_ARITY", "rpr_wgrammar", "schema_marks", "check_schema_source"]

#: Largest relation arity the grammar's bounded arity search covers.
MAX_ARITY = 4

_KEYWORD_ALTERNATION = (
    "schema|proc|var|const|if|then|else|while|do|insert|delete|skip|"
    "forall|exists|true|false"
)

#: Lexical language of names: identifiers that are not keywords.
_NAME_PATTERN = rf"(?!(?:{_KEYWORD_ALTERNATION})$)[A-Za-z_][A-Za-z0-9_']*"


def _meta(name: str) -> MetaRef:
    return MetaRef(name)


def _mark(text: str) -> Mark:
    return Mark(text)


def _t(text: str) -> Terminal:
    """Terminal for a literal mark."""
    return Terminal(Mark(text))


def _tname(meta: str = "NAME") -> Terminal:
    """Binding terminal for a name-shaped mark."""
    return Terminal(MetaRef(meta))


def _call(*parts) -> Call:
    out = []
    for part in parts:
        if isinstance(part, (Mark, MetaRef)):
            out.append(part)
        else:
            out.append(Mark(part))
    return Call(tuple(out))


def rpr_wgrammar() -> WGrammar:
    """Construct the W-grammar for RPR schemas."""
    count_meta = RuleMeta(
        (
            (Mark("i"),),
            (Mark("i"), MetaRef("COUNT")),
        ),
        enumeration=tuple(
            ("i",) * k for k in range(1, MAX_ARITY + 1)
        ),
    )
    decls_meta = RuleMeta(
        (
            (),
            (
                Mark("decl"),
                MetaRef("NAME"),
                MetaRef("COUNT"),
                MetaRef("DECLS"),
            ),
        )
    )
    vars_meta = RuleMeta(
        (
            (),
            (
                Mark("var"),
                MetaRef("NAME"),
                MetaRef("VARS"),
            ),
        )
    )
    metanotions = {
        "NAME": LexicalMeta(_NAME_PATTERN),
        "NAME2": LexicalMeta(_NAME_PATTERN),
        "SORTNAME": LexicalMeta(_NAME_PATTERN),
        "COUNT": count_meta,
        "DECLS": decls_meta,
        "DECLSA": decls_meta,
        "DECLSB": decls_meta,
        "VARS": vars_meta,
        "VARSA": vars_meta,
        "VARSB": vars_meta,
    }
    D = _meta("DECLS")
    N = _meta("NAME")
    C = _meta("COUNT")
    V = _meta("VARS")

    rules: list[Hyperrule] = []

    def rule(label: str, lhs, *rhs, distinct=()) -> None:
        rules.append(Hyperrule(tuple(lhs), tuple(rhs), label, distinct))

    # program : 'schema', body-of-(empty decls) .
    rule(
        "program",
        [_mark("program")],
        _t("schema"),
        _call("body", "of"),
    )
    # body of DECLS : NAME(fresh) '(' columns of COUNT ')' ';'
    #                 body of DECLS decl NAME COUNT .
    rule(
        "body-decl",
        [_mark("body"), _mark("of"), D],
        _tname(),
        _call("where", N, "notin", D),
        _t("("),
        _call("columns", "of", C),  # COUNT guessed by enumeration
        _t(")"),
        _t(";"),
        _call("body", "of", D, "decl", N, C),
    )
    # body of DECLS : ops in DECLS (no procs yet) 'end-schema' .
    rule(
        "body-ops",
        [_mark("body"), _mark("of"), D],
        _call("ops", "in", D, "procs"),
        _t("end-schema"),
    )
    # columns of i : SORTNAME .
    rule(
        "columns-one",
        [_mark("columns"), _mark("of"), _mark("i")],
        _tname("SORTNAME"),
    )
    # columns of i COUNT : SORTNAME ',' columns of COUNT .
    rule(
        "columns-more",
        [_mark("columns"), _mark("of"), _mark("i"), C],
        _tname("SORTNAME"),
        _t(","),
        _call("columns", "of", C),
    )
    # ops in DECLS procs VARS : 'proc' NAME(fresh among the procs)
    #     '(' params-in-empty-scope, ops with NAME accumulated .
    rule(
        "ops",
        [_mark("ops"), _mark("in"), D, _mark("procs"), V],
        _t("proc"),
        _tname(),
        _call("where", N, "outof", V),
        _t("("),
        _call("params", "in", D, "vars"),
        _call("ops", "in", D, "procs", _mark("var"), N, V),
    )
    rule("ops-end", [_mark("ops"), _mark("in"), D, _mark("procs"), V])
    # params accumulate the parameter names into VARS — the scope the
    # proc body's terms are checked against; the ')' '=' stmt
    # continuation lives here so the finished scope reaches the body.
    rule(
        "params-close",
        [_mark("params"), _mark("in"), D, _mark("vars"), V],
        _t(")"),
        _t("="),
        _call("stmt", "in", D, "vars", V),
    )
    rule(
        "params-first",
        [_mark("params"), _mark("in"), D, _mark("vars"), V],
        _tname(),
        _call("annot"),
        _call("params-tail", "in", D, "vars", _mark("var"), N, V),
    )
    rule(
        "params-tail-close",
        [_mark("params-tail"), _mark("in"), D, _mark("vars"), V],
        _t(")"),
        _t("="),
        _call("stmt", "in", D, "vars", V),
    )
    rule(
        "params-tail-more",
        [_mark("params-tail"), _mark("in"), D, _mark("vars"), V],
        _t(","),
        _tname(),
        _call("annot"),
        _call("params-tail", "in", D, "vars", _mark("var"), N, V),
    )
    rule("annot-empty", [_mark("annot")])
    rule("annot", [_mark("annot")], _t(":"), _tname("SORTNAME"))

    # statements ------------------------------------------------------
    rule(
        "stmt",
        [_mark("stmt"), _mark("in"), D, _mark("vars"), V],
        _call("seqlevel", "in", D, "vars", V),
        _call("stmt-tail", "in", D, "vars", V),
    )
    rule(
        "stmt-tail-end",
        [_mark("stmt-tail"), _mark("in"), D, _mark("vars"), V],
    )
    rule(
        "stmt-tail",
        [_mark("stmt-tail"), _mark("in"), D, _mark("vars"), V],
        _t("|"),
        _call("seqlevel", "in", D, "vars", V),
        _call("stmt-tail", "in", D, "vars", V),
    )
    rule(
        "seqlevel",
        [_mark("seqlevel"), _mark("in"), D, _mark("vars"), V],
        _call("unit", "in", D, "vars", V),
        _call("seq-tail", "in", D, "vars", V),
    )
    rule(
        "seq-tail-end",
        [_mark("seq-tail"), _mark("in"), D, _mark("vars"), V],
    )
    rule(
        "seq-tail",
        [_mark("seq-tail"), _mark("in"), D, _mark("vars"), V],
        _t(";"),
        _call("unit", "in", D, "vars", V),
        _call("seq-tail", "in", D, "vars", V),
    )
    rule(
        "unit-group",
        [_mark("unit"), _mark("in"), D, _mark("vars"), V],
        _t("("),
        _call("stmt", "in", D, "vars", V),
        _t(")"),
        _call("star-opt"),
    )
    rule("star-opt-end", [_mark("star-opt")])
    rule("star-opt", [_mark("star-opt")], _t("*"))
    rule(
        "unit-skip",
        [_mark("unit"), _mark("in"), D, _mark("vars"), V],
        _t("skip"),
    )
    rule(
        "unit-if",
        [_mark("unit"), _mark("in"), D, _mark("vars"), V],
        _t("if"),
        _call("formula", "in", D, "vars", V),
        _t("then"),
        _call("unit", "in", D, "vars", V),
        _call("else-opt", "in", D, "vars", V),
    )
    rule(
        "else-opt-end",
        [_mark("else-opt"), _mark("in"), D, _mark("vars"), V],
    )
    rule(
        "else-opt",
        [_mark("else-opt"), _mark("in"), D, _mark("vars"), V],
        _t("else"),
        _call("unit", "in", D, "vars", V),
    )
    rule(
        "unit-while",
        [_mark("unit"), _mark("in"), D, _mark("vars"), V],
        _t("while"),
        _call("formula", "in", D, "vars", V),
        _t("do"),
        _call("unit", "in", D, "vars", V),
    )
    # unit : 'insert'/'delete' NAME(declared, arity COUNT)
    #        '(' args of COUNT ')'
    for keyword in ("insert", "delete"):
        rule(
            f"unit-{keyword}",
            [_mark("unit"), _mark("in"), D, _mark("vars"), V],
            _t(keyword),
            _tname(),
            _call("where", N, "has", C, "in", D),
            _t("("),
            _call("args", "of", C, "vars", V),
            _t(")"),
        )
    # unit : NAME(declared, arity COUNT) ':=' relterm of COUNT
    rule(
        "unit-relassign",
        [_mark("unit"), _mark("in"), D, _mark("vars"), V],
        _tname(),
        _call("where", N, "has", C, "in", D),
        _t(":="),
        _call("relterm", "of", C, "in", D, "vars", V),
    )
    rule(
        "unit-test",
        [_mark("unit"), _mark("in"), D, _mark("vars"), V],
        _call("formula", "in", D, "vars", V),
        _t("?"),
    )
    # relational terms, arity-indexed ----------------------------------
    rule(
        "relterm-empty",
        [
            _mark("relterm"), _mark("of"), C,
            _mark("in"), D, _mark("vars"), V,
        ],
        _t("{"),
        _t("}"),
    )
    # The tuple variables extend the scope of the '/'-side formula, so
    # the ')' '/' formula '}' continuation lives inside 'varlist'.
    rule(
        "relterm-tuple",
        [
            _mark("relterm"), _mark("of"), C,
            _mark("in"), D, _mark("vars"), V,
        ],
        _t("{"),
        _t("("),
        _call("varlist", "of", C, "in", D, "vars", V),
    )
    rule(
        "relterm-single",
        [
            _mark("relterm"), _mark("of"), _mark("i"),
            _mark("in"), D, _mark("vars"), V,
        ],
        _t("{"),
        _tname(),
        _t("/"),
        _call("formula", "in", D, "vars", _mark("var"), N, V),
        _t("}"),
    )
    rule(
        "varlist-one",
        [
            _mark("varlist"), _mark("of"), _mark("i"),
            _mark("in"), D, _mark("vars"), V,
        ],
        _tname(),
        _t(")"),
        _t("/"),
        _call("formula", "in", D, "vars", _mark("var"), N, V),
        _t("}"),
    )
    rule(
        "varlist-more",
        [
            _mark("varlist"), _mark("of"), _mark("i"), C,
            _mark("in"), D, _mark("vars"), V,
        ],
        _tname(),
        _t(","),
        _call("varlist", "of", C, "in", D, "vars", _mark("var"), N, V),
    )

    # formulas (precedence mirrored from the parser) --------------------
    rule(
        "formula",
        [_mark("formula"), _mark("in"), D, _mark("vars"), V],
        _call("fimp", "in", D, "vars", V),
        _call("fiff-tail", "in", D, "vars", V),
    )
    rule(
        "fiff-tail-end",
        [_mark("fiff-tail"), _mark("in"), D, _mark("vars"), V],
    )
    rule(
        "fiff-tail",
        [_mark("fiff-tail"), _mark("in"), D, _mark("vars"), V],
        _t("<->"),
        _call("fimp", "in", D, "vars", V),
        _call("fiff-tail", "in", D, "vars", V),
    )
    rule(
        "fimp",
        [_mark("fimp"), _mark("in"), D, _mark("vars"), V],
        _call("for", "in", D, "vars", V),
        _call("fimp-tail", "in", D, "vars", V),
    )
    rule(
        "fimp-tail-end",
        [_mark("fimp-tail"), _mark("in"), D, _mark("vars"), V],
    )
    rule(
        "fimp-tail",
        [_mark("fimp-tail"), _mark("in"), D, _mark("vars"), V],
        _t("->"),
        _call("fimp", "in", D, "vars", V),
    )
    rule(
        "for",
        [_mark("for"), _mark("in"), D, _mark("vars"), V],
        _call("fand", "in", D, "vars", V),
        _call("for-tail", "in", D, "vars", V),
    )
    rule(
        "for-tail-end",
        [_mark("for-tail"), _mark("in"), D, _mark("vars"), V],
    )
    rule(
        "for-tail",
        [_mark("for-tail"), _mark("in"), D, _mark("vars"), V],
        _t("|"),
        _call("fand", "in", D, "vars", V),
        _call("for-tail", "in", D, "vars", V),
    )
    rule(
        "fand",
        [_mark("fand"), _mark("in"), D, _mark("vars"), V],
        _call("funary", "in", D, "vars", V),
        _call("fand-tail", "in", D, "vars", V),
    )
    rule(
        "fand-tail-end",
        [_mark("fand-tail"), _mark("in"), D, _mark("vars"), V],
    )
    rule(
        "fand-tail",
        [_mark("fand-tail"), _mark("in"), D, _mark("vars"), V],
        _t("&"),
        _call("funary", "in", D, "vars", V),
        _call("fand-tail", "in", D, "vars", V),
    )
    rule(
        "funary-not",
        [_mark("funary"), _mark("in"), D, _mark("vars"), V],
        _t("~"),
        _call("funary", "in", D, "vars", V),
    )
    # The quantifier's bindings extend the scope of the body formula,
    # so the '.' formula continuation lives inside 'bindlist'.
    for quantifier in ("forall", "exists"):
        rule(
            f"funary-{quantifier}",
            [_mark("funary"), _mark("in"), D, _mark("vars"), V],
            _t(quantifier),
            _call("bindlist", "in", D, "vars", V),
        )
    rule(
        "funary-primary",
        [_mark("funary"), _mark("in"), D, _mark("vars"), V],
        _call("fprimary", "in", D, "vars", V),
    )
    rule(
        "bindlist",
        [_mark("bindlist"), _mark("in"), D, _mark("vars"), V],
        _tname(),
        _t(":"),
        _tname("SORTNAME"),
        _call("bindlist-tail", "in", D, "vars", _mark("var"), N, V),
    )
    rule(
        "bindlist-tail-dot",
        [_mark("bindlist-tail"), _mark("in"), D, _mark("vars"), V],
        _t("."),
        _call("formula", "in", D, "vars", V),
    )
    rule(
        "bindlist-tail",
        [_mark("bindlist-tail"), _mark("in"), D, _mark("vars"), V],
        _t(","),
        _tname(),
        _t(":"),
        _tname("SORTNAME"),
        _call("bindlist-tail", "in", D, "vars", _mark("var"), N, V),
    )
    rule(
        "fprimary-paren",
        [_mark("fprimary"), _mark("in"), D, _mark("vars"), V],
        _t("("),
        _call("formula", "in", D, "vars", V),
        _t(")"),
    )
    rule(
        "fprimary-true",
        [_mark("fprimary"), _mark("in"), D, _mark("vars"), V],
        _t("true"),
    )
    rule(
        "fprimary-false",
        [_mark("fprimary"), _mark("in"), D, _mark("vars"), V],
        _t("false"),
    )
    # relation atom: NAME declared with arity COUNT.
    rule(
        "fprimary-atom",
        [_mark("fprimary"), _mark("in"), D, _mark("vars"), V],
        _tname(),
        _call("where", N, "has", C, "in", D),
        _t("("),
        _call("args", "of", C, "vars", V),
        _t(")"),
    )
    # Equality/inequality between in-scope terms.  The parser routes a
    # relation-named identifier down the atom path, so the left side
    # must additionally not collide with a declared relation.
    for operator in ("=", "!="):
        rule(
            f"fprimary-{'eq' if operator == '=' else 'neq'}",
            [_mark("fprimary"), _mark("in"), D, _mark("vars"), V],
            _tname(),
            _call("where", N, "notin", D),
            _call("where", N, "isin", V),
            _t(operator),
            _call("term", "from", V),
        )
    # term from VARS : NAME(in scope) .
    rule(
        "term",
        [_mark("term"), _mark("from"), V],
        _tname(),
        _call("where", N, "isin", V),
    )
    rule(
        "args-one",
        [_mark("args"), _mark("of"), _mark("i"), _mark("vars"), V],
        _call("term", "from", V),
    )
    rule(
        "args-more",
        [_mark("args"), _mark("of"), _mark("i"), C, _mark("vars"), V],
        _call("term", "from", V),
        _t(","),
        _call("args", "of", C, "vars", V),
    )

    # the context-condition predicates ---------------------------------
    # where NAME has COUNT in DECLSA decl NAME COUNT DECLSB :  .
    rules.append(
        Hyperrule(
            (
                _mark("where"),
                N,
                _mark("has"),
                C,
                _mark("in"),
                _meta("DECLSA"),
                _mark("decl"),
                N,
                C,
                _meta("DECLSB"),
            ),
            (),
            "where-has-in-decls",
        )
    )
    # where NAME notin (empty) :  .
    rules.append(
        Hyperrule(
            (_mark("where"), N, _mark("notin")),
            (),
            "where-notin-empty",
        )
    )
    # where NAME notin decl NAME2 COUNT DECLS : where NAME notin DECLS,
    # provided NAME != NAME2.
    rules.append(
        Hyperrule(
            (
                _mark("where"),
                N,
                _mark("notin"),
                _mark("decl"),
                _meta("NAME2"),
                C,
                D,
            ),
            (_call("where", N, "notin", D),),
            "where-notin-step",
            distinct=(("NAME", "NAME2"),),
        )
    )
    # where NAME isin VARSA var NAME VARSB :  .
    rules.append(
        Hyperrule(
            (
                _mark("where"),
                N,
                _mark("isin"),
                _meta("VARSA"),
                _mark("var"),
                N,
                _meta("VARSB"),
            ),
            (),
            "where-isin-vars",
        )
    )
    # where NAME outof (empty name list) :  .
    rules.append(
        Hyperrule(
            (_mark("where"), N, _mark("outof")),
            (),
            "where-outof-empty",
        )
    )
    # where NAME outof var NAME2 VARS : where NAME outof VARS,
    # provided NAME != NAME2.
    rules.append(
        Hyperrule(
            (
                _mark("where"),
                N,
                _mark("outof"),
                _mark("var"),
                _meta("NAME2"),
                V,
            ),
            (_call("where", N, "outof", V),),
            "where-outof-step",
            distinct=(("NAME", "NAME2"),),
        )
    )

    return WGrammar(metanotions, rules, ("program",))


def schema_marks(source: str) -> list[str]:
    """Tokenize RPR source into the mark sequence the grammar reads."""
    return [
        token.text
        for token in tokenize(source)
        if token.kind != "eof"
    ]


def check_schema_source(
    source: str,
    max_steps: int = 2_000_000,
    counters: dict | None = None,
) -> bool:
    """Decide whether RPR source is generated by the W-grammar
    (Section 5.4's syntactic-correctness check).

    Args:
        counters: optional dict receiving the recognizer's work
            counters (``steps``, ``memo_entries``, ``memo_hits``) for
            the caller's stats sink.

    Raises:
        WGrammarError: if the source declares scalar/constant program
            variables (not covered by this grammar) or the search
            budget is exhausted.
    """
    marks = schema_marks(source)
    if "var" in marks or "const" in marks:
        raise WGrammarError(
            "the RPR W-grammar does not cover scalar/constant "
            "declarations"
        )
    with _span(
        "wgrammar.recognize", tokens=len(marks), budget=max_steps
    ):
        return rpr_wgrammar().recognize(
            marks, max_steps=max_steps, counters=counters
        )

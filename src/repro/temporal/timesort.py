"""The time-sort alternative to modal operators.

Paper, Section 3.1: "A different approach could also be taken by
selecting a many-sorted first-order language with a special sort
interpreted as time (see [CF, BADW] for extensive discussions)."

This module implements that alternative and proves it equivalent on
finite universes:

* :func:`timestamped_signature` extends a language L with a ``time``
  sort, an ``accessible(time, time)`` predicate, and a timestamped
  copy ``p@t`` of every db-predicate (one extra time argument);
* :func:`timestamp_formula` translates a wff of L^T into an ordinary
  first-order wff over the extended language — modal operators become
  quantification over accessible instants;
* :func:`structure_of_universe` flattens a Kripke universe into a
  single first-order structure over the extended language.

The round-trip theorem — ``U, A ⊨ P`` iff the flattened structure
satisfies the translation with the time variable valued at A — is
property-tested in ``tests/temporal/test_timesort.py``.
"""

from __future__ import annotations

from repro.errors import SpecificationError
from repro.logic import formulas as fm
from repro.logic.signature import Signature
from repro.logic.sorts import Sort
from repro.logic.structures import Structure
from repro.logic.terms import Var
from repro.temporal.formulas import Necessarily, Possibly
from repro.temporal.kripke import KripkeUniverse

__all__ = [
    "TIME",
    "timestamped_signature",
    "timestamp_formula",
    "structure_of_universe",
]

#: The distinguished time sort of the encoding.
TIME = Sort("time")

#: Name of the accessibility predicate over instants.
_ACCESSIBLE = "accessible"


def _timestamped_name(predicate_name: str) -> str:
    return f"{predicate_name}_at"


def timestamped_signature(signature: Signature) -> Signature:
    """The extension of L for the time-sort encoding.

    Every predicate ``p<s1,...,sn>`` gains a timestamped twin
    ``p_at<s1,...,sn,time>``; the original predicates are kept (they
    no longer occur in translated formulas).
    """
    extended = signature.copy()
    extended.add_sort(TIME)
    extended.add_predicate(_ACCESSIBLE, [TIME, TIME])
    for predicate in signature.predicates:
        extended.add_predicate(
            _timestamped_name(predicate.name),
            [*predicate.arg_sorts, TIME],
            db=predicate.db,
        )
    return extended


def timestamp_formula(
    formula: fm.Formula,
    signature: Signature,
    time_var: Var | None = None,
) -> fm.Formula:
    """Translate a wff of L^T into first-order form over the extended
    language; the result's extra free variable is ``time_var``
    (default ``now:time``).

    ``p(t...)`` becomes ``p_at(t..., now)``; ``<>P`` becomes
    ``exists t'. accessible(now, t') & P[t']``; ``[]P`` dually.
    """
    extended = timestamped_signature(signature)
    now = time_var or Var("now", TIME)
    counter = [0]

    def fresh() -> Var:
        counter[0] += 1
        return Var(f"t{counter[0]}", TIME)

    accessible = extended.predicate(_ACCESSIBLE)

    def walk(node: fm.Formula, instant: Var) -> fm.Formula:
        if isinstance(node, (fm.TrueF, fm.FalseF)):
            return node
        if isinstance(node, fm.Atom):
            twin = extended.predicate(
                _timestamped_name(node.predicate.name)
            )
            return fm.Atom(twin, (*node.args, instant))
        if isinstance(node, fm.Equals):
            return node
        if isinstance(node, fm.Not):
            return fm.Not(walk(node.body, instant))
        if isinstance(node, (fm.And, fm.Or, fm.Implies, fm.Iff)):
            return type(node)(
                walk(node.lhs, instant), walk(node.rhs, instant)
            )
        if isinstance(node, (fm.Forall, fm.Exists)):
            if node.var.sort == TIME:
                raise SpecificationError(
                    "source formula already quantifies over time"
                )
            return type(node)(node.var, walk(node.body, instant))
        if isinstance(node, Possibly):
            successor = fresh()
            return fm.Exists(
                successor,
                fm.And(
                    fm.Atom(accessible, (instant, successor)),
                    walk(node.body, successor),
                ),
            )
        if isinstance(node, Necessarily):
            successor = fresh()
            return fm.Forall(
                successor,
                fm.Implies(
                    fm.Atom(accessible, (instant, successor)),
                    walk(node.body, successor),
                ),
            )
        raise TypeError(f"cannot timestamp {node!r}")

    return walk(formula, now)


def structure_of_universe(
    universe: KripkeUniverse, signature: Signature
) -> tuple[Structure, dict[Structure, int]]:
    """Flatten a Kripke universe into one structure over the extended
    language.

    The time carrier is ``0..len(universe)-1`` (indices into
    ``universe.states``); ``accessible`` is R on indices; ``p_at`` is
    the union over instants of each state's extension of ``p``.

    Returns:
        The flattened structure and the map from state to its instant.
    """
    extended = timestamped_signature(signature)
    states = universe.states
    instant_of = {state: index for index, state in enumerate(states)}
    carriers: dict[Sort, list] = {
        sort: list(values)
        for sort, values in states[0].carriers.items()
    }
    carriers[TIME] = list(range(len(states)))

    relations: dict[str, set[tuple]] = {
        _ACCESSIBLE: {
            (instant_of[a], instant_of[b])
            for a, b in universe.accessibility
        }
    }
    for predicate in signature.predicates:
        rows: set[tuple] = set()
        for state in states:
            instant = instant_of[state]
            for row in state.relation(predicate.name):
                rows.add((*row, instant))
        relations[_timestamped_name(predicate.name)] = rows

    structure = Structure(extended, carriers, relations=relations)
    return structure, instant_of

"""Satisfaction for the temporal extension L^T.

Paper, Section 3.1: satisfaction uses "rules identical to those of
first-order languages, plus one additional rule:

    A ⊨ (◇P)[v]  iff  there is B in S such that R(A, B) and B ⊨ P[v]"

Necessity is the dual: A ⊨ (□P)[v] iff every B with R(A, B) satisfies
P[v].  Valuations are shared across states because all states have the
same domain (the common-domain restriction of :class:`KripkeUniverse`).
"""

from __future__ import annotations

from typing import Hashable

from repro.logic import formulas as fm
from repro.logic.semantics import evaluate_term
from repro.logic.structures import Structure
from repro.logic.terms import Var
from repro.temporal.formulas import Necessarily, Possibly
from repro.temporal.kripke import KripkeUniverse

__all__ = ["satisfies_temporal", "holds_at_every_state"]


def satisfies_temporal(
    universe: KripkeUniverse,
    state: Structure,
    formula: fm.Formula,
    valuation: dict[Var, Hashable] | None = None,
) -> bool:
    """Decide ``U, state ⊨ formula[valuation]``.

    First-order connectives and quantifiers are interpreted at
    ``state``; ``<>P`` looks at some R-successor, ``[]P`` at all of
    them.
    """
    valuation = valuation or {}
    if isinstance(formula, Possibly):
        return any(
            satisfies_temporal(universe, successor, formula.body, valuation)
            for successor in universe.successors(state)
        )
    if isinstance(formula, Necessarily):
        return all(
            satisfies_temporal(universe, successor, formula.body, valuation)
            for successor in universe.successors(state)
        )
    if isinstance(formula, fm.TrueF):
        return True
    if isinstance(formula, fm.FalseF):
        return False
    if isinstance(formula, fm.Atom):
        args = tuple(
            evaluate_term(state, arg, valuation) for arg in formula.args
        )
        return state.holds(formula.predicate.name, args)
    if isinstance(formula, fm.Equals):
        return evaluate_term(state, formula.lhs, valuation) == evaluate_term(
            state, formula.rhs, valuation
        )
    if isinstance(formula, fm.Not):
        return not satisfies_temporal(
            universe, state, formula.body, valuation
        )
    if isinstance(formula, fm.And):
        return satisfies_temporal(
            universe, state, formula.lhs, valuation
        ) and satisfies_temporal(universe, state, formula.rhs, valuation)
    if isinstance(formula, fm.Or):
        return satisfies_temporal(
            universe, state, formula.lhs, valuation
        ) or satisfies_temporal(universe, state, formula.rhs, valuation)
    if isinstance(formula, fm.Implies):
        return (
            not satisfies_temporal(universe, state, formula.lhs, valuation)
        ) or satisfies_temporal(universe, state, formula.rhs, valuation)
    if isinstance(formula, fm.Iff):
        return satisfies_temporal(
            universe, state, formula.lhs, valuation
        ) == satisfies_temporal(universe, state, formula.rhs, valuation)
    if isinstance(formula, fm.Forall):
        carrier = state.carrier(formula.var.sort)
        return all(
            satisfies_temporal(
                universe, state, formula.body,
                {**valuation, formula.var: value},
            )
            for value in carrier
        )
    if isinstance(formula, fm.Exists):
        carrier = state.carrier(formula.var.sort)
        return any(
            satisfies_temporal(
                universe, state, formula.body,
                {**valuation, formula.var: value},
            )
            for value in carrier
        )
    raise TypeError(f"not a temporal formula: {formula!r}")


def holds_at_every_state(
    universe: KripkeUniverse, formula: fm.Formula
) -> bool:
    """True iff the closed formula holds at every state of the universe.

    This is the natural reading of an axiom of a temporal theory: it
    constrains the whole intended universe, not a single state.
    """
    return all(
        satisfies_temporal(universe, state, formula)
        for state in universe.states
    )

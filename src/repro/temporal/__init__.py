"""Temporal extension L^T of first-order languages (paper, Section 3.1).

Adds the possibility/necessity modal operators, Kripke universes
``U = (S, R)`` over database states, modal satisfaction, and the
static-vs-transition classification of axioms.
"""

from repro.temporal.constraints import (
    STATIC,
    TRANSITION,
    ConstraintKind,
    classify,
    split_axioms,
)
from repro.temporal.formulas import (
    Necessarily,
    Possibly,
    is_modal,
    modal_depth,
    necessity_as_dual,
)
from repro.temporal.kripke import (
    KripkeUniverse,
    linear_history,
    transition_pair,
)
from repro.temporal.semantics import holds_at_every_state, satisfies_temporal
from repro.temporal.timesort import (
    TIME,
    structure_of_universe,
    timestamp_formula,
    timestamped_signature,
)

__all__ = [
    "TIME",
    "timestamped_signature",
    "timestamp_formula",
    "structure_of_universe",
    "Possibly",
    "Necessarily",
    "is_modal",
    "necessity_as_dual",
    "modal_depth",
    "KripkeUniverse",
    "linear_history",
    "transition_pair",
    "satisfies_temporal",
    "holds_at_every_state",
    "ConstraintKind",
    "STATIC",
    "TRANSITION",
    "classify",
    "split_axioms",
]

"""Classification of axioms into static and transition constraints.

Paper, Section 3.1: "The axioms in A define static constraints, if they
do not involve modalities, or transition constraints, otherwise."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.logic.formulas import Formula
from repro.temporal.formulas import is_modal

__all__ = ["ConstraintKind", "STATIC", "TRANSITION", "classify", "split_axioms"]


@dataclass(frozen=True)
class ConstraintKind:
    """The kind of an axiom: ``"static"`` or ``"transition"``."""

    name: str

    def __str__(self) -> str:
        return self.name


#: Axiom without modal operators: restricts individual states.
STATIC = ConstraintKind("static")

#: Axiom with modal operators: restricts which transitions are
#: acceptable.
TRANSITION = ConstraintKind("transition")


def classify(axiom: Formula) -> ConstraintKind:
    """Classify one axiom by the paper's criterion (modality presence)."""
    return TRANSITION if is_modal(axiom) else STATIC


def split_axioms(
    axioms: list[Formula],
) -> tuple[tuple[Formula, ...], tuple[Formula, ...]]:
    """Split axioms into (static constraints, transition constraints)."""
    static = tuple(a for a in axioms if classify(a) is STATIC)
    transition = tuple(a for a in axioms if classify(a) is TRANSITION)
    return static, transition

"""Kripke universes for the temporal extension.

Paper, Section 3.1: "A universe U for L^T is a pair (S, R), where S is
a set of structures of L, all with the same domain D (...), and R is a
binary relation over S, called the accessibility relation."  R(A, B)
is read "B is a future state with respect to A".
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import SpecificationError
from repro.logic.structures import Structure

__all__ = ["KripkeUniverse", "linear_history", "transition_pair"]


class KripkeUniverse:
    """A universe ``U = (S, R)`` of database states.

    States are :class:`~repro.logic.structures.Structure` instances;
    the accessibility relation is a set of (before, after) pairs of
    states.  The constructor enforces the paper's common-domain
    restriction: all states must share the same carriers.

    Args:
        states: the set S of states (order preserved, duplicates
            removed).
        accessibility: the relation R as pairs of states (each of
            which must be in S).
    """

    def __init__(
        self,
        states: Iterable[Structure],
        accessibility: Iterable[tuple[Structure, Structure]] = (),
    ):
        self._states: list[Structure] = []
        seen: set[Structure] = set()
        for state in states:
            if state not in seen:
                seen.add(state)
                self._states.append(state)
        if not self._states:
            raise SpecificationError("a Kripke universe needs >= 1 state")

        reference = self._states[0].carriers
        for state in self._states[1:]:
            if state.carriers != reference:
                raise SpecificationError(
                    "all states of a universe must share the same domain "
                    "(carriers differ)"
                )

        self._accessibility: set[tuple[Structure, Structure]] = set()
        for before, after in accessibility:
            if before not in seen or after not in seen:
                raise SpecificationError(
                    "accessibility relates states outside the universe"
                )
            self._accessibility.add((before, after))
        # Source-indexed view of R, built lazily by successors(); the
        # relation is fixed after construction, so it never goes stale.
        self._successor_index: dict[Structure, tuple[Structure, ...]] | None = (
            None
        )

    @property
    def states(self) -> tuple[Structure, ...]:
        """The states S of the universe."""
        return tuple(self._states)

    @property
    def accessibility(self) -> frozenset[tuple[Structure, Structure]]:
        """The accessibility relation R."""
        return frozenset(self._accessibility)

    def successors(self, state: Structure) -> Iterator[Structure]:
        """Yield the states B with R(state, B).

        Reads a source-indexed adjacency map instead of scanning the
        whole relation; the first call builds the index (grouping the
        pairs in relation-iteration order, so the yielded sequence is
        unchanged).
        """
        index = self._successor_index
        if index is None:
            grouped: dict[Structure, list[Structure]] = {}
            for before, after in self._accessibility:
                grouped.setdefault(before, []).append(after)
            index = {src: tuple(dsts) for src, dsts in grouped.items()}
            self._successor_index = index
        return iter(index.get(state, ()))

    def accessible(self, before: Structure, after: Structure) -> bool:
        """True iff R(before, after)."""
        return (before, after) in self._accessibility

    def transitive_closure(self) -> "KripkeUniverse":
        """Return the universe with R replaced by its transitive closure.

        The paper reads R(A, B) as "B is a *future* state of A"; when R
        is given as single-step successorship, the future-state reading
        is its transitive closure.
        """
        closure = set(self._accessibility)
        changed = True
        while changed:
            changed = False
            for a, b in list(closure):
                for c, d in list(closure):
                    if b == c and (a, d) not in closure:
                        closure.add((a, d))
                        changed = True
        return KripkeUniverse(self._states, closure)

    def reflexive_closure(self) -> "KripkeUniverse":
        """Return the universe with every state accessible from itself."""
        extra = {(s, s) for s in self._states}
        return KripkeUniverse(self._states, self._accessibility | extra)

    def __len__(self) -> int:
        return len(self._states)

    def __repr__(self) -> str:
        return (
            f"KripkeUniverse(states={len(self._states)}, "
            f"edges={len(self._accessibility)})"
        )


def linear_history(states: list[Structure]) -> KripkeUniverse:
    """Build a universe from a linear run ``s0 → s1 → ... → sn``.

    Accessibility is the *future-of* relation: ``R(si, sj)`` iff
    ``i < j`` — i.e. the transitive closure of successorship, matching
    the paper's reading of R.
    """
    edges = [
        (states[i], states[j])
        for i in range(len(states))
        for j in range(i + 1, len(states))
    ]
    return KripkeUniverse(states, edges)


def transition_pair(
    before: Structure, after: Structure
) -> KripkeUniverse:
    """Build the two-state universe for a single transition.

    Used to check a transition constraint against one update step:
    the constraint must hold at ``before`` in ``({before, after},
    {(before, after)})``.
    """
    return KripkeUniverse([before, after], [(before, after)])

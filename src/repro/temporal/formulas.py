"""The temporal extension L^T of a first-order language L.

Paper, Section 3.1: "The symbols of L^T are those of L, plus one modal
operator, the possibility operator ◇.  The modal operator of necessity
□ is the dual of ◇ in the sense that it can be introduced by definition
as □P ≡ ¬◇¬P."  We nevertheless provide :class:`Necessarily` as a
first-class node (it reads better in transition constraints) together
with :func:`necessity_as_dual` to expand it by its definition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.logic import formulas as fm
from repro.logic.terms import Var

__all__ = [
    "Possibly",
    "Necessarily",
    "is_modal",
    "necessity_as_dual",
    "modal_depth",
]


@dataclass(frozen=True)
class Possibly(fm.Formula):
    """The possibility operator ``<>P``: P holds in *some* accessible
    state."""

    body: fm.Formula

    def free_vars(self) -> frozenset[Var]:
        """The set of free variables of the formula."""
        return self.body.free_vars()

    def subformulas(self) -> Iterator[fm.Formula]:
        """Yield the formula itself and every subformula, pre-order."""
        yield self
        yield from self.body.subformulas()

    def __str__(self) -> str:
        return f"<>{_paren(self.body)}"


@dataclass(frozen=True)
class Necessarily(fm.Formula):
    """The necessity operator ``[]P``: P holds in *every* accessible
    state.  Dual of :class:`Possibly` (``[]P ≡ ~<>~P``)."""

    body: fm.Formula

    def free_vars(self) -> frozenset[Var]:
        """The set of free variables of the formula."""
        return self.body.free_vars()

    def subformulas(self) -> Iterator[fm.Formula]:
        """Yield the formula itself and every subformula, pre-order."""
        yield self
        yield from self.body.subformulas()

    def __str__(self) -> str:
        return f"[]{_paren(self.body)}"


def _paren(formula: fm.Formula) -> str:
    if isinstance(formula, (fm.Forall, fm.Exists)):
        return f"({formula})"
    return str(formula)


def is_modal(formula: fm.Formula) -> bool:
    """True iff the formula contains a modal operator.

    The paper's distinction: axioms *without* modalities are static
    constraints; axioms *with* modalities are transition constraints.
    """
    return any(
        isinstance(sub, (Possibly, Necessarily))
        for sub in formula.subformulas()
    )


def necessity_as_dual(formula: fm.Formula) -> fm.Formula:
    """Rewrite every ``[]P`` into ``~<>~P`` (the paper's definition).

    The result contains only the primitive possibility operator; the
    temporal semantics treats both forms identically, which is verified
    by property tests.
    """
    if isinstance(formula, Necessarily):
        return fm.Not(Possibly(fm.Not(necessity_as_dual(formula.body))))
    if isinstance(formula, Possibly):
        return Possibly(necessity_as_dual(formula.body))
    if isinstance(formula, fm.Not):
        return fm.Not(necessity_as_dual(formula.body))
    if isinstance(formula, (fm.And, fm.Or, fm.Implies, fm.Iff)):
        return type(formula)(
            necessity_as_dual(formula.lhs), necessity_as_dual(formula.rhs)
        )
    if isinstance(formula, (fm.Forall, fm.Exists)):
        return type(formula)(formula.var, necessity_as_dual(formula.body))
    return formula


def modal_depth(formula: fm.Formula) -> int:
    """Maximum nesting depth of modal operators in ``formula``."""
    if isinstance(formula, (Possibly, Necessarily)):
        return 1 + modal_depth(formula.body)
    if isinstance(formula, fm.Not):
        return modal_depth(formula.body)
    if isinstance(formula, (fm.And, fm.Or, fm.Implies, fm.Iff)):
        return max(modal_depth(formula.lhs), modal_depth(formula.rhs))
    if isinstance(formula, (fm.Forall, fm.Exists)):
        return modal_depth(formula.body)
    return 0

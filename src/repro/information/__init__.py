"""Information level (paper, Section 3): temporal first-order theories
describing the database by its information contents alone — which
states are consistent, which transitions are acceptable."""

from repro.information.consistency import (
    ConsistencyReport,
    check_history,
    check_state,
    check_transition,
    is_acceptable_transition,
    is_consistent_state,
)
from repro.information.spec import InformationSpec

__all__ = [
    "InformationSpec",
    "ConsistencyReport",
    "is_consistent_state",
    "is_acceptable_transition",
    "check_state",
    "check_transition",
    "check_history",
]

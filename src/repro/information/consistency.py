"""Consistency checks at the information level.

Paper, Section 3.1: "A structure A in S corresponds to a consistent
state iff it is a model of A1" — for the static constraints; the
transition constraints restrict R.  This module decides:

* whether a single state is consistent (static constraints);
* whether a single transition (before → after) is acceptable
  (transition constraints over the two-state universe);
* whether an entire history (linear run) satisfies all axioms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.logic.formulas import Formula
from repro.logic.semantics import satisfies
from repro.logic.structures import Structure
from repro.information.spec import InformationSpec
from repro.temporal.kripke import (
    KripkeUniverse,
    linear_history,
    transition_pair,
)
from repro.temporal.semantics import holds_at_every_state

__all__ = [
    "ConsistencyReport",
    "is_consistent_state",
    "is_acceptable_transition",
    "check_state",
    "check_transition",
    "check_history",
]


@dataclass(frozen=True)
class ConsistencyReport:
    """Outcome of a consistency check.

    Attributes:
        ok: True iff every checked axiom held.
        violations: the axioms that failed, with a description of
            where they failed.
    """

    ok: bool
    violations: tuple[tuple[Formula, str], ...] = field(
        default_factory=tuple
    )

    def __bool__(self) -> bool:
        return self.ok

    def __str__(self) -> str:
        if self.ok:
            return "consistent"
        lines = ["inconsistent:"]
        for axiom, where in self.violations:
            lines.append(f"  {axiom}   [{where}]")
        return "\n".join(lines)


def is_consistent_state(spec: InformationSpec, state: Structure) -> bool:
    """True iff ``state`` satisfies every static constraint of ``spec``."""
    return check_state(spec, state).ok


def check_state(spec: InformationSpec, state: Structure) -> ConsistencyReport:
    """Check every static constraint against one state, with witnesses."""
    violations = [
        (axiom, "static constraint violated")
        for axiom in spec.static_constraints
        if not satisfies(state, axiom)
    ]
    return ConsistencyReport(not violations, tuple(violations))


def is_acceptable_transition(
    spec: InformationSpec, before: Structure, after: Structure
) -> bool:
    """True iff the single step before → after obeys all transition
    constraints (checked in the two-state universe at ``before``)."""
    return check_transition(spec, before, after).ok


def check_transition(
    spec: InformationSpec, before: Structure, after: Structure
) -> ConsistencyReport:
    """Check all transition constraints against one step, with witnesses.

    The step is modelled as the universe ``({before, after},
    {(before, after)})`` with accessibility taken *reflexively* — the
    "henceforth" reading of ``[]`` — and each constraint must hold at
    every state.  This matches the paper's own expansion in Section
    4.4d, which translates ``[](takes(s,c) -> [](exists c'. ...))``
    into "if takes(s,c) holds at σ then the consequent holds at every δ
    with F(σ,δ)" where F is the *reachability* relation: the antecedent
    state itself is covered, which a strict (irreflexive) successor
    reading would miss.
    """
    universe = transition_pair(before, after).reflexive_closure()
    violations = []
    for axiom in spec.transition_constraints:
        if not holds_at_every_state(universe, axiom):
            violations.append((axiom, "transition constraint violated"))
    return ConsistencyReport(not violations, tuple(violations))


def check_history(
    spec: InformationSpec, states: list[Structure]
) -> ConsistencyReport:
    """Check a whole linear run ``s0 → s1 → ... → sn``.

    Static constraints are checked at every state; transition
    constraints are checked at every state of the future-of universe
    built from the run (accessibility = reflexive-transitive
    successorship, the reachability relation F of the paper).
    """
    violations: list[tuple[Formula, str]] = []
    for index, state in enumerate(states):
        for axiom in spec.static_constraints:
            if not satisfies(state, axiom):
                violations.append((axiom, f"state {index}"))
    if len(states) >= 1 and spec.transition_constraints:
        universe: KripkeUniverse = linear_history(states).reflexive_closure()
        for axiom in spec.transition_constraints:
            if not holds_at_every_state(universe, axiom):
                violations.append((axiom, "history universe"))
    return ConsistencyReport(not violations, tuple(violations))

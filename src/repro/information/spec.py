"""Information-level specifications T1 = (L1, A1).

Paper, Section 3.1: "a data base is specified at the information level
by defining a theory T1 = (L1, A1), where L1 is a temporal extension of
a (many-sorted) first-order language L and A1 is a set of axioms.  The
non-logical symbols of L1 describe the data base data structures and
all ordinary symbols (...).  Symbols representing data base structures
are called db-predicate symbols."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SpecificationError
from repro.logic.formulas import Formula
from repro.logic.signature import PredicateSymbol, Signature
from repro.temporal.constraints import split_axioms

__all__ = ["InformationSpec"]


@dataclass(frozen=True)
class InformationSpec:
    """A first-level (information level) specification.

    Attributes:
        signature: the non-logical symbols of L1 (db-predicates are
            the predicate symbols flagged ``db=True``).
        axioms: the axiom set A1 (closed temporal formulas).  Axioms
            without modalities are static constraints; the rest are
            transition constraints.
        name: an optional human-readable name for the application.
    """

    signature: Signature
    axioms: tuple[Formula, ...] = field(default_factory=tuple)
    name: str = "unnamed application"

    def __post_init__(self) -> None:
        if not self.signature.db_predicates:
            raise SpecificationError(
                "an information-level specification needs at least one "
                "db-predicate symbol"
            )
        for axiom in self.axioms:
            if not axiom.is_closed:
                raise SpecificationError(
                    f"axiom is not a sentence: {axiom}"
                )

    @property
    def db_predicates(self) -> tuple[PredicateSymbol, ...]:
        """The db-predicate symbols describing database structures."""
        return self.signature.db_predicates

    @property
    def static_constraints(self) -> tuple[Formula, ...]:
        """Axioms that do not involve modalities."""
        static, _ = split_axioms(list(self.axioms))
        return static

    @property
    def transition_constraints(self) -> tuple[Formula, ...]:
        """Axioms that involve modalities."""
        _, transition = split_axioms(list(self.axioms))
        return transition

    def __str__(self) -> str:
        lines = [f"Information-level specification: {self.name}"]
        lines.append("  db-predicates:")
        for pred in self.db_predicates:
            lines.append(f"    {pred}")
        lines.append("  static constraints:")
        for axiom in self.static_constraints:
            lines.append(f"    {axiom}")
        lines.append("  transition constraints:")
        for axiom in self.transition_constraints:
            lines.append(f"    {axiom}")
        return "\n".join(lines)

"""`repro.runtime`: a serving runtime that executes verified specs.

ROADMAP item 1 made literal: instead of replaying ground trace terms
through the rewrite engine, a verified application is *served* from an
incremental materialized-state store.  The package provides:

* :mod:`repro.runtime.state` — the store: one cell per simple
  observation, updated in O(delta) by per-update programs compiled
  from the Q-equations;
* :mod:`repro.runtime.guards` — the application's verified Section 4.4
  static/transition constraints compiled into per-update admission
  checks that reject violating transactions with a provenance-style
  witness;
* :mod:`repro.runtime.journal` — a write-ahead journal of update
  terms with fsync batching, snapshot compaction and crash-recovery
  replay;
* :mod:`repro.runtime.service` — :class:`~repro.runtime.service.SpecRuntime`,
  the admission pipeline tying store, guards and journal together;
* :mod:`repro.runtime.server` / :mod:`repro.runtime.client` — an
  asyncio JSON-lines server (``repro serve``) and a small blocking
  client;
* :mod:`repro.runtime.apps` — the registry of shipped applications
  the server can host (bank, courses, projects, library).
"""

from repro.runtime.guards import AdmissionGuard, GuardViolation
from repro.runtime.journal import Journal, RecoveredLog
from repro.runtime.service import ExecutionResult, SpecRuntime
from repro.runtime.state import MaterializedState, UpdatePlan

__all__ = [
    "AdmissionGuard",
    "GuardViolation",
    "Journal",
    "RecoveredLog",
    "ExecutionResult",
    "SpecRuntime",
    "MaterializedState",
    "UpdatePlan",
]

"""Compatibility re-export: the ground-closure compiler moved to
:mod:`repro.algebraic.compiler` (the packed explorer compiles update
plans below the runtime layer); every name is re-exported unchanged.
"""

from repro.algebraic.compiler import (
    AtomHook,
    Cell,
    DomainOf,
    Getter,
    UnsupportedTermError,
    _combine,
    _const,
    _junction,
    compile_ground_formula,
    compile_ground_term,
)

__all__ = [
    "AtomHook",
    "Cell",
    "DomainOf",
    "Getter",
    "UnsupportedTermError",
    "_combine",
    "_const",
    "_junction",
    "compile_ground_formula",
    "compile_ground_term",
]

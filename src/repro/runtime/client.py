"""A small blocking client for the JSON-lines runtime server.

Used by the tests and the CI serve smoke; any JSON-lines capable tool
works just as well (the protocol is documented in
:mod:`repro.runtime.server`).
"""

from __future__ import annotations

import json
import socket
import time

from repro.errors import ServingError

__all__ = ["RuntimeClient", "wait_until_ready"]


class RuntimeClient:
    """One blocking connection to a runtime server.

    Args:
        host / port: the server address.
        timeout: per-operation socket timeout in seconds.
    """

    def __init__(
        self, host: str, port: int, timeout: float = 10.0
    ):
        self._sock = socket.create_connection(
            (host, port), timeout=timeout
        )
        self._file = self._sock.makefile("rw", encoding="utf-8")

    def request(self, payload: dict) -> dict:
        """Send one request object and return the decoded response.

        Raises:
            ServingError: on a closed connection or non-JSON reply.
        """
        self._file.write(json.dumps(payload) + "\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServingError("server closed the connection")
        try:
            return json.loads(line)
        except ValueError as exc:
            raise ServingError(
                f"invalid response line: {line!r}"
            ) from exc

    # Convenience wrappers -------------------------------------------------
    def ping(self) -> dict:
        """``{"op": "ping"}``."""
        return self.request({"op": "ping"})

    def query(self, name: str, *params: str) -> dict:
        """Query ``name(params)``."""
        return self.request(
            {"op": "query", "query": name, "params": list(params)}
        )

    def update(self, name: str, *params: str) -> dict:
        """Submit update ``name(params)`` for admission."""
        return self.request(
            {"op": "update", "update": name, "params": list(params)}
        )

    def stats(self) -> dict:
        """``{"op": "stats"}``."""
        return self.request({"op": "stats"})

    def telemetry(self, events: int = 32) -> dict:
        """``{"op": "telemetry"}`` — the live telemetry snapshot."""
        return self.request({"op": "telemetry", "events": events})

    def shutdown(self) -> dict:
        """Ask the server to stop (needs ``allow_shutdown``)."""
        return self.request({"op": "shutdown"})

    def close(self) -> None:
        """Close the connection."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "RuntimeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def wait_until_ready(
    host: str, port: int, timeout: float = 15.0
) -> RuntimeClient:
    """Poll until the server accepts a ping, then return the client.

    Raises:
        ServingError: when the deadline passes without a pong.
    """
    deadline = time.monotonic() + timeout
    last_error: Exception | None = None
    while time.monotonic() < deadline:
        try:
            client = RuntimeClient(host, port, timeout=timeout)
            response = client.ping()
            if response.get("pong"):
                return client
            client.close()
        except (OSError, ServingError) as exc:
            last_error = exc
            time.sleep(0.05)
    raise ServingError(
        f"server at {host}:{port} not ready within {timeout}s: "
        f"{last_error}"
    )

"""Write-ahead journal of update terms.

Durability follows the classic WAL discipline, specialized to the
paper's setting: the journal records the **ground update terms** — the
trace constructors — not the cell deltas, so a recovered store is
rebuilt by exactly the semantics that produced it (replay through the
:class:`~repro.runtime.state.MaterializedState` plans).

On-disk layout, inside one journal directory:

* ``journal.jsonl`` — one JSON object per admitted update::

      {"seq": 7, "update": "deposit", "params": ["a1"], "crc": 1234}

  ``crc`` is the CRC-32 of the canonical JSON encoding (sorted keys,
  no spaces) of the entry without the ``crc`` field.  Appends are
  buffered and fsynced every ``fsync_batch`` entries (group commit).

* ``snapshot.json`` — the compaction snapshot: the full cell store and
  the sequence number it covers, CRC-protected and written atomically
  (temp file + fsync + ``os.replace``).  Compaction truncates the
  journal only after the snapshot is durable, so a crash at any point
  leaves a recoverable directory.

Recovery (:meth:`Journal.recover`) loads the snapshot if present, then
replays journal entries with ``seq`` greater than the snapshot's.  A
truncated or corrupt *tail* — torn final write, bad CRC, non-monotone
sequence — ends replay with a warning rather than an error: everything
before the first bad record is kept, matching the usual WAL contract.
A corrupt *snapshot* raises :class:`~repro.errors.JournalError`, since
snapshots are written atomically and a bad one means real damage.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass, field
from typing import Hashable, Mapping

from repro.errors import JournalError
from repro.obs.telemetry import TEL_STATE as _TEL
from repro.obs.tracer import OBS_STATE as _OBS

__all__ = ["Journal", "RecoveredLog"]

Cell = tuple[str, tuple[str, ...]]
Value = Hashable

_JOURNAL_NAME = "journal.jsonl"
_SNAPSHOT_NAME = "snapshot.json"


def _canonical(payload: dict) -> bytes:
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def _crc(payload: dict) -> int:
    return zlib.crc32(_canonical(payload))


@dataclass
class RecoveredLog:
    """Outcome of :meth:`Journal.recover`.

    Attributes:
        cells: the compaction snapshot's cell store, or ``None`` when
            no snapshot exists (replay starts from the initial state).
        seq: the sequence number the snapshot covers (0 without one).
        entries: the surviving journal records past the snapshot, as
            ``(seq, update, params)`` triples in order.
        warnings: human-readable notes about skipped tail records.
    """

    cells: dict[Cell, Value] | None
    seq: int
    entries: list[tuple[int, str, tuple[str, ...]]] = field(
        default_factory=list
    )
    warnings: list[str] = field(default_factory=list)

    @property
    def last_seq(self) -> int:
        """Highest sequence number recovered (snapshot or entries)."""
        if self.entries:
            return self.entries[-1][0]
        return self.seq


class Journal:
    """Append-only journal over one directory.

    Args:
        directory: the journal directory (created if missing).
        fsync_batch: fsync after this many buffered appends; 1 gives
            per-update durability, larger values group-commit.
        fsync: set False to skip ``os.fsync`` entirely (fast, test- and
            benchmark-friendly; crash durability is then up to the OS).
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        fsync_batch: int = 64,
        fsync: bool = True,
    ):
        if fsync_batch < 1:
            raise JournalError("fsync_batch must be at least 1")
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.journal_path = os.path.join(self.directory, _JOURNAL_NAME)
        self.snapshot_path = os.path.join(
            self.directory, _SNAPSHOT_NAME
        )
        self._fsync_batch = fsync_batch
        self._fsync = fsync
        self._pending = 0
        self.appends = 0
        self.syncs = 0
        self.compactions = 0
        try:
            self._file = open(
                self.journal_path, "a", encoding="utf-8"
            )
        except OSError as exc:
            raise JournalError(
                f"cannot open journal at {self.journal_path}: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(
        self, seq: int, update: str, params: tuple[str, ...]
    ) -> None:
        """Record one admitted update; flushes every ``fsync_batch``."""
        t0 = time.perf_counter_ns() if _TEL.enabled else 0
        body = {"seq": seq, "update": update, "params": list(params)}
        body["crc"] = _crc(body)
        self._file.write(
            json.dumps(body, sort_keys=True, separators=(",", ":"))
            + "\n"
        )
        self.appends += 1
        self._pending += 1
        if self._pending >= self._fsync_batch:
            self.flush()
        if t0:
            _TEL.telemetry.observe(
                "journal.append",
                time.perf_counter_ns() - t0,
                counter="journal.appends",
            )

    def flush(self) -> None:
        """Flush buffered appends and fsync (unless fsync is off)."""
        if self._file.closed:
            return
        batch = self._pending
        t0 = time.perf_counter_ns() if _TEL.enabled and batch else 0
        self._file.flush()
        if self._fsync:
            os.fsync(self._file.fileno())
        if batch:
            self.syncs += 1
            if _OBS.enabled:
                _OBS.tracer.count("runtime.journal.syncs")
            if t0:
                _TEL.telemetry.observe(
                    "journal.fsync",
                    time.perf_counter_ns() - t0,
                    counter="journal.syncs",
                    batch=batch,
                )
        self._pending = 0

    def compact(self, cells: Mapping[Cell, Value], seq: int) -> None:
        """Write a durable snapshot covering ``seq`` and truncate the
        journal.  Crash-safe: the snapshot replaces atomically, and
        stale journal entries surviving a crash before truncation are
        filtered by sequence number on recovery."""
        t0 = time.perf_counter_ns() if _TEL.enabled else 0
        self.flush()
        body = {
            "seq": seq,
            "cells": sorted(
                [query, list(params), value]
                for (query, params), value in cells.items()
            ),
        }
        body["crc"] = _crc(body)
        tmp_path = self.snapshot_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as tmp:
            json.dump(body, tmp, sort_keys=True)
            tmp.flush()
            if self._fsync:
                os.fsync(tmp.fileno())
        os.replace(tmp_path, self.snapshot_path)
        self._file.close()
        self._file = open(self.journal_path, "w", encoding="utf-8")
        self.flush()
        self.compactions += 1
        if _OBS.enabled:
            _OBS.tracer.count("runtime.journal.compactions")
        if t0:
            elapsed = time.perf_counter_ns() - t0
            telemetry = _TEL.telemetry
            telemetry.observe(
                "journal.compaction",
                elapsed,
                counter="journal.compactions",
                seq=seq,
                cells=len(cells),
            )
            telemetry.event(
                "info",
                "journal.compaction",
                elapsed / 1e6,
                seq=seq,
                cells=len(cells),
            )

    def close(self) -> None:
        """Flush and close the journal file."""
        if not self._file.closed:
            self.flush()
            self._file.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover(self) -> RecoveredLog:
        """Read the snapshot and the surviving journal entries.

        Raises:
            JournalError: on a corrupt snapshot (journal tail damage
                is recovered past, with warnings).
        """
        cells, seq = self._read_snapshot()
        recovered = RecoveredLog(cells, seq)
        last_seq = seq
        try:
            with open(self.journal_path, encoding="utf-8") as handle:
                lines = handle.readlines()
        except FileNotFoundError:
            lines = []
        for number, line in enumerate(lines, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                body = json.loads(stripped)
                crc = body.pop("crc")
                entry_seq = body["seq"]
                update = body["update"]
                params = tuple(body["params"])
            except (ValueError, KeyError, TypeError, AttributeError):
                recovered.warnings.append(
                    f"journal entry {number} is truncated or "
                    "malformed; dropping it and the tail"
                )
                break
            if crc != _crc(body):
                recovered.warnings.append(
                    f"journal entry {number} fails its checksum; "
                    "dropping it and the tail"
                )
                break
            if entry_seq <= seq:
                continue  # pre-compaction leftover: superseded
            if entry_seq != last_seq + 1:
                recovered.warnings.append(
                    f"journal entry {number} has sequence "
                    f"{entry_seq}, expected {last_seq + 1}; dropping "
                    "it and the tail"
                )
                break
            recovered.entries.append((entry_seq, update, params))
            last_seq = entry_seq
        return recovered

    def _read_snapshot(self) -> tuple[dict[Cell, Value] | None, int]:
        try:
            with open(self.snapshot_path, encoding="utf-8") as handle:
                body = json.load(handle)
        except FileNotFoundError:
            return None, 0
        except ValueError as exc:
            raise JournalError(
                f"snapshot {self.snapshot_path} is not valid JSON: "
                f"{exc}"
            ) from exc
        try:
            crc = body.pop("crc")
            seq = body["seq"]
            rows = body["cells"]
        except (KeyError, TypeError, AttributeError) as exc:
            raise JournalError(
                f"snapshot {self.snapshot_path} is malformed"
            ) from exc
        if crc != _crc(body):
            raise JournalError(
                f"snapshot {self.snapshot_path} fails its checksum"
            )
        cells = {
            (query, tuple(params)): value
            for query, params, value in rows
        }
        return cells, seq

"""Admission guards: verified constraints as runtime checks.

The information level states *what* a consistent database is (static
constraints) and which steps are acceptable (transition constraints,
Section 4.4 b/d); verification established that the algebraic level
respects them.  The serving runtime makes the constraints operational:
each axiom is grounded over the application's carriers into
**instances** — one per outer-∀ binding — and each instance is
compiled, through the refinement interpretation I (db-predicate →
L2 Boolean term), into a closure over store cells plus its static read
set (:mod:`repro.runtime.compiler`).

Admission is then O(delta): instances are indexed by the cells they
read, and an update only re-checks the instances whose reads intersect
its write set.  The skip is sound by induction:

* a **static** instance whose reads are disjoint from the delta
  evaluates identically before and after, and it held before;
* a **transition** instance is compiled in the same two-state universe
  as :func:`repro.information.consistency.check_transition` (reflexive
  closure of ``{(before, after)}``, checked at both states).  If its
  reads miss the delta it evaluates as on the identity step
  ``(before, before)``, and the identity step held by induction: it is
  checked once at startup (:meth:`AdmissionGuard.check_now`) and
  re-established at every admitted step by the at-``after`` half of
  the two-state check.

A failing instance is reported as a :class:`GuardViolation` — a
provenance-style witness naming the axiom, the carrier binding of the
failing instance, and the cells it read.

On top of the instance index sits a second compilation stage:
**decision tables**.  Every cell ranges over a small finite domain
(Boolean, or the query's declared result domain), so instances sharing
a read set are conjoined and evaluated over *every* valuation of those
cells once, at compile time.  The admission hot path then performs a
single tuple-membership test per read-set group instead of re-running
the instance closures; groups that hold under every valuation are
tautologies of the cell representation (e.g. totality/functionality of
a stored function) and are dropped entirely.  Instance closures remain
the source of truth for witnesses and for :meth:`check_now`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.errors import ServingError
from repro.algebraic.spec import AlgebraicSpec
from repro.information.spec import InformationSpec
from repro.logic import formulas as fm
from repro.logic.sorts import BOOLEAN, Sort
from repro.logic.terms import App, Term, Var
from repro.refinement.interpretation import Interpretation
from repro.runtime.compiler import (
    Cell,
    Getter,
    UnsupportedTermError,
    _combine,
    _const,
    _junction,
    compile_ground_formula,
    compile_ground_term,
)
from repro.temporal.formulas import Necessarily, Possibly, is_modal

__all__ = ["AdmissionGuard", "GuardViolation"]

#: Accessibility of the two-state step universe, reflexively closed —
#: state 0 is ``before``, state 1 is ``after``; mirrors
#: ``transition_pair(before, after).reflexive_closure()``.
_REACH = ((0, 1), (1,))

#: Valuation-count cap for decision-table compilation; a read-set
#: group whose valuation space is larger keeps its closures instead.
_TABLE_LIMIT = 4096


@dataclass(frozen=True)
class GuardViolation:
    """Witness of one rejected update.

    Attributes:
        kind: ``"precondition"``, ``"static"`` or ``"transition"``.
        constraint: the violated axiom (or precondition), printed.
        binding: carrier values of the failing instance's outer-∀
            variables (empty for preconditions).
        cells: the store cells the failing check read — the
            provenance of the rejection.
    """

    kind: str
    constraint: str
    binding: tuple[tuple[str, str], ...] = ()
    cells: tuple[Cell, ...] = ()

    def to_dict(self) -> dict:
        """JSON-ready form (used by the server's error responses)."""
        return {
            "kind": self.kind,
            "constraint": self.constraint,
            "binding": dict(self.binding),
            "cells": [
                [query, list(params)] for query, params in self.cells
            ],
        }

    def __str__(self) -> str:
        where = (
            " at " + ", ".join(f"{k}={v}" for k, v in self.binding)
            if self.binding
            else ""
        )
        return f"{self.kind} violation{where}: {self.constraint}"


@dataclass(frozen=True)
class _Instance:
    """One grounded constraint instance with its compiled check."""

    axiom: fm.Formula
    kind: str
    binding: tuple[tuple[str, str], ...]
    closure: Callable
    reads: frozenset[Cell] = field(default_factory=frozenset)

    def violation(self) -> GuardViolation:
        return GuardViolation(
            self.kind,
            str(self.axiom),
            self.binding,
            tuple(sorted(self.reads)),
        )


@dataclass(frozen=True)
class _Table:
    """All instances sharing one read set, as a decision table.

    Attributes:
        cells: the read cells, in a fixed order.
        allowed: for a static table, the set of permitted value tuples
            (one value per cell); for a transition table, the set of
            permitted ``(before tuple, after tuple)`` pairs.  ``None``
            when the valuation space exceeded :data:`_TABLE_LIMIT` —
            the hot path then falls back to ``members``.
        members: the underlying instances (witness lookup, fallback).
    """

    cells: tuple[Cell, ...]
    allowed: frozenset | None
    members: tuple[_Instance, ...]

    def static_witness(self, get: Getter) -> GuardViolation:
        """The violation of the first member failing on ``get``."""
        for instance in self.members:
            if not instance.closure(get):
                return instance.violation()
        return self.members[0].violation()

    def transition_witness(self, gets) -> GuardViolation:
        """The violation of the first member failing on the step."""
        for instance in self.members:
            if not instance.closure(gets):
                return instance.violation()
        return self.members[0].violation()


class AdmissionGuard:
    """Per-update admission checks for one verified application.

    Args:
        information: the level-1 specification whose axioms guard
            admission.
        spec: the algebraic specification serving the store (its
            signature interprets the compiled L2 terms).
        carriers: finite carrier sets, by sort, used to ground the
            axioms (the same carriers verification used).
        interpretation: the refinement interpretation I; defaults to
            the homonym interpretation.

    Raises:
        ServingError: if an axiom falls outside the compilable
            fragment (the shipped applications are all inside it).
    """

    def __init__(
        self,
        information: InformationSpec,
        spec: AlgebraicSpec,
        carriers: dict[Sort, list[str]],
        interpretation: Interpretation | None = None,
    ):
        self.information = information
        self.spec = spec
        self.signature = spec.signature
        self.carriers = {
            sort: list(values) for sort, values in carriers.items()
        }
        self.interpretation = interpretation or Interpretation.homonym(
            information, spec.signature
        )
        self._static: list[_Instance] = []
        self._transition: list[_Instance] = []
        self._static_by_cell: dict[Cell, list[_Instance]] = {}
        self._transition_by_cell: dict[Cell, list[_Instance]] = {}
        self._static_tables: list[_Table] = []
        self._transition_tables: list[_Table] = []
        self._static_tables_by_cell: dict[Cell, list[_Table]] = {}
        self._transition_tables_by_cell: dict[Cell, list[_Table]] = {}
        try:
            self._compile_axioms()
            self._build_tables()
        except UnsupportedTermError as exc:
            raise ServingError(
                f"cannot compile admission guards: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def _domain_of(self, sort: Sort) -> Iterable[str]:
        values = self.carriers.get(sort)
        if values is not None:
            return values
        return self.signature.domain(sort)

    def _resolve_arg(self, term: Term, env: dict[Var, str]) -> str:
        if isinstance(term, Var):
            try:
                return env[term]
            except KeyError:
                raise UnsupportedTermError(
                    f"unbound variable {term} in guard atom"
                ) from None
        if isinstance(term, App) and not term.args:
            return term.symbol.name
        raise UnsupportedTermError(
            f"guard atom argument {term} is not a variable or constant"
        )

    def _atom_hook(self, atom: fm.Atom, env: dict[Var, str]):
        """Compile a db-predicate atom through the interpretation I."""
        values = tuple(
            self._resolve_arg(arg, env) for arg in atom.args
        )
        interp = self.interpretation.of(atom.predicate.name)
        inner_env: dict[Var, str] = dict(
            zip(interp.variables, values)
        )
        return compile_ground_term(
            interp.term, inner_env, self.signature
        )

    def _compile_axioms(self) -> None:
        for axiom in self.information.static_constraints:
            for binding, body in self._peel(axiom):
                closure, reads = compile_ground_formula(
                    body,
                    {var: value for var, value in binding},
                    domain_of=self._domain_of,
                    atom_hook=self._atom_hook,
                )
                if not reads and closure(None):
                    continue  # instance folded to True: unfalsifiable
                instance = _Instance(
                    axiom,
                    "static",
                    tuple((v.name, value) for v, value in binding),
                    closure,
                    frozenset(reads),
                )
                self._static.append(instance)
                for cell in instance.reads:
                    self._static_by_cell.setdefault(cell, []).append(
                        instance
                    )
        for axiom in self.information.transition_constraints:
            for binding, body in self._peel(axiom):
                env = {var: value for var, value in binding}
                # holds_at_every_state: the constraint must hold
                # evaluated at *both* universe states.
                at_before, before_reads = self._compile_modal(
                    body, env, 0
                )
                at_after, after_reads = self._compile_modal(
                    body, env, 1
                )
                both, reads = _combine(
                    "and", at_before, before_reads, at_after,
                    after_reads,
                )
                if not reads and both(None):
                    continue  # instance folded to True: unfalsifiable
                instance = _Instance(
                    axiom,
                    "transition",
                    tuple((v.name, value) for v, value in binding),
                    both,
                    frozenset(reads),
                )
                self._transition.append(instance)
                for cell in instance.reads:
                    self._transition_by_cell.setdefault(
                        cell, []
                    ).append(instance)

    # ------------------------------------------------------------------
    # decision tables
    # ------------------------------------------------------------------
    def _cell_values(self, cell: Cell) -> tuple:
        """Every value the cell can hold: Boolean queries store
        ``False``/``True``, others their result sort's domain."""
        sort = self.signature.query(cell[0]).result_sort
        if sort == BOOLEAN:
            return (False, True)
        return tuple(self._domain_of(sort))

    def _build_tables(self) -> None:
        """Conjoin instances by read set into decision tables and
        drop read-set groups holding under every valuation (see the
        module docstring); rebuilds the instance index without the
        dropped tautologies."""
        self._static, self._static_tables = self._tabulate(
            self._static, transition=False
        )
        self._transition, self._transition_tables = self._tabulate(
            self._transition, transition=True
        )
        self._static_by_cell = _index_by_cell(self._static)
        self._transition_by_cell = _index_by_cell(self._transition)
        self._static_tables_by_cell = _index_by_cell(
            self._static_tables
        )
        self._transition_tables_by_cell = _index_by_cell(
            self._transition_tables
        )

    def _tabulate(
        self, instances: list[_Instance], transition: bool
    ) -> tuple[list[_Instance], list[_Table]]:
        groups: dict[frozenset[Cell], list[_Instance]] = {}
        for instance in instances:
            groups.setdefault(instance.reads, []).append(instance)
        kept: list[_Instance] = []
        tables: list[_Table] = []
        for reads, members in groups.items():
            cells = tuple(sorted(reads))
            domains = [self._cell_values(cell) for cell in cells]
            space = 1
            for domain in domains:
                space *= len(domain)
            if transition:
                space *= space
            if not (0 < space <= _TABLE_LIMIT):
                kept.extend(members)
                tables.append(
                    _Table(cells, None, tuple(members))
                )
                continue
            valuations = list(itertools.product(*domains))
            allowed = set()
            if transition:
                getters = [
                    dict(zip(cells, values)).__getitem__
                    for values in valuations
                ]
                for i, before_values in enumerate(valuations):
                    for j, after_values in enumerate(valuations):
                        gets = (getters[i], getters[j])
                        if all(
                            m.closure(gets) for m in members
                        ):
                            allowed.add(
                                (before_values, after_values)
                            )
            else:
                for values in valuations:
                    get = dict(zip(cells, values)).__getitem__
                    if all(m.closure(get) for m in members):
                        allowed.add(values)
            if len(allowed) == space:
                continue  # tautology of the cell representation
            kept.extend(members)
            tables.append(
                _Table(cells, frozenset(allowed), tuple(members))
            )
        return kept, tables

    def _peel(self, axiom: fm.Formula):
        """Ground an axiom's outer-∀ prefix over the carriers, yielding
        ``(binding, body)`` instances."""
        prefix: list[Var] = []
        body = axiom
        while isinstance(body, fm.Forall):
            prefix.append(body.var)
            body = body.body
        if not prefix:
            yield (), body
            return
        domains = [tuple(self._domain_of(v.sort)) for v in prefix]
        for values in itertools.product(*domains):
            yield tuple(zip(prefix, values)), body

    def _compile_modal(
        self, formula: fm.Formula, env: dict[Var, str], idx: int
    ):
        """Compile a (possibly modal) formula at universe state ``idx``
        into a closure over ``gets = (get_before, get_after)``."""
        if isinstance(formula, (Possibly, Necessarily)):
            conjunctive = isinstance(formula, Necessarily)
            parts = []
            reads: set[Cell] = set()
            for j in _REACH[idx]:
                closure, sub_reads = self._compile_modal(
                    formula.body, env, j
                )
                if not sub_reads:
                    constant = bool(closure(None))
                    if constant != conjunctive:
                        return _const(constant), frozenset()
                    continue
                parts.append(closure)
                reads |= sub_reads
            closure, reads = _junction(parts, reads, conjunctive)
            return closure, frozenset(reads)
        if isinstance(formula, fm.TrueF):
            return _const(True), frozenset()
        if isinstance(formula, fm.FalseF):
            return _const(False), frozenset()
        if isinstance(formula, fm.Atom):
            closure, reads = self._atom_hook(formula, env)
            if not reads:
                return _const(bool(closure(None))), frozenset()
            return (lambda gets: closure(gets[idx])), reads
        if isinstance(formula, fm.Equals):
            value = self._resolve_arg(
                formula.lhs, env
            ) == self._resolve_arg(formula.rhs, env)
            return _const(value), frozenset()
        if isinstance(formula, fm.Not):
            body, reads = self._compile_modal(formula.body, env, idx)
            if not reads:
                return _const(not body(None)), frozenset()
            return (lambda gets: not body(gets)), reads
        if isinstance(
            formula, (fm.And, fm.Or, fm.Implies, fm.Iff)
        ):
            lhs, lreads = self._compile_modal(formula.lhs, env, idx)
            rhs, rreads = self._compile_modal(formula.rhs, env, idx)
            name = {
                fm.And: "and",
                fm.Or: "or",
                fm.Implies: "implies",
                fm.Iff: "iff",
            }[type(formula)]
            closure, reads = _combine(name, lhs, lreads, rhs, rreads)
            return closure, frozenset(reads)
        if isinstance(formula, (fm.Forall, fm.Exists)):
            var = formula.var
            conjunctive = isinstance(formula, fm.Forall)
            parts = []
            reads: set[Cell] = set()
            for value in self._domain_of(var.sort):
                inner = dict(env)
                inner[var] = value
                closure, sub_reads = self._compile_modal(
                    formula.body, inner, idx
                )
                if not sub_reads:
                    constant = bool(closure(None))
                    if constant != conjunctive:
                        return _const(constant), frozenset()
                    continue
                parts.append(closure)
                reads |= sub_reads
            closure, reads = _junction(parts, reads, conjunctive)
            return closure, frozenset(reads)
        if is_modal(formula):
            raise UnsupportedTermError(
                f"unsupported modal construct {formula!r}"
            )
        raise UnsupportedTermError(
            f"cannot compile guard formula {formula!r}"
        )

    # ------------------------------------------------------------------
    # checking
    # ------------------------------------------------------------------
    @property
    def static_tables(self) -> tuple[_Table, ...]:
        """The static decision tables (tautologies already dropped) —
        the unit the relational compiler lowers to membership
        tables."""
        return tuple(self._static_tables)

    @property
    def transition_tables(self) -> tuple[_Table, ...]:
        """The transition decision tables."""
        return tuple(self._transition_tables)

    @property
    def static_instances(self) -> int:
        """Number of grounded static-constraint instances."""
        return len(self._static)

    @property
    def transition_instances(self) -> int:
        """Number of grounded transition-constraint instances."""
        return len(self._transition)

    def static_for(self, cells: Iterable[Cell]):
        """The static instances reading any of ``cells`` (the
        pipeline precomputes this per update plan)."""
        return tuple(_gather(self._static_by_cell, cells))

    def transition_for(self, cells: Iterable[Cell]):
        """The transition instances reading any of ``cells``."""
        return tuple(_gather(self._transition_by_cell, cells))

    def static_tables_for(self, cells: Iterable[Cell]):
        """The static decision tables touching any of ``cells`` (the
        admission hot path's unit of work)."""
        return tuple(_gather(self._static_tables_by_cell, cells))

    def transition_tables_for(self, cells: Iterable[Cell]):
        """The transition decision tables touching any of ``cells``."""
        return tuple(_gather(self._transition_tables_by_cell, cells))

    def static_violations(
        self, get: Getter, cells: Iterable[Cell] | None = None
    ) -> list[GuardViolation]:
        """Static instances failing on the state read through ``get``.

        With ``cells`` given, only the instances reading one of those
        cells are re-checked (the incremental path); ``None`` checks
        every instance.
        """
        if cells is None:
            candidates = self._static
        else:
            candidates = _gather(self._static_by_cell, cells)
        return [
            instance.violation()
            for instance in candidates
            if not instance.closure(get)
        ]

    def transition_violations(
        self,
        before: Getter,
        after: Getter,
        cells: Iterable[Cell] | None = None,
    ) -> list[GuardViolation]:
        """Transition instances failing on the step ``before → after``
        (two-state universe, reflexive, checked at both states)."""
        if cells is None:
            candidates = self._transition
        else:
            candidates = _gather(self._transition_by_cell, cells)
        gets = (before, after)
        return [
            instance.violation()
            for instance in candidates
            if not instance.closure(gets)
        ]

    def check_now(self, get: Getter) -> list[GuardViolation]:
        """Full (non-incremental) check of the current state: every
        static instance, and every transition instance on the identity
        step — the induction base the incremental path relies on."""
        return self.static_violations(get) + self.transition_violations(
            get, get
        )


def _gather(index: dict[Cell, list], cells: Iterable[Cell]) -> list:
    seen: set[int] = set()
    out: list = []
    for cell in cells:
        for item in index.get(cell, ()):
            if id(item) not in seen:
                seen.add(id(item))
                out.append(item)
    return out


def _index_by_cell(items: Iterable) -> dict[Cell, list]:
    index: dict[Cell, list] = {}
    for item in items:
        cells = (
            item.cells if isinstance(item, _Table) else item.reads
        )
        for cell in cells:
            index.setdefault(cell, []).append(item)
    return index

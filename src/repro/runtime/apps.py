"""Registry of servable applications.

Any verified :class:`~repro.core.framework.DesignFramework` can be
served; this module wires up the four shipped applications (the same
set the verification CLI knows) together with their structured
descriptions, so the runtime can reject precondition-false requests
instead of silently no-opping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ServingError
from repro.algebraic.description import StructuredDescription
from repro.core.framework import DesignFramework
from repro.runtime.service import SpecRuntime

__all__ = ["RuntimeApp", "available_applications", "build_app", "make_runtime"]


@dataclass(frozen=True)
class RuntimeApp:
    """One servable application: the design plus its descriptions."""

    name: str
    framework: DesignFramework
    descriptions: list[StructuredDescription]


def _bank() -> RuntimeApp:
    from repro.applications.bank import bank_descriptions, bank_framework

    framework = bank_framework()
    return RuntimeApp(
        "bank",
        framework,
        bank_descriptions(framework.algebraic.signature),
    )


def _courses() -> RuntimeApp:
    from repro.applications import courses

    framework = DesignFramework.from_sources(
        information=courses.courses_information(),
        algebraic=courses.courses_algebraic(),
        schema_source=courses.courses_schema_source(),
        carriers=courses.courses_information_carriers(),
        name="courses registrar (the paper's running example)",
    )
    return RuntimeApp(
        "courses",
        framework,
        courses.courses_descriptions(framework.algebraic.signature),
    )


def _projects() -> RuntimeApp:
    from repro.applications.projects import (
        projects_descriptions,
        projects_framework,
    )

    framework = projects_framework()
    return RuntimeApp(
        "projects",
        framework,
        projects_descriptions(framework.algebraic.signature),
    )


def _library() -> RuntimeApp:
    from repro.applications.library import (
        library_descriptions,
        library_framework,
    )

    framework = library_framework()
    return RuntimeApp(
        "library",
        framework,
        library_descriptions(framework.algebraic.signature),
    )


_FACTORIES: dict[str, Callable[[], RuntimeApp]] = {
    "bank": _bank,
    "courses": _courses,
    "projects": _projects,
    "library": _library,
}


def available_applications() -> tuple[str, ...]:
    """Names of the servable applications."""
    return tuple(_FACTORIES)


def build_app(name: str) -> RuntimeApp:
    """Build one servable application by name.

    Raises:
        ServingError: for an unknown application name.
    """
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ServingError(
            f"unknown application {name!r}; available: "
            + ", ".join(_FACTORIES)
        )
    return factory()


def make_runtime(name: str, **kwargs) -> SpecRuntime:
    """Build a :class:`SpecRuntime` serving application ``name``.

    Keyword arguments are forwarded to :class:`SpecRuntime`
    (``data_dir``, ``fsync_batch``, ``fsync``, ``compact_every``).
    """
    app = build_app(name)
    return SpecRuntime(app.framework, app.descriptions, **kwargs)

"""Asyncio JSON-lines server over a :class:`SpecRuntime`.

The wire protocol is one JSON object per line, both directions — easy
to drive from any language, ``nc``, or the blocking client in
:mod:`repro.runtime.client`.  Operations::

    {"op": "ping"}
    {"op": "query",  "query": "balance", "params": ["a1"]}
    {"op": "update", "update": "deposit", "params": ["a1"]}
    {"op": "state"}
    {"op": "stats"}
    {"op": "telemetry"}         # live histograms/rates/events
    {"op": "compact"}
    {"op": "shutdown"}          # honored only with allow_shutdown

Responses carry ``"ok": true`` plus the operation's payload, or
``"ok": false`` with an ``"error"`` string.  An *update* response is
``ok`` even when the guards reject it — the request was served; the
admission verdict is the payload's ``"accepted"`` field, with the
:class:`~repro.runtime.guards.GuardViolation` witness under
``"violation"``.

Request handling is synchronous (:meth:`RuntimeServer.handle_request`)
under a single event loop, so updates serialize naturally — the store
needs no locking.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal

from repro.errors import ReproError
from repro.obs.telemetry import TEL_STATE as _TEL
from repro.obs.tracer import OBS_STATE as _OBS
from repro.runtime.service import SpecRuntime

__all__ = ["RuntimeServer", "serve"]


class RuntimeServer:
    """A JSON-lines TCP front end for one :class:`SpecRuntime`.

    Args:
        runtime: the runtime to serve.
        host / port: bind address; port 0 picks a free port (read the
            chosen one from :attr:`port` after :meth:`start`).
        allow_shutdown: honor the ``shutdown`` operation (used by the
            CI smoke; production-style runs stop via signals).
    """

    def __init__(
        self,
        runtime: SpecRuntime,
        host: str = "127.0.0.1",
        port: int = 0,
        allow_shutdown: bool = False,
    ):
        self.runtime = runtime
        self.host = host
        self.port = port
        self.allow_shutdown = allow_shutdown
        self._server: asyncio.AbstractServer | None = None
        self._stopping = asyncio.Event()

    # ------------------------------------------------------------------
    # request handling (synchronous; unit-testable without sockets)
    # ------------------------------------------------------------------
    def handle_request(self, request: dict) -> tuple[dict, bool]:
        """Serve one decoded request.

        Returns ``(response, stop)`` — ``stop`` is True when the
        request asks the server to shut down (and may).
        """
        if _OBS.enabled:
            _OBS.tracer.count("runtime.server.requests")
        if not isinstance(request, dict):
            return {"ok": False, "error": "request must be an object"}, False
        op = request.get("op")
        try:
            if op == "ping":
                return {"ok": True, "pong": True}, False
            if op == "query":
                value = self.runtime.query(
                    request["query"], request.get("params", [])
                )
                return {"ok": True, "value": value}, False
            if op == "update":
                result = self.runtime.execute(
                    request["update"], request.get("params", [])
                )
                return {"ok": True, **result.to_dict()}, False
            if op == "state":
                cells = [
                    [query, list(params), value]
                    for (query, params), value in sorted(
                        self.runtime.store.cells.items()
                    )
                ]
                return {
                    "ok": True,
                    "seq": self.runtime.seq,
                    "cells": cells,
                }, False
            if op == "stats":
                return {
                    "ok": True,
                    "stats": self.runtime.stats,
                    "metrics": (
                        self.runtime.metrics_registry().to_dict()
                    ),
                }, False
            if op == "telemetry":
                if not _TEL.enabled:
                    return {
                        "ok": False,
                        "error": "telemetry is not enabled",
                    }, False
                events = request.get("events", 32)
                return {
                    "ok": True,
                    "application": self.runtime.name,
                    "telemetry": _TEL.telemetry.snapshot(
                        events=events
                    ),
                }, False
            if op == "compact":
                self.runtime.compact()
                return {"ok": True, "seq": self.runtime.seq}, False
            if op == "shutdown":
                if not self.allow_shutdown:
                    return {
                        "ok": False,
                        "error": "shutdown is not enabled",
                    }, False
                return {"ok": True, "bye": True}, True
            return {"ok": False, "error": f"unknown op {op!r}"}, False
        except (ReproError, KeyError, TypeError) as exc:
            return {"ok": False, "error": str(exc)}, False

    # ------------------------------------------------------------------
    # asyncio plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while not self._stopping.is_set():
                line = await reader.readline()
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                try:
                    request = json.loads(text)
                except ValueError:
                    response, stop = {
                        "ok": False,
                        "error": "invalid JSON",
                    }, False
                else:
                    response, stop = self.handle_request(request)
                writer.write(
                    (json.dumps(response) + "\n").encode("utf-8")
                )
                await writer.drain()
                if stop:
                    self._stopping.set()
                    break
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def start(self) -> None:
        """Bind and start accepting connections (non-blocking)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_stopped(self) -> None:
        """Run until a shutdown request or :meth:`stop` arrives, then
        close the listener and flush the runtime's journal."""
        if self._server is None:
            await self.start()
        try:
            await self._stopping.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            self.runtime.close()

    def stop(self) -> None:
        """Request a graceful stop (signal-handler safe)."""
        self._stopping.set()


def serve(
    runtime: SpecRuntime,
    host: str = "127.0.0.1",
    port: int = 0,
    allow_shutdown: bool = False,
    ready: "callable | None" = None,
    install_signal_handlers: bool = True,
) -> int:
    """Blocking entry point: serve ``runtime`` until stopped.

    ``ready(server)`` is called once the socket is bound (the CLI
    prints the ready line there).  Returns the process exit code.
    """

    async def _run() -> None:
        server = RuntimeServer(
            runtime, host, port, allow_shutdown=allow_shutdown
        )
        await server.start()
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGINT, signal.SIGTERM):
                with contextlib.suppress(
                    NotImplementedError, RuntimeError
                ):
                    loop.add_signal_handler(signum, server.stop)
        if ready is not None:
            ready(server)
        await server.serve_until_stopped()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        runtime.close()
    return 0

"""The incremental materialized-state store.

A served database state is the set of all *simple observations* — one
cell ``(query name, parameter values)`` per ground query instance,
exactly the entries of an interned
:class:`~repro.algebraic.algebra.Snapshot`.  Rather than re-reducing
the whole trace through the rewrite engine on every request, the store
keeps the cells in a plain dict and applies one update in O(delta):

1. the Q-equations ``q(a, u(b, U)) = rhs`` for update ``u`` are
   compiled **once per (update, params) pair** into an
   :class:`UpdatePlan` — for each candidate write cell, an ordered
   dispatch list of ``(condition, rhs)`` closures over the pre-state
   (see :mod:`repro.runtime.compiler`); equation order is declaration
   order, mirroring :class:`~repro.algebraic.rewriting.RewriteEngine`;
2. applying the plan evaluates the dispatch per candidate cell against
   the current cells and collects only the cells whose value changes.

Identity equations (frame equations and precondition-false
"otherwise" branches) are detected at the pattern level and never
produce writes; conditions that constant-fold to False are pruned at
compile time, so a typical plan touches a handful of cells.

Equations outside the canonical synthesized shape fall back to
:func:`~repro.algebraic.induction.abstract_successor` — the full
snapshot-to-snapshot evaluation used by the structural-induction
proofs — which keeps the store correct for any specification, just not
incremental.  The differential tests in ``tests/runtime/`` pin both
paths to full trace re-reduction.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Hashable, Mapping

from repro.errors import (
    IncompletenessError,
    ServingError,
    SignatureError,
)
from repro.obs.tracer import OBS_STATE as _OBS
from repro.algebraic.algebra import Snapshot, TraceAlgebra
from repro.algebraic.description import StructuredDescription
from repro.algebraic.induction import (
    abstract_successor,
    make_abstract_engine,
)
from repro.algebraic.spec import AlgebraicSpec
from repro.logic import formulas as fm
from repro.logic.sorts import BOOLEAN, STATE
from repro.logic.terms import App, Term, Var
from repro.runtime.compiler import (
    Cell,
    Getter,
    UnsupportedTermError,
    compile_ground_formula,
    compile_ground_term,
)

__all__ = ["MaterializedState", "UpdatePlan"]

Value = Hashable


@dataclass(frozen=True)
class UpdatePlan:
    """The compiled apply program for one ground update instance.

    Attributes:
        update: the update function's name.
        params: its ground parameter values.
        actions: per candidate write cell, the ordered dispatch list of
            ``(condition, rhs)`` closures; ``condition is None`` means
            unconditional, ``rhs is None`` means identity (no write).
        precondition: compiled admission predicate from the update's
            structured description, or ``None`` when the update has no
            precondition (or no description was supplied).
        precondition_reads: cells the precondition may read — the
            witness cells reported when admission fails.
        precondition_text: the precondition formula, printed (for the
            rejection witness).
        fallback: True when the equations fall outside the canonical
            fragment and applying must go through the rewrite engine.
    """

    update: str
    params: tuple[str, ...]
    actions: tuple[
        tuple[
            Cell,
            tuple[
                tuple[
                    Callable[[Getter], bool] | None,
                    Callable[[Getter], Value] | None,
                ],
                ...,
            ],
        ],
        ...,
    ]
    precondition: Callable[[Getter], bool] | None
    precondition_reads: frozenset[Cell]
    precondition_text: str = ""
    fallback: bool = False

    @property
    def candidate_cells(self) -> tuple[Cell, ...]:
        """The cells this plan may write (superset of any delta)."""
        return tuple(cell for cell, _ in self.actions)


def _is_identity(lhs: App, rhs: Term) -> bool:
    """True iff ``rhs`` is the lhs query applied to the same parameter
    pattern at the bare pre-state variable (a frame/otherwise branch).
    Terms are interned, so pattern equality is object comparison."""
    return (
        isinstance(rhs, App)
        and rhs.symbol == lhs.symbol
        and rhs.args[:-1] == lhs.args[:-1]
        and isinstance(rhs.args[-1], Var)
        and rhs.args[-1].sort == STATE
    )


class MaterializedState:
    """A mutable cell store for one algebraic specification.

    Args:
        spec: the (verified) algebraic specification.
        descriptions: the structured descriptions the equations were
            synthesized from; when given, each update's precondition is
            compiled into the plan's admission predicate, so the
            runtime can *reject* precondition-false requests instead of
            silently no-opping like the trace semantics.

    The initial cells are the entries of the initial trace's snapshot,
    so the store starts in exactly the state ``initiate`` denotes.
    """

    def __init__(
        self,
        spec: AlgebraicSpec,
        descriptions: list[StructuredDescription] | None = None,
    ):
        self.spec = spec
        self.signature = spec.signature
        self._algebra = TraceAlgebra(spec)
        self._abstract_engine = None
        self._descriptions = {
            d.update: d for d in (descriptions or [])
        }
        self._plans: dict[tuple[str, tuple[str, ...]], UpdatePlan] = {}
        initial = self._algebra.snapshot(self._algebra.initial_trace())
        self._cells: dict[Cell, Value] = {
            (query, params): value
            for (query, params), value in initial.entries
        }
        self._equals_hook = self._make_equals_hook()

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get(self, cell: Cell) -> Value:
        """The current value of one cell.

        Raises:
            ServingError: for an unknown query/parameter combination.
        """
        try:
            return self._cells[cell]
        except KeyError:
            raise ServingError(
                f"unknown observation cell {cell!r}"
            ) from None

    def query(self, name: str, params: tuple[str, ...]) -> Value:
        """Answer the query ``name(params)`` from the current cells."""
        return self.get((name, tuple(params)))

    @property
    def cells(self) -> Mapping[Cell, Value]:
        """Read-only view of the current cells."""
        return dict(self._cells)

    @property
    def getter(self) -> Callable[[Cell], Value]:
        """The raw cell reader compiled closures evaluate against."""
        return self._cells.__getitem__

    def snapshot(self) -> Snapshot:
        """The current state as an interned
        :class:`~repro.algebraic.algebra.Snapshot` (for differential
        tests and the abstract-successor fallback)."""
        return Snapshot(tuple(sorted(self._cells.items())))

    def load(self, cells: Mapping[Cell, Value]) -> None:
        """Replace the store contents (journal/snapshot recovery).

        Raises:
            ServingError: if the cell set differs from the schema's,
                or a value falls outside its query's result domain
                (the guards' decision tables assume domain values).
        """
        incoming = {
            (query, tuple(params)): value
            for (query, params), value in cells.items()
        }
        if set(incoming) != set(self._cells):
            raise ServingError(
                "recovered cells do not match the specification's "
                "observation schema"
            )
        for (query, params), value in incoming.items():
            sort = self.signature.query(query).result_sort
            values = (
                (False, True)
                if sort == BOOLEAN
                else self.signature.domain(sort)
            )
            if value not in values:
                raise ServingError(
                    f"recovered value {value!r} of cell "
                    f"{(query, params)!r} is outside the query's "
                    "result domain"
                )
        self._cells = incoming

    # ------------------------------------------------------------------
    # plan compilation
    # ------------------------------------------------------------------
    def plan(self, update: str, params: tuple[str, ...]) -> UpdatePlan:
        """The compiled :class:`UpdatePlan` for one ground update
        instance (cached).

        Raises:
            ServingError: unknown update or ill-sorted parameters.
        """
        key = (update, tuple(params))
        cached = self._plans.get(key)
        if cached is not None:
            return cached
        built = self._compile_plan(update, key[1])
        self._plans[key] = built
        if _OBS.enabled:
            _OBS.tracer.count("runtime.plans.compiled")
        return built

    def _check_params(
        self, update: str, params: tuple[str, ...]
    ) -> tuple[Var, ...]:
        try:
            symbol = self.signature.update(update)
        except SignatureError as exc:
            raise ServingError(str(exc)) from None
        sorts = symbol.arg_sorts[:-1]
        if len(params) != len(sorts):
            raise ServingError(
                f"update {update!r} takes {len(sorts)} parameter(s), "
                f"got {len(params)}"
            )
        for value, sort in zip(params, sorts):
            if value not in self.signature.domain(sort):
                raise ServingError(
                    f"{value!r} is not a declared value of sort "
                    f"{sort} (update {update!r})"
                )
        return tuple(
            Var(f"p{i}", sort) for i, sort in enumerate(sorts)
        )

    def _make_equals_hook(self):
        signature = self.signature

        def hook(equality: fm.Equals, env: dict[Var, str]):
            lhs, lreads = compile_ground_term(
                equality.lhs, env, signature
            )
            rhs, rreads = compile_ground_term(
                equality.rhs, env, signature
            )
            return (
                lambda get: lhs(get) == rhs(get)
            ), lreads | rreads

        return hook

    def _compile_condition(
        self, condition: fm.Formula, env: dict[Var, str]
    ):
        return compile_ground_formula(
            condition,
            env,
            domain_of=self.signature.domain,
            atom_hook=None,
            equals_hook=self._equals_hook,
        )

    def _compile_plan(
        self, update: str, params: tuple[str, ...]
    ) -> UpdatePlan:
        self._check_params(update, params)
        precondition, pre_reads, pre_text = self._compile_precondition(
            update, params
        )
        try:
            actions = self._compile_actions(update, params)
        except UnsupportedTermError:
            if _OBS.enabled:
                _OBS.tracer.count("runtime.plans.fallback")
            return UpdatePlan(
                update,
                params,
                (),
                precondition,
                pre_reads,
                pre_text,
                fallback=True,
            )
        return UpdatePlan(
            update, params, actions, precondition, pre_reads, pre_text
        )

    def _compile_precondition(
        self, update: str, params: tuple[str, ...]
    ):
        description = self._descriptions.get(update)
        if description is None or description.precondition is None:
            return None, frozenset(), ""
        env = dict(zip(description.params, params))
        closure, reads = self._compile_condition(
            description.precondition, env
        )
        return closure, reads, str(description.precondition)

    def _compile_actions(self, update: str, params: tuple[str, ...]):
        """Ground every Q-equation of ``update`` at ``params`` into the
        per-cell dispatch lists."""
        signature = self.signature
        per_cell: dict[Cell, list] = {}
        for query_symbol in signature.queries:
            equations = self.spec.equations_for(
                query_symbol.name, update
            )
            if not equations:
                raise UnsupportedTermError(
                    f"no equation defines {query_symbol.name} over "
                    f"{update}"
                )
            for equation in equations:
                self._ground_equation(
                    equation, params, per_cell
                )
        actions = []
        for cell, entries in per_cell.items():
            live = []
            for condition, rhs in entries:
                live.append((condition, rhs))
                if condition is None:
                    break  # later entries are dead
            if any(rhs is not None for _, rhs in live):
                actions.append((cell, tuple(live)))
        return tuple(actions)

    def _ground_equation(
        self,
        equation,
        params: tuple[str, ...],
        per_cell: dict[Cell, list],
    ) -> None:
        lhs = equation.lhs
        if not isinstance(lhs, App):
            raise UnsupportedTermError("non-application lhs")
        state_pat = lhs.args[-1]
        if not isinstance(state_pat, App) or not isinstance(
            state_pat.args[-1], Var
        ):
            raise UnsupportedTermError("non-canonical state pattern")

        # Bind the update-argument pattern against the actual params.
        binding: dict[Var, str] = {}
        for pattern, value in zip(state_pat.args[:-1], params):
            if isinstance(pattern, Var):
                bound = binding.get(pattern)
                if bound is None:
                    binding[pattern] = value
                elif bound != value:
                    return  # repeated variable disagrees: no match
            elif isinstance(pattern, App) and not pattern.args:
                if pattern.symbol.name != value:
                    return  # constant pattern differs: no match
            else:
                raise UnsupportedTermError(
                    "nested term in update-argument position"
                )

        # Enumerate the query-argument pattern over unbound variables.
        free: list[Var] = []
        for pattern in lhs.args[:-1]:
            if isinstance(pattern, Var):
                if pattern not in binding and pattern not in free:
                    free.append(pattern)
            elif not (
                isinstance(pattern, App) and not pattern.args
            ):
                raise UnsupportedTermError(
                    "nested term in query-argument position"
                )
        domains = [self.signature.domain(v.sort) for v in free]
        identity = _is_identity(lhs, equation.rhs)
        query_name = lhs.symbol.name
        for choice in itertools.product(*domains):
            env = dict(binding)
            env.update(zip(free, choice))
            values = tuple(
                env[p] if isinstance(p, Var) else p.symbol.name
                for p in lhs.args[:-1]
            )
            cell: Cell = (query_name, values)
            entries = per_cell.setdefault(cell, [])
            if entries and entries[-1][0] is None:
                continue  # dispatch already sealed by an
                # unconditional entry
            condition = None
            if equation.condition is not None:
                closure, reads = self._compile_condition(
                    equation.condition, env
                )
                if not reads:
                    if not closure(None):
                        continue  # statically never fires here
                    # statically always fires: unconditional entry
                else:
                    condition = closure
            if identity:
                rhs = None
            else:
                rhs, _ = compile_ground_term(
                    equation.rhs, env, self.signature
                )
            entries.append((condition, rhs))

    # ------------------------------------------------------------------
    # applying updates
    # ------------------------------------------------------------------
    def compute_writes(self, plan: UpdatePlan) -> dict[Cell, Value]:
        """Evaluate the plan against the current cells and return the
        delta — only the cells whose value actually changes.  The
        store is not modified.

        Raises:
            IncompletenessError: if no equation fires for a candidate
                cell (the specification is not sufficiently complete).
        """
        if plan.fallback:
            return self._fallback_writes(plan)
        cells = self._cells
        get = cells.__getitem__
        writes: dict[Cell, Value] = {}
        for cell, entries in plan.actions:
            for condition, rhs in entries:
                if condition is not None and not condition(get):
                    continue
                if rhs is not None:
                    value = rhs(get)
                    if value != cells[cell]:
                        writes[cell] = value
                break
            else:
                raise IncompletenessError(
                    f"no equation applies to cell {cell} under "
                    f"{plan.update}{plan.params}: the specification "
                    "is not sufficiently complete"
                )
        return writes

    def _fallback_writes(self, plan: UpdatePlan) -> dict[Cell, Value]:
        if self._abstract_engine is None:
            self._abstract_engine = make_abstract_engine(self.spec)
        successor = abstract_successor(
            self.spec,
            self.snapshot(),
            plan.update,
            plan.params,
            engine=self._abstract_engine,
        )
        return {
            (query, params): value
            for (query, params), value in successor.entries
            if self._cells[(query, params)] != value
        }

    def commit(self, writes: Mapping[Cell, Value]) -> None:
        """Apply a previously computed delta to the cells."""
        self._cells.update(writes)

    def apply(
        self, update: str, params: tuple[str, ...]
    ) -> dict[Cell, Value]:
        """Plan, evaluate and commit one update; returns the delta.

        Note: this bypasses admission guards — it is the raw trace
        semantics (precondition-false updates no-op).  The guarded
        path lives in :class:`repro.runtime.service.SpecRuntime`.
        """
        writes = self.compute_writes(self.plan(update, tuple(params)))
        self.commit(writes)
        return writes

"""The incremental materialized-state store.

A served database state is the set of all *simple observations* — one
cell ``(query name, parameter values)`` per ground query instance,
exactly the entries of an interned
:class:`~repro.algebraic.algebra.Snapshot`.  Rather than re-reducing
the whole trace through the rewrite engine on every request, the store
keeps the cells in a plain dict and applies one update in O(delta):

1. the Q-equations ``q(a, u(b, U)) = rhs`` for update ``u`` are
   compiled **once per (update, params) pair** into an
   :class:`~repro.algebraic.plans.UpdatePlan` by the shared
   :class:`~repro.algebraic.plans.UpdatePlanner` (also used by the
   packed state-space explorer) — for each candidate write cell, an
   ordered dispatch list of ``(condition, rhs, equation index)``
   closures over the pre-state; equation order is declaration order,
   mirroring :class:`~repro.algebraic.rewriting.RewriteEngine`;
2. applying the plan evaluates the dispatch per candidate cell against
   the current cells and collects only the cells whose value changes.

Identity equations (frame equations and precondition-false
"otherwise" branches) are detected at the pattern level and never
produce writes; conditions that constant-fold to False are pruned at
compile time, so a typical plan touches a handful of cells.

Equations outside the canonical synthesized shape fall back to
:func:`~repro.algebraic.induction.abstract_successor` — the full
snapshot-to-snapshot evaluation used by the structural-induction
proofs — which keeps the store correct for any specification, just not
incremental.  The differential tests in ``tests/runtime/`` pin both
paths to full trace re-reduction.
"""

from __future__ import annotations

from typing import Callable, Hashable, Mapping

from repro.errors import IncompletenessError, ServingError
from repro.obs.tracer import OBS_STATE as _OBS
from repro.algebraic.algebra import Snapshot, TraceAlgebra
from repro.algebraic.description import StructuredDescription
from repro.algebraic.induction import (
    abstract_successor,
    make_abstract_engine,
)
from repro.algebraic.plans import UpdatePlan, UpdatePlanner
from repro.algebraic.spec import AlgebraicSpec
from repro.logic.sorts import BOOLEAN
from repro.runtime.compiler import Cell

__all__ = ["MaterializedState", "UpdatePlan"]

Value = Hashable


class MaterializedState:
    """A mutable cell store for one algebraic specification.

    Args:
        spec: the (verified) algebraic specification.
        descriptions: the structured descriptions the equations were
            synthesized from; when given, each update's precondition is
            compiled into the plan's admission predicate, so the
            runtime can *reject* precondition-false requests instead of
            silently no-opping like the trace semantics.

    The initial cells are the entries of the initial trace's snapshot,
    so the store starts in exactly the state ``initiate`` denotes.
    """

    def __init__(
        self,
        spec: AlgebraicSpec,
        descriptions: list[StructuredDescription] | None = None,
    ):
        self.spec = spec
        self.signature = spec.signature
        self._algebra = TraceAlgebra(spec)
        self._abstract_engine = None
        self._planner = UpdatePlanner(spec, descriptions)
        self._plans: dict[tuple[str, tuple[str, ...]], UpdatePlan] = {}
        initial = self._algebra.snapshot(self._algebra.initial_trace())
        self._cells: dict[Cell, Value] = {
            (query, params): value
            for (query, params), value in initial.entries
        }

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get(self, cell: Cell) -> Value:
        """The current value of one cell.

        Raises:
            ServingError: for an unknown query/parameter combination.
        """
        try:
            return self._cells[cell]
        except KeyError:
            raise ServingError(
                f"unknown observation cell {cell!r}"
            ) from None

    def query(self, name: str, params: tuple[str, ...]) -> Value:
        """Answer the query ``name(params)`` from the current cells."""
        return self.get((name, tuple(params)))

    @property
    def cells(self) -> Mapping[Cell, Value]:
        """Read-only view of the current cells."""
        return dict(self._cells)

    @property
    def getter(self) -> Callable[[Cell], Value]:
        """The raw cell reader compiled closures evaluate against."""
        return self._cells.__getitem__

    def snapshot(self) -> Snapshot:
        """The current state as an interned
        :class:`~repro.algebraic.algebra.Snapshot` (for differential
        tests and the abstract-successor fallback)."""
        return Snapshot(tuple(sorted(self._cells.items())))

    def load(self, cells: Mapping[Cell, Value]) -> None:
        """Replace the store contents (journal/snapshot recovery).

        Raises:
            ServingError: if the cell set differs from the schema's,
                or a value falls outside its query's result domain
                (the guards' decision tables assume domain values).
        """
        incoming = {
            (query, tuple(params)): value
            for (query, params), value in cells.items()
        }
        if set(incoming) != set(self._cells):
            raise ServingError(
                "recovered cells do not match the specification's "
                "observation schema"
            )
        for (query, params), value in incoming.items():
            sort = self.signature.query(query).result_sort
            values = (
                (False, True)
                if sort == BOOLEAN
                else self.signature.domain(sort)
            )
            if value not in values:
                raise ServingError(
                    f"recovered value {value!r} of cell "
                    f"{(query, params)!r} is outside the query's "
                    "result domain"
                )
        self._cells = incoming

    # ------------------------------------------------------------------
    # plan compilation
    # ------------------------------------------------------------------
    def plan(self, update: str, params: tuple[str, ...]) -> UpdatePlan:
        """The compiled :class:`~repro.algebraic.plans.UpdatePlan` for
        one ground update instance (cached).

        Raises:
            ServingError: unknown update or ill-sorted parameters.
        """
        key = (update, tuple(params))
        cached = self._plans.get(key)
        if cached is not None:
            return cached
        built = self._planner.compile(update, key[1])
        self._plans[key] = built
        if _OBS.enabled:
            _OBS.tracer.count("runtime.plans.compiled")
            if built.fallback:
                _OBS.tracer.count("runtime.plans.fallback")
        return built

    # ------------------------------------------------------------------
    # applying updates
    # ------------------------------------------------------------------
    def compute_writes(self, plan: UpdatePlan) -> dict[Cell, Value]:
        """Evaluate the plan against the current cells and return the
        delta — only the cells whose value actually changes.  The
        store is not modified.

        Raises:
            IncompletenessError: if no equation fires for a candidate
                cell (the specification is not sufficiently complete).
        """
        if plan.fallback:
            return self._fallback_writes(plan)
        cells = self._cells
        get = cells.__getitem__
        writes: dict[Cell, Value] = {}
        for cell, entries in plan.actions:
            for condition, rhs, _index in entries:
                if condition is not None and not condition(get):
                    continue
                if rhs is not None:
                    value = rhs(get)
                    if value != cells[cell]:
                        writes[cell] = value
                break
            else:
                raise IncompletenessError(
                    f"no equation applies to cell {cell} under "
                    f"{plan.update}{plan.params}: the specification "
                    "is not sufficiently complete"
                )
        return writes

    def _fallback_writes(self, plan: UpdatePlan) -> dict[Cell, Value]:
        if self._abstract_engine is None:
            self._abstract_engine = make_abstract_engine(self.spec)
        successor = abstract_successor(
            self.spec,
            self.snapshot(),
            plan.update,
            plan.params,
            engine=self._abstract_engine,
        )
        return {
            (query, params): value
            for (query, params), value in successor.entries
            if self._cells[(query, params)] != value
        }

    def commit(self, writes: Mapping[Cell, Value]) -> None:
        """Apply a previously computed delta to the cells."""
        self._cells.update(writes)

    def apply(
        self, update: str, params: tuple[str, ...]
    ) -> dict[Cell, Value]:
        """Plan, evaluate and commit one update; returns the delta.

        Note: this bypasses admission guards — it is the raw trace
        semantics (precondition-false updates no-op).  The guarded
        path lives in :class:`repro.runtime.service.SpecRuntime`.
        """
        writes = self.compute_writes(self.plan(update, tuple(params)))
        self.commit(writes)
        return writes

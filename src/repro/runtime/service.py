"""`SpecRuntime`: the admission pipeline of the serving runtime.

One update request flows through five stages, all O(delta):

1. **plan** — the cached compiled :class:`~repro.runtime.state.UpdatePlan`
   for the ground update term;
2. **precondition** — the structured description's condition for state
   change; a false precondition *rejects* the request (the trace
   semantics would silently no-op, so rejection and no-op denote the
   same successor state — which is what keeps the differential tests
   against trace re-reduction valid);
3. **evaluate** — the plan computes the write set against the current
   cells without mutating them;
4. **guard** — static instances reading a written cell are re-checked
   on the overlay (post) state, transition instances on the
   (before, overlay) step; any violation rejects the request with its
   witness, leaving store and journal untouched;
5. **commit** — the delta is applied, the sequence number advances and
   the update term is journaled (rejections never reach the journal).

Construction recovers from the journal directory when one is given:
snapshot load, replay of surviving entries, then a full guard check —
the induction base for the incremental guard skipping (see
:mod:`repro.runtime.guards`).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Hashable, Iterable

from repro.errors import ServingError
from repro.obs.telemetry import TEL_STATE as _TEL
from repro.obs.tracer import OBS_STATE as _OBS, span as _span
from repro.algebraic.description import StructuredDescription
from repro.core.framework import DesignFramework
from repro.runtime.guards import AdmissionGuard, GuardViolation
from repro.runtime.journal import Journal
from repro.runtime.state import Cell, MaterializedState

__all__ = ["ExecutionResult", "SpecRuntime"]

Value = Hashable

_MISSING = object()


@dataclass
class ExecutionResult:
    """Outcome of one update request.

    Attributes:
        accepted: True iff the update was admitted (a precondition-true
            update whose delta is empty is admitted with no effects).
        seq: the journal sequence number after the request — advanced
            only by an admitted, state-changing update.
        update: the requested update function.
        params: its ground parameters.
        delta: the committed cell writes (empty when rejected/no-op).
        violation: the guard witness when rejected, else ``None``.
    """

    accepted: bool
    seq: int
    update: str
    params: tuple[str, ...]
    delta: dict[Cell, Value] = field(default_factory=dict)
    violation: GuardViolation | None = None

    def to_dict(self) -> dict:
        """JSON-ready form (the server's update response body)."""
        return {
            "accepted": self.accepted,
            "seq": self.seq,
            "update": self.update,
            "params": list(self.params),
            "delta": [
                [query, list(params), value]
                for (query, params), value in sorted(self.delta.items())
            ],
            "violation": (
                None
                if self.violation is None
                else self.violation.to_dict()
            ),
        }


#: Valuation cap for precondition decision tables (matches the
#: guards' table compilation).
_CONDITION_TABLE_LIMIT = 4096


def _tabulate_condition(closure, reads, guard):
    """Compile a precondition closure into ``(cells, allowed)`` by
    enumerating the read cells' valuations; ``allowed`` is ``None``
    when the space is too large (the caller keeps the closure)."""
    cells = tuple(sorted(reads))
    domains = [guard._cell_values(cell) for cell in cells]
    space = 1
    for domain in domains:
        space *= len(domain)
    if not (0 < space <= _CONDITION_TABLE_LIMIT):
        return cells, None
    allowed = frozenset(
        values
        for values in itertools.product(*domains)
        if closure(dict(zip(cells, values)).__getitem__)
    )
    return cells, allowed


class SpecRuntime:
    """A served instance of one verified application.

    Args:
        framework: the three-level design (information axioms become
            the admission guards; the algebraic spec drives the store).
        descriptions: structured descriptions supplying per-update
            preconditions; without them precondition-false updates
            no-op instead of being rejected.
        data_dir: journal directory; ``None`` serves in-memory only.
        fsync_batch / fsync: journal group-commit knobs
            (see :class:`~repro.runtime.journal.Journal`).
        compact_every: auto-compact after this many journaled updates
            (``None`` disables; :meth:`compact` is always available).

    Raises:
        ServingError: if recovery produces a state violating the
            application's own constraints (damaged snapshot), or the
            guards cannot be compiled.
    """

    def __init__(
        self,
        framework: DesignFramework,
        descriptions: list[StructuredDescription] | None = None,
        data_dir: str | None = None,
        fsync_batch: int = 64,
        fsync: bool = True,
        compact_every: int | None = None,
    ):
        self.framework = framework
        self.name = framework.name
        self.store = MaterializedState(
            framework.algebraic, descriptions
        )
        self.guard = AdmissionGuard(
            framework.information,
            framework.algebraic,
            framework.carriers,
            framework.interpretation,
        )
        self.journal = (
            Journal(data_dir, fsync_batch=fsync_batch, fsync=fsync)
            if data_dir is not None
            else None
        )
        self.seq = 0
        self.accepted_count = 0
        self.rejected_count = 0
        self.query_count = 0
        self._compact_every = compact_every
        self._since_compaction = 0
        #: Per-plan admission artifacts, keyed like the plan cache:
        #: the precomputed precondition witness and the guard
        #: instances reading any of the plan's candidate write cells
        #: (a superset of any delta's readers, so checking them is
        #: sound and needs no per-request index walk).
        self._admission: dict[
            tuple[str, tuple[str, ...]], tuple
        ] = {}
        #: Cached ``runtime.update.<kind>.<outcome>`` histogram names
        #: so the telemetry hot path never formats strings.
        self._tel_names: dict[tuple[str, str], str] = {}
        self._started = time.monotonic()
        self.recovery_warnings: list[str] = []
        if self.journal is not None:
            self._recover()
        self._base_check()

    # ------------------------------------------------------------------
    # startup
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        with _span("runtime.recover", application=self.name):
            recovered = self.journal.recover()
            self.recovery_warnings = list(recovered.warnings)
            if recovered.cells is not None:
                self.store.load(recovered.cells)
            self.seq = recovered.seq
            for seq, update, params in recovered.entries:
                self.store.apply(update, params)
                self.seq = seq
            if _OBS.enabled:
                _OBS.tracer.count(
                    "runtime.recover.entries",
                    len(recovered.entries),
                )

    def _base_check(self) -> None:
        violations = self.guard.check_now(self.store.getter)
        if violations:
            raise ServingError(
                "recovered state violates the application's "
                "constraints: "
                + "; ".join(str(v) for v in violations)
            )

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def query(self, name: str, params: Iterable[str]) -> Value:
        """Answer one query from the materialized cells."""
        self.query_count += 1
        if _OBS.enabled:
            _OBS.tracer.count("runtime.queries")
        if _TEL.enabled:
            t0 = time.perf_counter_ns()
            value = self.store.query(name, tuple(params))
            _TEL.telemetry.observe(
                "runtime.query",
                time.perf_counter_ns() - t0,
                counter="runtime.queries",
            )
            return value
        return self.store.query(name, tuple(params))

    def _tel_name(self, update: str, outcome: str) -> str:
        """The cached histogram name for one (update, outcome)."""
        key = (update, outcome)
        name = self._tel_names.get(key)
        if name is None:
            name = f"runtime.update.{update}.{outcome}"
            self._tel_names[key] = name
        return name

    def _admission_of(self, plan) -> tuple:
        """The cached admission artifacts for one plan: the
        precondition as (cells, allowed-valuations, witness) and the
        guard decision tables touching the plan's candidate cells."""
        key = (plan.update, plan.params)
        cached = self._admission.get(key)
        if cached is None:
            precondition = None
            if plan.precondition is not None:
                witness = GuardViolation(
                    "precondition",
                    plan.precondition_text,
                    tuple(
                        (f"p{i}", value)
                        for i, value in enumerate(plan.params)
                    ),
                    tuple(sorted(plan.precondition_reads)),
                )
                precondition = (
                    *_tabulate_condition(
                        plan.precondition,
                        plan.precondition_reads,
                        self.guard,
                    ),
                    witness,
                )
            cells = plan.candidate_cells
            cached = (
                precondition,
                self.guard.static_tables_for(cells),
                self.guard.transition_tables_for(cells),
            )
            self._admission[key] = cached
        return cached

    def execute(
        self, update: str, params: Iterable[str]
    ) -> ExecutionResult:
        """Admit or reject one update request (the five-stage
        pipeline described in the module docstring)."""
        params = tuple(params)
        started = time.perf_counter_ns() if _TEL.enabled else 0
        store = self.store
        plan = store.plan(update, params)
        get = store.getter
        precondition, statics, transitions = self._admission_of(plan)

        if precondition is not None:
            pre_cells, allowed, witness = precondition
            if allowed is not None:
                holds = (
                    tuple(map(get, pre_cells)) in allowed
                )
            else:
                holds = bool(plan.precondition(get))
            if not holds:
                return self._reject(update, params, witness, started)

        writes = store.compute_writes(plan)
        if not writes:
            self.accepted_count += 1
            if _OBS.enabled:
                _OBS.tracer.count("runtime.updates.noop")
            if started:
                _TEL.telemetry.observe(
                    self._tel_name(update, "admit"),
                    time.perf_counter_ns() - started,
                    counter="runtime.updates.accepted",
                    update=update,
                    outcome="noop",
                )
            return ExecutionResult(True, self.seq, update, params)

        missing = _MISSING
        writes_get = writes.get

        def after(cell: Cell) -> Value:
            value = writes_get(cell, missing)
            if value is missing:
                return get(cell)
            return value

        if plan.fallback:
            # The plan has no static candidate-cell set; index the
            # guards by the actual delta instead.
            statics = self.guard.static_tables_for(writes)
            transitions = self.guard.transition_tables_for(writes)
        for table in statics:
            allowed = table.allowed
            if allowed is not None:
                if tuple(map(after, table.cells)) not in allowed:
                    return self._reject(
                        update,
                        params,
                        table.static_witness(after),
                        started,
                    )
            else:
                for instance in table.members:
                    if not instance.closure(after):
                        return self._reject(
                            update,
                            params,
                            instance.violation(),
                            started,
                        )
        if transitions:
            gets = (get, after)
            for table in transitions:
                allowed = table.allowed
                if allowed is not None:
                    step = (
                        tuple(map(get, table.cells)),
                        tuple(map(after, table.cells)),
                    )
                    if step not in allowed:
                        return self._reject(
                            update,
                            params,
                            table.transition_witness(gets),
                            started,
                        )
                else:
                    for instance in table.members:
                        if not instance.closure(gets):
                            return self._reject(
                                update,
                                params,
                                instance.violation(),
                                started,
                            )

        store.commit(writes)
        self.seq += 1
        self.accepted_count += 1
        if self.journal is not None:
            self.journal.append(self.seq, update, params)
            self._since_compaction += 1
            if (
                self._compact_every is not None
                and self._since_compaction >= self._compact_every
            ):
                self.compact()
        if _OBS.enabled:
            _OBS.tracer.count("runtime.updates.accepted")
        if started:
            _TEL.telemetry.observe(
                self._tel_name(update, "admit"),
                time.perf_counter_ns() - started,
                counter="runtime.updates.accepted",
                update=update,
                outcome="commit",
            )
        return ExecutionResult(True, self.seq, update, params, writes)

    def _reject(
        self,
        update: str,
        params: tuple[str, ...],
        violation: GuardViolation,
        started: int = 0,
    ) -> ExecutionResult:
        self.rejected_count += 1
        if _OBS.enabled:
            _OBS.tracer.count("runtime.updates.rejected")
            _OBS.tracer.count(
                f"runtime.updates.rejected.{violation.kind}"
            )
        if started:
            telemetry = _TEL.telemetry
            telemetry.observe(
                self._tel_name(update, "reject"),
                time.perf_counter_ns() - started,
                counter="runtime.updates.rejected",
                update=update,
                violation=violation.kind,
            )
            telemetry.inc(f"runtime.rejected.{violation.kind}")
        return ExecutionResult(
            False, self.seq, update, params, {}, violation
        )

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def compact(self) -> None:
        """Snapshot the store into the journal directory and truncate
        the journal (no-op without a journal)."""
        if self.journal is None:
            return
        with _span("runtime.compact", application=self.name):
            self.journal.compact(self.store.cells, self.seq)
        self._since_compaction = 0

    def flush(self) -> None:
        """Force the journal's buffered appends to disk."""
        if self.journal is not None:
            self.journal.flush()

    def close(self) -> None:
        """Flush and release the journal."""
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "SpecRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def stats(self) -> dict:
        """Serving counters (the server's ``stats`` response body)."""
        out = {
            "application": self.name,
            "seq": self.seq,
            "uptime_seconds": round(
                time.monotonic() - self._started, 3
            ),
            "accepted": self.accepted_count,
            "rejected": self.rejected_count,
            "queries": self.query_count,
            "cells": len(self.store.cells),
            "static_instances": self.guard.static_instances,
            "transition_instances": self.guard.transition_instances,
            "recovery_warnings": list(self.recovery_warnings),
        }
        if self.journal is not None:
            out["journal"] = {
                "appends": self.journal.appends,
                "syncs": self.journal.syncs,
                "compactions": self.journal.compactions,
            }
        return out

    def metrics_registry(self):
        """The serving counters folded into the ``runtime.*``
        namespace of a :class:`~repro.obs.metrics.MetricsRegistry`
        — the one schema shared by ``--metrics-json`` and the
        server's ``stats`` op."""
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.record_runtime(self.stats)
        return registry

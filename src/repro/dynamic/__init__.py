"""First-order dynamic logic over RPR programs — the "separate paper"
the authors defer to in Section 5.3, realized: program modalities
[p]P / <p>P, their semantics over database states, and the syntactic
translation of A2 equations into checkable proof obligations."""

from repro.dynamic.formulas import Box, Diamond, ProcCall, program_modalities
from repro.dynamic.obligations import (
    ObligationReport,
    check_obligations,
    obligation_for_equation,
    obligations_for_spec,
)
from repro.dynamic.semantics import (
    counterexample,
    satisfies_dynamic,
    valid_in_schema,
)

__all__ = [
    "Box",
    "Diamond",
    "ProcCall",
    "program_modalities",
    "satisfies_dynamic",
    "valid_in_schema",
    "counterexample",
    "obligation_for_equation",
    "obligations_for_spec",
    "check_obligations",
    "ObligationReport",
]

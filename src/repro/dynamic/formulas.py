"""First-order dynamic logic over RPR programs.

Paper, Section 5.3: extending the mapping K to whole wffs "would need
a full programming logic, such as Dynamic Logic (a separate paper will
explore this possibility)".  This package realizes that pointer: wffs
are first-order formulas over the schema's language extended with the
program modalities

* ``[p]P`` (:class:`Box`)     — P holds after *every* execution of p;
* ``<p>P`` (:class:`Diamond`) — P holds after *some* execution of p,

where p is any RPR statement (so Harel's regular programs [Ha], which
RPR is built on, are recovered exactly).  With the modalities, the
second-to-third refinement obligations become *formulas*: e.g. the
paper's equation 6a for ``cancel`` is the dynamic-logic sentence

    forall c. (exists s. TAKES(s, c)) -> [cancel(c)] OFFERED(c)

checked by :mod:`repro.dynamic.semantics` over the finite universe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.logic import formulas as fm
from repro.logic.terms import Term, Var
from repro.rpr.ast import Statement

__all__ = ["Box", "Diamond", "ProcCall", "program_modalities"]


@dataclass(frozen=True)
class ProcCall:
    """A named-procedure program: ``I(t1,...,tn)``.

    Dynamic-logic formulas may use schema procedures as programs (the
    k-meaning of Section 5.1.2); arguments are RPR terms.
    """

    name: str
    args: tuple[Term, ...] = ()

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.name}({inner})"


#: A program inside a modality: a raw statement or a procedure call.
Program = Statement | ProcCall


@dataclass(frozen=True)
class Box(fm.Formula):
    """``[p]P``: after every terminating execution of p, P holds."""

    program: Program
    body: fm.Formula

    def free_vars(self) -> frozenset[Var]:
        """The set of free variables of the formula."""
        out = self.body.free_vars()
        if isinstance(self.program, ProcCall):
            for arg in self.program.args:
                out |= arg.free_vars()
        return out

    def subformulas(self) -> Iterator[fm.Formula]:
        """Yield the formula itself and every subformula, pre-order."""
        yield self
        yield from self.body.subformulas()

    def __str__(self) -> str:
        return f"[{self.program}]{_paren(self.body)}"


@dataclass(frozen=True)
class Diamond(fm.Formula):
    """``<p>P``: some execution of p ends in a state satisfying P.

    Dual of :class:`Box`: ``<p>P == ~[p]~P``.
    """

    program: Program
    body: fm.Formula

    def free_vars(self) -> frozenset[Var]:
        """The set of free variables of the formula."""
        out = self.body.free_vars()
        if isinstance(self.program, ProcCall):
            for arg in self.program.args:
                out |= arg.free_vars()
        return out

    def subformulas(self) -> Iterator[fm.Formula]:
        """Yield the formula itself and every subformula, pre-order."""
        yield self
        yield from self.body.subformulas()

    def __str__(self) -> str:
        return f"<{self.program}>{_paren(self.body)}"


def _paren(formula: fm.Formula) -> str:
    if isinstance(formula, (fm.Forall, fm.Exists)):
        return f"({formula})"
    return str(formula)


def program_modalities(formula: fm.Formula) -> Iterator[Box | Diamond]:
    """Yield every Box/Diamond subformula."""
    for sub in formula.subformulas():
        if isinstance(sub, (Box, Diamond)):
            yield sub

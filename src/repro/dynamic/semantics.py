"""Satisfaction for dynamic logic over RPR database states.

``state ⊨ [p]P`` iff every p-successor of ``state`` satisfies P, where
the successors are given by the RPR meaning functions m/k of
:mod:`repro.rpr.semantics`; ``<p>P`` asks for one.  First-order
constructs are evaluated at ``state`` exactly as in
:func:`repro.rpr.semantics.satisfies`, so dynamic formulas mix freely
with the schema's relation atoms, equality and quantifiers.

:func:`valid_in_schema` decides validity over the whole finite
universe — the natural proof obligation generator for the
second-to-third refinement when it is stated *syntactically* (the
possibility the paper defers to dynamic logic).
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import ExecutionError
from repro.logic import formulas as fm
from repro.logic.terms import Var
from repro.dynamic.formulas import Box, Diamond, ProcCall
from repro.rpr.ast import Schema, Statement
from repro.rpr.semantics import (
    DatabaseState,
    Domains,
    all_states,
    evaluate_term,
    run,
    run_proc,
    satisfies as satisfies_fo,
)

__all__ = ["satisfies_dynamic", "valid_in_schema", "counterexample"]


def _successors(
    program,
    state: DatabaseState,
    schema: Schema,
    domains: Domains,
    valuation: Mapping[Var, str],
) -> frozenset[DatabaseState]:
    if isinstance(program, ProcCall):
        args = tuple(
            str(evaluate_term(arg, state, valuation))
            for arg in program.args
        )
        return run_proc(schema, program.name, args, state, domains)
    if isinstance(program, Statement):
        return run(program, state, schema, domains, valuation)
    raise ExecutionError(f"not a program: {program!r}")


def satisfies_dynamic(
    formula: fm.Formula,
    state: DatabaseState,
    schema: Schema,
    domains: Domains,
    valuation: Mapping[Var, str] | None = None,
) -> bool:
    """Decide ``state ⊨ formula`` for a dynamic-logic wff."""
    valuation = dict(valuation or {})
    if isinstance(formula, Box):
        return all(
            satisfies_dynamic(
                formula.body, successor, schema, domains, valuation
            )
            for successor in _successors(
                formula.program, state, schema, domains, valuation
            )
        )
    if isinstance(formula, Diamond):
        return any(
            satisfies_dynamic(
                formula.body, successor, schema, domains, valuation
            )
            for successor in _successors(
                formula.program, state, schema, domains, valuation
            )
        )
    if isinstance(formula, fm.Not):
        return not satisfies_dynamic(
            formula.body, state, schema, domains, valuation
        )
    if isinstance(formula, fm.And):
        return satisfies_dynamic(
            formula.lhs, state, schema, domains, valuation
        ) and satisfies_dynamic(
            formula.rhs, state, schema, domains, valuation
        )
    if isinstance(formula, fm.Or):
        return satisfies_dynamic(
            formula.lhs, state, schema, domains, valuation
        ) or satisfies_dynamic(
            formula.rhs, state, schema, domains, valuation
        )
    if isinstance(formula, fm.Implies):
        return (
            not satisfies_dynamic(
                formula.lhs, state, schema, domains, valuation
            )
        ) or satisfies_dynamic(
            formula.rhs, state, schema, domains, valuation
        )
    if isinstance(formula, fm.Iff):
        return satisfies_dynamic(
            formula.lhs, state, schema, domains, valuation
        ) == satisfies_dynamic(
            formula.rhs, state, schema, domains, valuation
        )
    if isinstance(formula, (fm.Forall, fm.Exists)):
        try:
            carrier = domains[formula.var.sort]
        except KeyError:
            raise ExecutionError(
                f"no domain for sort {formula.var.sort}"
            ) from None
        results = (
            satisfies_dynamic(
                formula.body,
                state,
                schema,
                domains,
                {**valuation, formula.var: value},
            )
            for value in carrier
        )
        if isinstance(formula, fm.Forall):
            return all(results)
        return any(results)
    # Modal-free atoms/constants: plain RPR first-order satisfaction.
    return satisfies_fo(formula, state, domains, valuation)


def valid_in_schema(
    formula: fm.Formula,
    schema: Schema,
    domains: Domains,
    states=None,
) -> bool:
    """True iff the closed dynamic wff holds at *every* state of the
    universe (all relation valuations by default, or the given
    ``states``)."""
    if states is None:
        states = all_states(schema, domains)
    return all(
        satisfies_dynamic(formula, state, schema, domains)
        for state in states
    )


def counterexample(
    formula: fm.Formula,
    schema: Schema,
    domains: Domains,
    states=None,
) -> DatabaseState | None:
    """The first universe state falsifying the wff, or ``None``."""
    if states is None:
        states = all_states(schema, domains)
    for state in states:
        if not satisfies_dynamic(formula, state, schema, domains):
            return state
    return None

"""Syntactic refinement obligations in dynamic logic.

Paper, Section 5.3: "the next natural step would be to extend K to map
wffs of L2 into wffs of L3.  However, L3 is not powerful enough (...)
In order to do so, we would need a full programming logic, such as
Dynamic Logic."  This module performs exactly that extension: each
conditional equation of A2

    cond  =>  q(p, u(p', U)) = rhs

becomes the dynamic-logic sentence (universally closed over the
parameters)

    K(cond)  ->  ( K(rhs)  <->  [u(p')] K(q)(p) )

where K translates Boolean L2 terms into L3 wffs (queries via their
realizations, equality tests into equality, connectives pointwise) and
the modality runs the procedure implementing u.  For a query of a
parameter result sort, a fresh result variable v is introduced:

    K(cond) -> forall v. ( K(rhs = v) <-> [u(p')] K(q)(p) holds at v )

Obligations are *valid over the reachable states* of the schema — like
the paper's own equations, they may rely on the level-1 invariants, so
universal validity over arbitrary states is not required (equation 10
of the registrar is the canonical example).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RefinementError
from repro.algebraic.equations import ConditionalEquation
from repro.algebraic.signature import AlgebraicSignature
from repro.algebraic.spec import AlgebraicSpec
from repro.dynamic.formulas import Box, ProcCall
from repro.dynamic.semantics import satisfies_dynamic
from repro.logic import formulas as fm
from repro.logic.sorts import BOOLEAN, STATE, Sort
from repro.logic.terms import App, Term, Var
from repro.refinement.second_third import (
    InducedStructure,
    RepresentationMap,
)
from repro.rpr.ast import Schema, ValueLiteral

__all__ = [
    "obligation_for_equation",
    "obligations_for_spec",
    "ObligationReport",
    "check_obligations",
]


class _Translator:
    """K extended to terms and condition wffs of L2."""

    def __init__(
        self,
        signature: AlgebraicSignature,
        rep_map: RepresentationMap,
    ):
        self.signature = signature
        self.rep_map = rep_map

    def sort(self, l2_sort: Sort) -> Sort:
        try:
            return self.rep_map.sort_map[l2_sort]
        except KeyError:
            raise RefinementError(
                f"K has no sort mapping for {l2_sort}"
            ) from None

    def param_term(self, term: Term) -> Term:
        """Translate a parameter-sorted L2 term into an L3 term."""
        if isinstance(term, Var):
            return Var(term.name, self.sort(term.sort))
        if isinstance(term, App) and term.symbol.is_constant:
            return ValueLiteral(term.symbol.name, self.sort(term.sort))
        raise RefinementError(
            f"cannot translate parameter term {term} syntactically "
            "(interpreted functions have no L3 image; state the "
            "obligation semantically via check_refinement instead)"
        )

    def boolean_term(self, term: Term) -> fm.Formula:
        """Translate a Boolean L2 term into an L3 wff."""
        if isinstance(term, App):
            name = term.symbol.name
            if name == "True":
                return fm.TRUE
            if name == "False":
                return fm.FALSE
            if self.signature.is_connective(term.symbol):
                parts = [self.boolean_term(arg) for arg in term.args]
                return {
                    "not": lambda: fm.Not(parts[0]),
                    "and": lambda: fm.And(parts[0], parts[1]),
                    "or": lambda: fm.Or(parts[0], parts[1]),
                    "implies": lambda: fm.Implies(parts[0], parts[1]),
                    "iff": lambda: fm.Iff(parts[0], parts[1]),
                }[name]()
            if self.signature.is_equality_test(term.symbol):
                return self.equality(term.args[0], term.args[1])
            if self.signature.is_query(term.symbol):
                return self.query_formula(term)
        raise RefinementError(
            f"cannot translate Boolean term {term} into L3"
        )

    def query_formula(
        self, term: App, result: Term | None = None
    ) -> fm.Formula:
        """K(q) instantiated at the query application's arguments.

        For a non-Boolean query, ``result`` supplies the L3 term the
        result variable is compared to.
        """
        realization = self.rep_map.realization(term.symbol.name)
        substitution = {
            var: self.param_term(arg)
            for var, arg in zip(realization.variables, term.args[:-1])
        }
        if realization.result_var is not None:
            if result is None:
                raise RefinementError(
                    f"non-Boolean query {term.symbol.name} needs a "
                    "result term"
                )
            substitution[realization.result_var] = result
        from repro.logic.substitution import apply_to_formula

        return apply_to_formula(substitution, realization.formula)

    def equality(self, lhs: Term, rhs: Term) -> fm.Formula:
        """Translate ``lhs = rhs`` between parameter-sorted L2 terms
        (either may be a non-Boolean query application)."""
        lhs_is_query = isinstance(lhs, App) and self.signature.is_query(
            lhs.symbol
        )
        rhs_is_query = isinstance(rhs, App) and self.signature.is_query(
            rhs.symbol
        )
        if lhs_is_query and not rhs_is_query:
            return self.query_formula(lhs, result=self.param_term(rhs))
        if rhs_is_query and not lhs_is_query:
            return self.query_formula(rhs, result=self.param_term(lhs))
        if not lhs_is_query and not rhs_is_query:
            return fm.Equals(self.param_term(lhs), self.param_term(rhs))
        raise RefinementError(
            f"cannot translate query-to-query equality {lhs} = {rhs}"
        )

    def condition(self, formula: fm.Formula) -> fm.Formula:
        """Translate an equation condition into an L3 wff."""
        if isinstance(formula, (fm.TrueF, fm.FalseF)):
            return formula
        if isinstance(formula, fm.Equals):
            if formula.lhs.sort == BOOLEAN:
                # t = True / t = False patterns.
                lhs = self.boolean_term(formula.lhs)
                rhs = self.boolean_term(formula.rhs)
                return fm.Iff(lhs, rhs)
            return self.equality(formula.lhs, formula.rhs)
        if isinstance(formula, fm.Not):
            return fm.Not(self.condition(formula.body))
        if isinstance(formula, (fm.And, fm.Or, fm.Implies, fm.Iff)):
            return type(formula)(
                self.condition(formula.lhs), self.condition(formula.rhs)
            )
        if isinstance(formula, (fm.Forall, fm.Exists)):
            var = Var(formula.var.name, self.sort(formula.var.sort))
            return type(formula)(var, self.condition(formula.body))
        raise RefinementError(
            f"cannot translate condition {formula!r} into L3"
        )


def obligation_for_equation(
    equation: ConditionalEquation,
    signature: AlgebraicSignature,
    rep_map: RepresentationMap,
) -> fm.Formula:
    """The dynamic-logic sentence expressing one Q-equation's
    correctness with respect to the schema.

    Raises:
        RefinementError: for non-constructor equations or untranslatable
            terms (e.g. interpreted parameter functions in the rhs).
    """
    translator = _Translator(signature, rep_map)
    lhs = equation.lhs
    if not isinstance(lhs, App) or not signature.is_query(lhs.symbol):
        raise RefinementError(
            f"{equation.describe()}: only Q-equations generate "
            "obligations"
        )
    state_arg = equation.state_argument
    if not isinstance(state_arg, App):
        raise RefinementError(
            f"{equation.describe()}: constructor-based lhs required"
        )

    # The program inside the modality.
    if signature.is_initial(state_arg.symbol):
        program = ProcCall(rep_map.initial_proc, ())
    else:
        program = ProcCall(
            rep_map.proc_for(state_arg.symbol.name),
            tuple(
                translator.param_term(arg) for arg in state_arg.args[:-1]
            ),
        )

    query_symbol = lhs.symbol
    if query_symbol.result_sort == BOOLEAN:
        post = translator.query_formula(lhs)
        pre_rhs = translator.boolean_term(equation.rhs)
        core: fm.Formula = fm.Iff(pre_rhs, Box(program, post))
    else:
        result_sort = translator.sort(query_symbol.result_sort)
        result_var = Var("v_result", result_sort)
        post = translator.query_formula(lhs, result=result_var)
        pre_rhs = _nonboolean_rhs_formula(
            translator, equation.rhs, result_var
        )
        core = fm.Forall(result_var, fm.Iff(pre_rhs, Box(program, post)))

    if equation.condition is not None:
        core = fm.Implies(translator.condition(equation.condition), core)

    # Universally close over the equation's parameter variables.
    param_vars = sorted(
        (
            var
            for var in (
                lhs.free_vars()
                | (
                    equation.condition.free_vars()
                    if equation.condition is not None
                    else frozenset()
                )
            )
            if var.sort != STATE
        ),
        key=lambda var: var.name,
    )
    for var in reversed(param_vars):
        core = fm.Forall(
            Var(var.name, translator.sort(var.sort)), core
        )
    return core


def _nonboolean_rhs_formula(
    translator: _Translator, rhs: Term, result_var: Var
) -> fm.Formula:
    """``rhs = v`` as an L3 wff, for a parameter-sorted rhs."""
    if isinstance(rhs, App) and translator.signature.is_query(rhs.symbol):
        return translator.query_formula(rhs, result=result_var)
    return fm.Equals(translator.param_term(rhs), result_var)


def obligations_for_spec(
    spec: AlgebraicSpec, rep_map: RepresentationMap
) -> list[tuple[ConditionalEquation, fm.Formula]]:
    """Every translatable Q-equation paired with its obligation.

    Equations whose terms have no syntactic L3 image (interpreted
    functions) are skipped — they remain covered by the semantic check.
    """
    out = []
    for equation in spec.q_equations:
        try:
            out.append(
                (
                    equation,
                    obligation_for_equation(
                        equation, spec.signature, rep_map
                    ),
                )
            )
        except RefinementError:
            continue
    return out


@dataclass(frozen=True)
class ObligationReport:
    """Outcome of checking the dynamic-logic obligations.

    Attributes:
        ok: True iff every obligation held at every checked state.
        obligations: number of obligations generated (and checked).
        skipped: equations with no syntactic image.
        failures: (equation label, falsifying state) pairs.
    """

    ok: bool
    obligations: int
    skipped: int
    failures: tuple[tuple[str, object], ...] = field(default_factory=tuple)

    def __bool__(self) -> bool:
        return self.ok

    def __str__(self) -> str:
        if self.ok:
            return (
                f"all {self.obligations} dynamic-logic obligations hold "
                f"({self.skipped} equations checked semantically only)"
            )
        lines = ["dynamic-logic obligations FAILED:"]
        for label, state in self.failures[:10]:
            lines.append(f"  {label} at {state}")
        return "\n".join(lines)


def check_obligations(
    spec: AlgebraicSpec,
    schema: Schema,
    rep_map: RepresentationMap | None = None,
    max_states: int = 100_000,
) -> ObligationReport:
    """Generate and check every obligation over the schema's reachable
    states — the syntactic counterpart of
    :func:`repro.refinement.second_third.check_refinement`."""
    if rep_map is None:
        rep_map = RepresentationMap.homonym(spec.signature, schema)
    induced = InducedStructure(spec.signature, schema, rep_map)
    states = induced.reachable_states(max_states=max_states)
    domains = induced.domains
    pairs = obligations_for_spec(spec, rep_map)
    skipped = len(spec.q_equations) - len(pairs)
    failures = []
    for equation, obligation in pairs:
        for state in states:
            if not satisfies_dynamic(obligation, state, schema, domains):
                failures.append((equation.describe(), state))
                break
    return ObligationReport(
        ok=not failures,
        obligations=len(pairs),
        skipped=skipped,
        failures=tuple(failures),
    )

"""Finitely generated trace algebras.

Paper, Sections 4.1-4.2: the models of an algebraic specification are
restricted to *finitely generated* algebras — "those in which every
element is the value of a variable-free term" — so every state is the
value of a trace ``u_n(..., u_1(..., initiate))`` and structural
induction on traces is a valid proof rule.

:class:`TraceAlgebra` realizes the initial such algebra for a
specification with finite parameter domains: states are trace terms,
queries are evaluated by the rewriting engine, and two traces denote
the same abstract state iff all *simple observations* agree on them
(the paper's observability condition).  :meth:`TraceAlgebra.explore`
performs the observational-state-space construction used by all
refinement checks.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import SpecificationError
from repro.algebraic.rewriting import RewriteEngine, Value
from repro.algebraic.spec import AlgebraicSpec
from repro.logic.terms import App, Term

__all__ = ["TraceAlgebra", "Snapshot", "StateGraph", "Transition"]


@dataclass(frozen=True, order=True)
class Snapshot:
    """The observational content of a state: the value of every simple
    observation.

    Attributes:
        entries: sorted tuple of ``((query_name, params), value)``
            pairs, one per simple observation.
    """

    entries: tuple[tuple[tuple[str, tuple[str, ...]], Value], ...]

    def value(self, query: str, params: tuple[str, ...]) -> Value:
        """The recorded value of observation ``query(params)``."""
        for (name, args), value in self.entries:
            if name == query and args == params:
                return value
        raise KeyError((query, params))

    def relation(self, query: str) -> frozenset[tuple[str, ...]]:
        """The parameter tuples on which a Boolean query is True."""
        return frozenset(
            args
            for (name, args), value in self.entries
            if name == query and value is True
        )

    def as_dict(self) -> dict[tuple[str, tuple[str, ...]], Value]:
        """The snapshot as a mutable dictionary."""
        return dict(self.entries)

    def __str__(self) -> str:
        positives = [
            f"{name}({', '.join(args)})={value}"
            for (name, args), value in self.entries
            if value is not False
        ]
        return "{" + ", ".join(positives) + "}"


@dataclass(frozen=True)
class Transition:
    """One edge of the observational state graph.

    Attributes:
        source: snapshot before the update.
        update: update function name.
        params: the update's parameter values.
        target: snapshot after the update.
    """

    source: Snapshot
    update: str
    params: tuple[str, ...]
    target: Snapshot


@dataclass
class StateGraph:
    """The observational state space reachable from ``initiate``.

    Attributes:
        initial: snapshot of the initial state.
        states: every reachable snapshot, mapped to a *witness trace*
            (a shortest trace denoting it).
        transitions: every (source, update, params, target) edge.
        truncated: True iff exploration stopped at ``max_states``
            before exhausting the space.
    """

    initial: Snapshot
    states: dict[Snapshot, Term]
    transitions: list[Transition] = field(default_factory=list)
    truncated: bool = False

    def successors(self, snapshot: Snapshot) -> Iterator[Transition]:
        """Yield the outgoing transitions of ``snapshot``."""
        for transition in self.transitions:
            if transition.source == snapshot:
                yield transition

    def __len__(self) -> int:
        return len(self.states)


class TraceAlgebra:
    """The finitely generated algebra of an algebraic specification.

    Args:
        spec: the algebraic specification.
        initial: name of the initial-state constant (default
            ``"initiate"``).
        fuel: rewriting fuel per query evaluation (passed through to
            :class:`RewriteEngine`).
    """

    def __init__(
        self,
        spec: AlgebraicSpec,
        initial: str = "initiate",
        fuel: int | None = None,
        normalize: bool = False,
    ):
        self.spec = spec
        self.signature = spec.signature
        if fuel is None:
            self.engine = RewriteEngine(spec)
        else:
            self.engine = RewriteEngine(spec, fuel=fuel)
        self._initial_name = initial
        #: When True, every trace built by :meth:`apply` is normalized
        #: by the specification's U-equations (a no-op for
        #: specifications without them).
        self.normalize = normalize
        self._observations = self._build_observations()

    # ------------------------------------------------------------------
    # traces
    # ------------------------------------------------------------------
    def initial_trace(self) -> App:
        """The ground trace term ``initiate``."""
        return self.signature.initial_term(self._initial_name)

    def apply(self, update: str, *params: str, trace: Term) -> App:
        """Build the trace ``update(params..., trace)`` from parameter
        *values* (domain strings)."""
        symbol = self.signature.update(update)
        args = [
            self.signature.value(sort, value)
            for sort, value in zip(symbol.arg_sorts[:-1], params)
        ]
        if len(params) != len(symbol.arg_sorts) - 1:
            raise SpecificationError(
                f"{update} expects {len(symbol.arg_sorts) - 1} "
                f"parameter(s), got {len(params)}"
            )
        term = App(symbol, (*args, trace))
        if self.normalize:
            return self.engine.normalize_state(term)
        return term

    def query(self, name: str, *params: str, trace: Term) -> Value:
        """Evaluate query ``name`` with parameter *values* on a trace."""
        symbol = self.signature.query(name)
        args = [
            self.signature.value(sort, value)
            for sort, value in zip(symbol.arg_sorts[:-1], params)
        ]
        if len(params) != len(symbol.arg_sorts) - 1:
            raise SpecificationError(
                f"{name} expects {len(symbol.arg_sorts) - 1} "
                f"parameter(s), got {len(params)}"
            )
        return self.engine.evaluate(App(symbol, (*args, trace)))

    def update_instances(self) -> Iterator[tuple[str, tuple[str, ...]]]:
        """Yield every (update name, parameter values) instance over
        the declared parameter domains."""
        for symbol in self.signature.updates:
            domains = [
                self.signature.domain(sort)
                for sort in symbol.arg_sorts[:-1]
            ]
            for params in itertools.product(*domains):
                yield symbol.name, params

    def successor_traces(
        self, trace: Term
    ) -> Iterator[tuple[str, tuple[str, ...], App]]:
        """Yield (update, params, new trace) for every update instance."""
        for update, params in self.update_instances():
            yield update, params, self.apply(update, *params, trace=trace)

    def traces(self, depth: int) -> Iterator[Term]:
        """Yield every ground trace with at most ``depth`` updates,
        breadth-first (the initial trace first).

        The count grows as (number of update instances)**depth; keep
        ``depth`` small or use :meth:`explore`, which deduplicates by
        observational equality.
        """
        frontier: deque[tuple[Term, int]] = deque([(self.initial_trace(), 0)])
        while frontier:
            trace, used = frontier.popleft()
            yield trace
            if used < depth:
                for _, _, successor in self.successor_traces(trace):
                    frontier.append((successor, used + 1))

    # ------------------------------------------------------------------
    # observations
    # ------------------------------------------------------------------
    def _build_observations(self) -> tuple[tuple[str, tuple[str, ...]], ...]:
        observations: list[tuple[str, tuple[str, ...]]] = []
        for symbol in self.signature.queries:
            domains = [
                self.signature.domain(sort)
                for sort in symbol.arg_sorts[:-1]
            ]
            for params in itertools.product(*domains):
                observations.append((symbol.name, params))
        return tuple(observations)

    @property
    def observations(self) -> tuple[tuple[str, tuple[str, ...]], ...]:
        """Every simple observation ``(query, parameter values)``
        instantiable over the declared domains (paper, Section 4.1)."""
        return self._observations

    def snapshot(self, trace: Term) -> Snapshot:
        """Evaluate every simple observation on ``trace``.

        By the observability condition, the snapshot identifies the
        abstract state the trace denotes.
        """
        entries = tuple(
            sorted(
                ((name, params), self.query(name, *params, trace=trace))
                for name, params in self._observations
            )
        )
        return Snapshot(entries)

    def observationally_equal(self, left: Term, right: Term) -> bool:
        """True iff all simple observations agree on the two traces —
        the paper's criterion for ``s = s'``."""
        return self.snapshot(left) == self.snapshot(right)

    # ------------------------------------------------------------------
    # observational state space
    # ------------------------------------------------------------------
    def explore(
        self,
        max_states: int = 100_000,
        max_depth: int | None = None,
    ) -> StateGraph:
        """Breadth-first construction of the reachable observational
        state space (the set G of Section 4.4b, modulo observational
        equality).

        Args:
            max_states: stop (and mark the graph truncated) after this
                many distinct snapshots.
            max_depth: optionally bound the number of updates applied.

        Returns:
            The :class:`StateGraph` with one node per distinct
            snapshot, a witness trace per node, and every update edge
            between explored nodes.
        """
        initial = self.initial_trace()
        initial_snapshot = self.snapshot(initial)
        states: dict[Snapshot, Term] = {initial_snapshot: initial}
        transitions: list[Transition] = []
        truncated = False
        frontier: deque[tuple[Snapshot, Term, int]] = deque(
            [(initial_snapshot, initial, 0)]
        )
        while frontier:
            source_snapshot, trace, depth = frontier.popleft()
            if max_depth is not None and depth >= max_depth:
                continue
            for update, params, successor in self.successor_traces(trace):
                target_snapshot = self.snapshot(successor)
                transitions.append(
                    Transition(
                        source_snapshot, update, params, target_snapshot
                    )
                )
                if target_snapshot not in states:
                    if len(states) >= max_states:
                        truncated = True
                        continue
                    states[target_snapshot] = successor
                    frontier.append(
                        (target_snapshot, successor, depth + 1)
                    )
        return StateGraph(initial_snapshot, states, transitions, truncated)
